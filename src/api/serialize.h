// JSON wire mapping of the facade's requests and responses.
//
// One schema for every front end: tools/refgen emits these payloads with
// --json, request files drive multi-request sessions, and a future RPC
// server reuses the exact same encode/decode path. The schema is documented
// in docs/api.md.
//
// Numbers that must survive a round trip bit-exactly (reference
// coefficients, extended-range values) are carried as hex-float mantissa
// strings plus a binary exponent — JSON doubles would silently round or
// reject inf/nan. Everything else is plain JSON numbers.
#pragma once

#include "api/json.h"
#include "api/requests.h"
#include "api/status.h"
#include "mna/transfer.h"
#include "refgen/reference.h"

namespace symref::api {

// --- Encoding ---------------------------------------------------------------

/// {"code": "parse_error", "message": "...", "line": 3, "column": 7}
/// (message/line/column omitted when empty/unknown; ok status is
/// {"code": "ok"}).
Json to_json(const Status& status);

Json to_json(const mna::TransferSpec& spec);
Json to_json(const refgen::AdaptiveOptions& options);
Json to_json(const refgen::NumericalReference& reference);

/// Response payloads. Every response object carries "type" and "status";
/// the remaining fields are type-specific and only present on success.
Json to_json(const RefgenResponse& response);
/// Node voltages, branch currents and the per-device operating-point table
/// are hex-float strings (bit-exact across the wire — the 1-vs-N-thread
/// byte-compare of the CLI smoke rides on this).
Json to_json(const OpResponse& response);
Json to_json(const SweepResponse& response);
Json to_json(const PolesZerosResponse& response);
Json to_json(const BatchResponse& response);
/// Term values and certificate errors are hex-float (bit-exact across the
/// wire — the daemon-vs-CLI byte-compare of the simplify smoke rides on
/// this).
Json to_json(const SimplifyResponse& response);
/// Per-sample transfer values are hex-float strings (bit-exact across the
/// wire — the 1-vs-N-thread byte-compare of CI's smoke jobs rides on this).
Json to_json(const ParamSweepResponse& response);
/// Time points and waveform samples are hex-float strings (bit-exact across
/// the wire — the 1-vs-N-thread byte-compare of the CLI transient smoke and
/// the daemon-vs-CLI byte-compare ride on this).
Json to_json(const TransientResponse& response);

/// Uniform failure payload: {"type": <type>, "status": {...}}.
Json error_response(const char* type, const Status& status);

// --- Decoding ---------------------------------------------------------------

Result<mna::TransferSpec> spec_from_json(const Json& json);
Result<refgen::AdaptiveOptions> options_from_json(const Json& json);

/// A request of any type, as parsed from a JSON payload.
struct AnyRequest {
  enum class Type {
    kRefgen,
    kSweep,
    kPolesZeros,
    kBatch,
    kParamSweep,
    kSimplify,
    kOp,
    kTransient
  };
  Type type = Type::kRefgen;
  RefgenRequest refgen;
  OpRequest op;
  SweepRequest sweep;
  PolesZerosRequest poles_zeros;
  BatchRequest batch;
  ParamSweepRequest param_sweep;
  SimplifyRequest simplify;
  TransientRequest transient;
};

/// Stable wire token of a request type: "refgen", "sweep", "poles_zeros",
/// "batch", "param_sweep", "simplify", "op", "transient".
const char* request_type_name(AnyRequest::Type type) noexcept;

/// Encode a request in the exact schema request_from_json accepts — the
/// client half of the wire (tools/refgen --connect, request-file writers).
Json to_json(const AnyRequest& request);

/// Parse {"type": "refgen"|"sweep"|"poles_zeros"|"batch"|"param_sweep"|
/// "simplify"|"op", ...}. Strict: unknown keys and missing required fields fail
/// with kInvalidArgument, so typos in hand-written request files surface
/// instead of silently using defaults. A batch request carries "items": an
/// array of {"spec", "options"} refgen items, plus optional "threads". A
/// param_sweep request carries "mode" ("grid"|"monte_carlo") and "params":
/// grid axes {"name", "from", "to", "count", "log"} or Monte-Carlo
/// dimensions {"name", "nominal", "rel_sigma", "dist"} plus
/// "samples"/"seed". A transient request carries "tstop" plus optional
/// "tstep", "method" ("trap"|"bdf1"|"bdf2"), "adaptive" and "threads". A
/// simplify request carries "error_budget", the band
/// ("f_start_hz"/"f_stop_hz"/"band_points") and optional tuning knobs
/// ("prune", "prune_share", "max_terms", "max_queue", "skip_factor") plus
/// the nested reference-engine "options". An op request carries only an
/// optional "threads". Every AC-family request accepts an optional boolean
/// "auto_linearize" (required true on device-bearing handles).
Result<AnyRequest> request_from_json(const Json& json);

/// Parse a request *session*: either one request object or an array of
/// them (the multi-request form of tools/refgen --requests).
Result<std::vector<AnyRequest>> requests_from_json(const Json& json);

}  // namespace symref::api
