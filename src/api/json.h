// Minimal self-contained JSON value — the wire format of the service facade.
//
// The repo deliberately carries no third-party dependencies, and the facade
// needs both directions (parse requests, emit responses), which the flat
// metric writer in support/bench_json.h cannot do. This is a small strict
// JSON implementation: objects preserve insertion order (stable wire output
// for diffs and golden tests), numbers are IEEE doubles, parse errors come
// back as api::Status with line/column, and non-finite numbers serialize as
// null (RFC 8259 has no inf/nan; payloads that must round-trip extreme
// values carry them as hex-float strings instead — see api/serialize.h).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "api/status.h"

namespace symref::api {

class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered key/value list. Lookup is linear — facade payloads
  /// have tens of keys, not thousands.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() noexcept : value_(nullptr) {}
  Json(std::nullptr_t) noexcept : value_(nullptr) {}  // NOLINT
  Json(bool value) noexcept : value_(value) {}        // NOLINT
  Json(double value) noexcept : value_(value) {}      // NOLINT
  Json(int value) noexcept : value_(static_cast<double>(value)) {}  // NOLINT
  Json(const char* value) : value_(std::string(value)) {}           // NOLINT
  Json(std::string value) : value_(std::move(value)) {}             // NOLINT
  Json(Array value) : value_(std::move(value)) {}                   // NOLINT
  Json(Object value) : value_(std::move(value)) {}                  // NOLINT

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const noexcept { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const noexcept { return holds<bool>(); }
  [[nodiscard]] bool is_number() const noexcept { return holds<double>(); }
  [[nodiscard]] bool is_string() const noexcept { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const noexcept { return holds<Array>(); }
  [[nodiscard]] bool is_object() const noexcept { return holds<Object>(); }

  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? std::get<bool>(value_) : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? std::get<double>(value_) : fallback;
  }
  /// Integer view of a number; `fallback` when absent, non-numeric, or
  /// outside int range (the raw cast would be undefined behavior).
  [[nodiscard]] int as_int(int fallback = 0) const noexcept;
  [[nodiscard]] const std::string& as_string() const;  // empty string when not a string

  [[nodiscard]] const Array& items() const;    // empty when not an array
  [[nodiscard]] const Object& members() const; // empty when not an object
  [[nodiscard]] std::size_t size() const noexcept;

  /// Object member by key; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Set (or replace) an object member. Converts a null value to an empty
  /// object first, so building payloads reads linearly.
  Json& set(std::string_view key, Json value);

  /// Append to an array (null converts to an empty array first).
  Json& push_back(Json value);

  /// Serialize. indent < 0: compact one-line; indent >= 0: pretty-printed
  /// with that many spaces per level. Non-finite numbers become null.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict RFC 8259 parse of a complete document; kParseError Status
  /// carries the 1-based line/column of the first offending character.
  static Result<Json> parse(std::string_view text);

 private:
  template <typename T>
  [[nodiscard]] bool holds() const noexcept {
    return std::holds_alternative<T>(value_);
  }

  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace symref::api
