#include "api/protocol.h"

#include <cctype>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <utility>

namespace symref::api::protocol {

namespace {

Status require_string(const Json& params, const char* key, std::string* out) {
  const Json* value = params.find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::error(StatusCode::kInvalidArgument,
                         std::string("params: missing string \"") + key + "\"");
  }
  *out = value->as_string();
  return Status();
}

bool read_flag(const Json& params, const char* key, bool fallback) {
  const Json* value = params.find(key);
  return value != nullptr && value->is_bool() ? value->as_bool() : fallback;
}

double read_number(const Json& params, const char* key, double fallback) {
  const Json* value = params.find(key);
  return value != nullptr && value->is_number() ? value->as_number() : fallback;
}

/// Deep copy with every "threads" and "kernel" member removed: results are
/// bit-identical at any thread count and under either replay kernel (the
/// oracle contract of sparse/batched.h), so the reference-store key must
/// not depend on them — a batched-kernel client warm-hits entries a
/// scalar-kernel client persisted, and vice versa.
Json strip_execution_knobs(const Json& value) {
  if (value.is_object()) {
    Json out = Json::object();
    for (const auto& [key, member] : value.members()) {
      if (key == "threads" || key == "kernel") continue;
      out.set(key, strip_execution_knobs(member));
    }
    return out;
  }
  if (value.is_array()) {
    Json out = Json::array();
    for (const Json& item : value.items()) out.push_back(strip_execution_knobs(item));
    return out;
  }
  return value;
}

/// Reference-store key of one (compiled netlist, request) pair.
std::string store_key(const std::string& content_key, const Json& request_json) {
  return content_key + "-" +
         support::hex64(support::fnv1a64(strip_execution_knobs(request_json).dump()));
}

Json circuit_info(const std::string& id, const CircuitHandle& handle) {
  Json out = Json::object();
  out.set("circuit_id", id);
  out.set("name", handle.name());
  out.set("nodes", handle.circuit().node_count());
  out.set("elements", static_cast<double>(handle.circuit().element_count()));
  out.set("dim", handle.dim());
  out.set("order_bound", handle.order_bound());
  return out;
}

Json job_info_json(const JobInfo& info) {
  Json out = Json::object();
  out.set("job_id", job_id_token(info.id));
  out.set("state", job_state_name(info.state));
  out.set("type", request_type_name(info.type));
  out.set("circuit", info.circuit);
  out.set("iterations", info.iterations);
  out.set("cancel_requested", info.cancel_requested);
  out.set("seconds", info.seconds);
  out.set("attempts", info.attempts);
  return out;
}

}  // namespace

std::string job_id_token(JobId id) { return "j" + std::to_string(id); }

Result<JobId> parse_job_id(const std::string& token) {
  // "j<decimal>", at most 19 digits (fits uint64 for every id we assign).
  if (token.size() < 2 || token.size() > 20 || token[0] != 'j') {
    return Status::error(StatusCode::kInvalidArgument,
                         "bad job_id \"" + token + "\" (expected \"j<N>\")");
  }
  JobId value = 0;
  for (std::size_t i = 1; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
      return Status::error(StatusCode::kInvalidArgument,
                           "bad job_id \"" + token + "\" (expected \"j<N>\")");
    }
    value = value * 10 + static_cast<JobId>(token[i] - '0');
  }
  return value;
}

ServerCore::ServerCore(ServerOptions options)
    : options_(std::move(options)),
      service_(options_.service),
      store_(options_.store_dir.empty()
                 ? nullptr
                 : std::make_unique<support::BlobStore>(options_.store_dir)),
      jobs_(service_, options_.workers, /*max_retained_jobs=*/4096,
            options_.max_queue_depth) {}

void ServerCore::request_shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  // Trip every live job's cancellation token: running engines stop at
  // their next checkpoint and blocked wait()ers (a session serving "wait",
  // the daemon's join loop) release promptly.
  for (const JobInfo& info : jobs_.list()) jobs_.cancel(info.id);
}

bool IostreamTransport::read_line(std::string* line) {
  return static_cast<bool>(std::getline(in_, *line));
}

bool IostreamTransport::write_line(const std::string& line) {
  out_ << line << '\n';
  out_.flush();
  return static_cast<bool>(out_);
}

/// The write side shared between the session's reader thread (replies) and
/// the job workers (progress/done events). One mutex serializes lines;
/// close() detaches the stream so late events from still-draining jobs are
/// dropped instead of written to a dead client.
struct Session::Writer {
  std::mutex mutex;
  std::shared_ptr<LineTransport> transport;
  bool open = true;

  void write(const Json& payload) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!open) return;
    if (!transport->write_line(payload.dump())) open = false;
  }
  void close() {
    const std::lock_guard<std::mutex> lock(mutex);
    open = false;
  }
};

Session::Session(ServerCore& core, std::shared_ptr<LineTransport> transport)
    : core_(core), transport_(std::move(transport)), writer_(std::make_shared<Writer>()) {
  writer_->transport = transport_;
}

Session::~Session() {
  writer_->close();
  // Unfinished jobs of a vanished client are abandoned work: cancel them.
  // (cancel() is a no-op false for jobs that already completed.)
  for (const JobId id : submitted_) core_.jobs().cancel(id);
}

void Session::serve() {
  std::string line;
  while (!stop_ && !core_.shutdown_requested() && transport_->read_line(&line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<Json> parsed = Json::parse(line);
    Json reply;
    if (!parsed.ok()) {
      reply = Json::object();
      reply.set("id", Json());
      reply.set("error", to_json(parsed.status()));
    } else {
      reply = dispatch(parsed.value());
    }
    writer_->write(reply);
  }
}

Json Session::dispatch(const Json& request) {
  Json reply = Json::object();
  const Json* id = request.find("id");
  reply.set("id", id != nullptr ? *id : Json());

  auto execute = [&]() -> Result<Json> {
    if (!request.is_object()) {
      return Status::error(StatusCode::kInvalidArgument, "request: expected a JSON object");
    }
    std::string method;
    Status status = require_string(request, "method", &method);
    if (!status.ok()) {
      return Status::error(StatusCode::kInvalidArgument, "request: missing string \"method\"");
    }
    const Json* params_ptr = request.find("params");
    const Json params = params_ptr != nullptr ? *params_ptr : Json::object();
    if (!params.is_object()) {
      return Status::error(StatusCode::kInvalidArgument, "params: expected a JSON object");
    }

    if (method == "compile") {
      std::string netlist;
      if (!(status = require_string(params, "netlist", &netlist)).ok()) return status;
      std::string name;
      if (const Json* value = params.find("name"); value != nullptr && value->is_string()) {
        name = value->as_string();
      }
      Result<CircuitHandle> compiled = core_.service().compile_netlist(netlist, name);
      if (!compiled.ok()) return compiled.status();
      CircuitHandle handle = compiled.take();
      // The content key survives restarts (it hashes the netlist text, not
      // the ephemeral circuit id), which is what lets a fresh daemon serve
      // stored responses for circuits compiled by a previous process.
      return circuit_info(
          core_.registry().add(handle, support::hex64(support::fnv1a64(netlist))), handle);
    }

    if (method == "submit") {
      std::string circuit_id;
      if (!(status = require_string(params, "circuit_id", &circuit_id)).ok()) return status;
      const Json* request_json = params.find("request");
      if (request_json == nullptr) {
        return Status::error(StatusCode::kInvalidArgument,
                             "params: missing object \"request\"");
      }
      Result<CircuitHandle> handle_result = core_.registry().get(circuit_id);
      if (!handle_result.ok()) return handle_result.status();
      Result<AnyRequest> parsed = request_from_json(*request_json);
      if (!parsed.ok()) return parsed.status();
      CircuitHandle handle = handle_result.take();
      AnyRequest any_request = parsed.take();

      const std::shared_ptr<Writer> writer = writer_;
      JobProgressFn on_progress;
      if (read_flag(params, "progress", false)) {
        on_progress = [writer](const JobProgress& progress) {
          Json event = Json::object();
          event.set("event", "progress");
          event.set("job_id", job_id_token(progress.id));
          event.set("iteration", progress.iteration);
          event.set("purpose", progress.purpose);
          event.set("points", progress.points);
          event.set("evaluations", progress.evaluations);
          event.set("num_new_coefficients", progress.num_new_coefficients);
          event.set("den_new_coefficients", progress.den_new_coefficients);
          event.set("f_scale", progress.f_scale);
          event.set("g_scale", progress.g_scale);
          writer->write(event);
        };
      }

      // Reference store: key on (netlist content, request minus the
      // execution knobs that never change results).
      support::BlobStore* store = core_.store();
      std::string key;
      if (store != nullptr && store->ok()) {
        const std::string content = core_.registry().content_key(circuit_id);
        if (!content.empty()) key = store_key(content, *request_json);
      }

      JobDoneFn on_done = [writer, store, key](JobId job, const JobOutcome& outcome) {
        Json event = Json::object();
        event.set("event", "done");
        event.set("job_id", job_id_token(job));
        event.set("result", to_json(outcome));
        writer->write(event);
        // Persist after the client saw its event. Only clean computed
        // results are stored: not errors, not store replays (raw), not
        // degraded references or transients (a later healthy run should
        // replace them), not batches (they can embed per-item failures).
        if (store != nullptr && !key.empty() && outcome.status.ok() &&
            outcome.raw.is_null() && outcome.type != AnyRequest::Type::kBatch &&
            !(outcome.type == AnyRequest::Type::kRefgen && outcome.refgen.result.degraded) &&
            !(outcome.type == AnyRequest::Type::kTransient &&
              outcome.transient.result.degraded)) {
          store->put(key, to_json(outcome).dump());
        }
      };

      if (!key.empty()) {
        if (std::optional<std::string> stored = store->get(key)) {
          // A checksum-verified entry that fails to re-parse is treated as a
          // miss (recomputed) — this also covers injected json_parse faults.
          Result<Json> payload = Json::parse(*stored);
          if (payload.ok()) {
            const JobId job = core_.jobs().submit_stored(
                std::move(handle), std::move(any_request), payload.take(), std::move(on_done));
            submitted_.push_back(job);
            Json out = Json::object();
            out.set("job_id", job_id_token(job));
            out.set("stored", true);
            return out;
          }
        }
      }

      SubmitOptions options;
      options.on_progress = std::move(on_progress);
      options.on_done = std::move(on_done);
      options.deadline_ms = read_number(params, "deadline_ms", 0.0);
      options.retry = core_.options().default_retry;
      if (const Json* value = params.find("max_attempts");
          value != nullptr && value->is_number()) {
        options.retry.max_attempts = value->as_int(options.retry.max_attempts);
      }
      const JobId job =
          core_.jobs().submit(std::move(handle), std::move(any_request), std::move(options));
      submitted_.push_back(job);
      Json out = Json::object();
      out.set("job_id", job_id_token(job));
      return out;
    }

    if (method == "poll" || method == "wait") {
      std::string token;
      if (!(status = require_string(params, "job_id", &token)).ok()) return status;
      Result<JobId> job = parse_job_id(token);
      if (!job.ok()) return job.status();
      if (method == "wait") {
        // Blocks the session's reader thread; events keep streaming.
        Result<JobOutcome> outcome = core_.jobs().wait(job.value());
        if (!outcome.ok()) return outcome.status();
      }
      Result<JobInfo> info = core_.jobs().poll(job.value());
      if (!info.ok()) return info.status();
      Json out = job_info_json(info.value());
      if (info.value().state == JobState::kDone) {
        Result<JobOutcome> outcome = core_.jobs().wait(job.value());  // immediate
        if (outcome.ok()) out.set("result", to_json(outcome.value()));
      }
      return out;
    }

    if (method == "cancel") {
      std::string token;
      if (!(status = require_string(params, "job_id", &token)).ok()) return status;
      Result<JobId> job = parse_job_id(token);
      if (!job.ok()) return job.status();
      Json out = Json::object();
      out.set("job_id", token);
      out.set("cancelled", core_.jobs().cancel(job.value()));
      return out;
    }

    if (method == "list") {
      Json circuits = Json::array();
      for (const Registry::Entry& entry : core_.registry().list()) {
        circuits.push_back(circuit_info(entry.id, entry.handle));
      }
      Json jobs = Json::array();
      for (const JobInfo& info : core_.jobs().list()) jobs.push_back(job_info_json(info));
      Json out = Json::object();
      out.set("circuits", std::move(circuits));
      out.set("jobs", std::move(jobs));
      return out;
    }

    if (method == "evict") {
      std::string circuit_id;
      if (!(status = require_string(params, "circuit_id", &circuit_id)).ok()) return status;
      Json out = Json::object();
      out.set("circuit_id", circuit_id);
      out.set("evicted", core_.registry().evict(circuit_id));
      return out;
    }

    if (method == "stats") {
      std::string circuit_id;
      if (!(status = require_string(params, "circuit_id", &circuit_id)).ok()) return status;
      Result<CircuitHandle> handle = core_.registry().get(circuit_id);
      if (!handle.ok()) return handle.status();
      Result<CacheStats> stats = core_.service().cache_stats(handle.value());
      if (!stats.ok()) return stats.status();
      Json out = Json::object();
      out.set("circuit_id", circuit_id);
      out.set("hits", static_cast<double>(stats.value().hits));
      out.set("misses", static_cast<double>(stats.value().misses));
      out.set("evictions", static_cast<double>(stats.value().evictions));
      out.set("entries", static_cast<double>(stats.value().entries));
      Result<EngineStats> engine = core_.service().engine_stats(handle.value());
      if (!engine.ok()) return engine.status();
      Json engine_json = Json::object();
      engine_json.set("fresh_factorizations",
                      static_cast<double>(engine.value().fresh_factorizations));
      engine_json.set("pivot_escalations",
                      static_cast<double>(engine.value().pivot_escalations));
      engine_json.set("degraded_responses",
                      static_cast<double>(engine.value().degraded_responses));
      engine_json.set("supernodes", static_cast<double>(engine.value().supernodes));
      engine_json.set("batched_lanes", static_cast<double>(engine.value().batched_lanes));
      engine_json.set("simplify_term_evals",
                      static_cast<double>(engine.value().simplify_term_evals));
      engine_json.set("simplify_terms_dropped",
                      static_cast<double>(engine.value().simplify_terms_dropped));
      engine_json.set("newton_iterations",
                      static_cast<double>(engine.value().newton_iterations));
      engine_json.set("op_solves", static_cast<double>(engine.value().op_solves));
      engine_json.set("transient_steps",
                      static_cast<double>(engine.value().transient_steps));
      engine_json.set("lte_rejections",
                      static_cast<double>(engine.value().lte_rejections));
      out.set("engine", std::move(engine_json));
      if (support::BlobStore* store = core_.store(); store != nullptr) {
        const support::BlobStore::Stats store_stats = store->stats();
        Json store_json = Json::object();
        store_json.set("ok", store->ok());
        store_json.set("hits", static_cast<double>(store_stats.hits));
        store_json.set("misses", static_cast<double>(store_stats.misses));
        store_json.set("writes", static_cast<double>(store_stats.writes));
        store_json.set("write_failures", static_cast<double>(store_stats.write_failures));
        store_json.set("corrupt_quarantined",
                       static_cast<double>(store_stats.corrupt_quarantined));
        out.set("store", std::move(store_json));
      }
      return out;
    }

    if (method == "shutdown") {
      stop_ = true;
      core_.request_shutdown();
      Json out = Json::object();
      out.set("ok", true);
      return out;
    }

    return Status::error(StatusCode::kInvalidArgument,
                         "unknown method \"" + method +
                             "\" (expected compile, submit, poll, wait, cancel, list, "
                             "evict, stats, or shutdown)");
  };

  Result<Json> result = execute();
  if (result.ok()) {
    reply.set("result", result.take());
  } else {
    reply.set("error", to_json(result.status()));
  }
  return reply;
}

}  // namespace symref::api::protocol
