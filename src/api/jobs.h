// Asynchronous job execution over api::Service — the core of the served
// protocol.
//
// submit() turns any typed request (refgen / sweep / poles_zeros / batch)
// into a job on a fixed-size worker pool (support::WorkQueue) and returns a
// JobId immediately. The caller then polls, waits, or subscribes:
//
//   JobManager jobs(service, /*workers=*/4);
//   JobId id = jobs.submit(handle, request, on_progress, on_done);
//   ... jobs.poll(id) -> JobInfo{state, iterations so far, ...}
//   ... jobs.wait(id) -> JobOutcome{status, typed response}
//   ... jobs.cancel(id)
//
// Cancellation is cooperative and safe at any moment: a queued job
// completes immediately with kCancelled (it never runs); a running job's
// cancellation token trips the engine's per-iteration / per-point
// checkpoints and the job completes with kCancelled shortly after. The
// handle's plan and response caches remain valid either way — cancelling
// one request never poisons the next.
//
// Callback contract: on_progress fires on the worker thread running the job
// (once per engine iteration, refgen/poles_zeros only); on_done fires
// exactly once per job, on whichever thread completes it (a worker, or the
// cancel() caller for still-queued jobs). Callbacks must be fast and must
// not call back into wait() for their own job.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/serialize.h"
#include "api/service.h"
#include "support/thread_pool.h"

namespace symref::api {

/// Monotonically increasing per-manager id; 0 is never assigned.
using JobId = std::uint64_t;

enum class JobState { kQueued, kRunning, kDone };

/// Stable snake_case token ("queued", "running", "done") — the wire value.
const char* job_state_name(JobState state) noexcept;

/// One engine iteration of a running job, streamed to on_progress.
struct JobProgress {
  JobId id = 0;
  int iteration = 0;
  const char* purpose = "";
  int points = 0;
  int evaluations = 0;
  int num_new_coefficients = 0;
  int den_new_coefficients = 0;
  double f_scale = 1.0;
  double g_scale = 1.0;
};

/// Terminal result of a job: the job-level status plus the response of the
/// request's type (only the matching member is meaningful, and only when
/// status.ok()). A cancelled job carries kCancelled here; a job whose
/// deadline expired carries kDeadlineExceeded.
struct JobOutcome {
  Status status;
  AnyRequest::Type type = AnyRequest::Type::kRefgen;
  RefgenResponse refgen;
  SweepResponse sweep;
  PolesZerosResponse poles_zeros;
  BatchResponse batch;
  ParamSweepResponse param_sweep;
  SimplifyResponse simplify;
  OpResponse op;
  TransientResponse transient;
  /// Pre-serialized wire payload (submit_stored: a reference-store hit).
  /// When non-null and status is ok, to_json returns it verbatim — the
  /// stored bytes ARE the contract (byte-identical replay across restarts).
  Json raw;
};

/// Wire form of an outcome: the typed response envelope on success, the
/// uniform {"type", "status"} error payload otherwise.
Json to_json(const JobOutcome& outcome);

/// Point-in-time job snapshot (poll / list).
struct JobInfo {
  JobId id = 0;
  JobState state = JobState::kQueued;
  AnyRequest::Type type = AnyRequest::Type::kRefgen;
  /// Label of the compiled circuit the job runs against.
  std::string circuit;
  /// Engine iterations completed so far (refgen/poles_zeros jobs).
  int iterations = 0;
  bool cancel_requested = false;
  /// Since submit while live; total lifetime once done.
  double seconds = 0.0;
  /// Execution attempts started (> 1 after transient-failure retries).
  int attempts = 0;
};

using JobProgressFn = std::function<void(const JobProgress&)>;
using JobDoneFn = std::function<void(JobId, const JobOutcome&)>;

/// Exponential backoff with deterministic jitter for transient-classified
/// failures (status_is_transient: kUnavailable / kOverloaded / kIoError).
/// max_attempts counts executions, so 1 means "no retry". Delay before
/// attempt k+1 is min(initial * multiplier^(k-1), max) * U where U is a
/// jitter factor in [0.5, 1.5) drawn from a splitmix64 stream seeded by
/// (jitter_seed, job id, k) — reproducible, but decorrelated across jobs.
struct RetryPolicy {
  int max_attempts = 1;
  double initial_backoff_ms = 25.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  std::uint64_t jitter_seed = 0;
};

/// Per-submit knobs beyond the request payload itself.
struct SubmitOptions {
  JobProgressFn on_progress;
  JobDoneFn on_done;
  /// Wall-clock budget from submit, in milliseconds (0 = none). Enforced
  /// through the job's CancellationToken at the engine's cooperative
  /// checkpoints; an expired job completes with kDeadlineExceeded. A job
  /// still queued at expiry completes immediately without running.
  double deadline_ms = 0.0;
  RetryPolicy retry;
};

class JobManager {
 public:
  /// `workers` <= 0 picks the hardware thread count. `max_retained_jobs`
  /// bounds the finished-job history: once exceeded, the oldest done jobs
  /// are forgotten (their ids then poll as kNotFound). `max_queue_depth`
  /// bounds tasks waiting for a worker (0 = unbounded): a submit that
  /// finds the queue full completes immediately with kOverloaded — the
  /// shed-load half of the backpressure contract.
  explicit JobManager(const Service& service, int workers = 0,
                      std::size_t max_retained_jobs = 4096, std::size_t max_queue_depth = 0);
  /// Cancels every live job, waits for running ones to stop at their next
  /// checkpoint, and joins the workers.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Enqueue a request against a compiled handle. Never blocks on the job
  /// itself. An invalid handle still produces a job; it completes with
  /// kInvalidArgument (uniform error reporting for remote callers).
  JobId submit(const CircuitHandle& handle, AnyRequest request,
               JobProgressFn on_progress = {}, JobDoneFn on_done = {});

  /// submit() with deadline and retry policy.
  JobId submit(const CircuitHandle& handle, AnyRequest request, SubmitOptions options);

  /// Register an already-materialized result (a reference-store hit) as an
  /// immediately-done job: same id space, same on_done/wait/poll lifecycle
  /// as a computed job, but `stored` is returned verbatim as the outcome's
  /// wire payload — no worker involved.
  JobId submit_stored(const CircuitHandle& handle, AnyRequest request, Json stored,
                      JobDoneFn on_done = {});

  /// Snapshot; kNotFound for unknown/forgotten ids.
  [[nodiscard]] Result<JobInfo> poll(JobId id) const;

  /// Block until the job completes AND its on_done callback returned — so
  /// anything the callback emitted (a daemon's done event) is ordered
  /// before wait() returns. The outcome carries the job's own status
  /// (kCancelled for cancelled jobs). kNotFound for unknown ids.
  [[nodiscard]] Result<JobOutcome> wait(JobId id) const;

  /// Request cancellation. True when the job was live (queued jobs complete
  /// as kCancelled immediately; running jobs stop at the next checkpoint);
  /// false for unknown or already-done jobs.
  bool cancel(JobId id);

  /// Snapshots of every retained job, in submit order.
  [[nodiscard]] std::vector<JobInfo> list() const;

  [[nodiscard]] int workers() const noexcept { return queue_.workers(); }

 private:
  struct Job;
  /// One background thread multiplexing every timed event of the manager —
  /// deadline expirations and retry re-posts — so neither ties up a worker
  /// lane or spawns per-job threads. Created lazily on first use.
  class Monitor;

  [[nodiscard]] std::shared_ptr<Job> find(JobId id) const;
  void register_job(const std::shared_ptr<Job>& job);
  void run(const std::shared_ptr<Job>& job);
  /// Tail of run(): rewrite deadline cancellations, decide whether the
  /// outcome is a retryable transient failure, and either park the job for
  /// a backoff re-post or finish it.
  void maybe_retry_or_finish(const std::shared_ptr<Job>& job, JobOutcome outcome);
  void expire_deadline(const std::shared_ptr<Job>& job);
  Monitor& monitor();
  static void finish(const std::shared_ptr<Job>& job, JobOutcome outcome);
  static JobInfo snapshot(const Job& job);

  const Service& service_;
  const std::size_t max_retained_jobs_;

  mutable std::mutex mutex_;
  JobId next_ = 0;
  std::map<JobId, std::shared_ptr<Job>> jobs_;  // key order == submit order
  std::unique_ptr<Monitor> monitor_;  // shut down explicitly in ~JobManager

  // Declared last: destroyed first, so the worker join in ~WorkQueue happens
  // while the job table is still alive.
  support::WorkQueue queue_;
};

}  // namespace symref::api
