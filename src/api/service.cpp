#include "api/service.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "dc/linearize.h"
#include "dc/newton.h"
#include "mna/ac.h"
#include "mna/nodal.h"
#include "netlist/parser.h"
#include "numeric/roots.h"
#include "refgen/adaptive.h"
#include "support/lru_cache.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace symref::api {

namespace {

/// Exact textual fingerprint of a spec — the per-handle cache key. Node
/// names cannot contain '\n', so joining with it is collision-free.
std::string spec_key(const mna::TransferSpec& spec) {
  std::string key = spec.kind == mna::TransferSpec::Kind::VoltageGain ? "vg" : "ti";
  for (const std::string* part : {&spec.in_pos, &spec.in_neg, &spec.out_pos, &spec.out_neg}) {
    key += '\n';
    key += *part;
  }
  return key;
}

/// Exact fingerprint of the engine options. Doubles are rendered as hex
/// floats (bit-exact); `threads`, `kernel` and `on_iteration` are excluded —
/// none influences the result (bit-identical parallelism and replay
/// kernels; observer is a hook).
std::string options_key(const refgen::AdaptiveOptions& o) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "%d|%a|%a|%d|%d%d%d%d|%a|%a|%d", o.sigma,
                o.noise_decades, o.tuning_r, o.max_iterations, o.use_deflation ? 1 : 0,
                o.conjugate_symmetry ? 1 : 0, o.simultaneous_scaling ? 1 : 0,
                o.geometric_mean_heuristic ? 1 : 0, o.initial_f, o.initial_g,
                o.no_progress_limit);
  return buffer;
}

/// Exact fingerprint of a simplify request (engine threads/kernel/cancel
/// excluded — bit-identical results at any setting). The nested engine
/// options reuse options_key.
std::string simplify_key(const refgen::SimplifyOptions& o) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "%a|%a|%a|%d|%d|%a|%zu|%zu|%a|", o.error_budget,
                o.f_start_hz, o.f_stop_hz, o.band_points, o.prune ? 1 : 0, o.prune_share,
                o.max_terms_per_coefficient, o.max_queue, o.coefficient_skip_factor);
  return buffer + options_key(o.engine);
}

/// Exact fingerprint of a transient request (threads and cancel excluded —
/// time stepping is serial and bit-identical regardless).
std::string transient_key(const TransientRequest& request) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%s|%a|%a|%d",
                transient::method_name(request.method), request.tstop, request.tstep,
                request.adaptive ? 1 : 0);
  return buffer;
}

std::string sweep_key(const SweepRequest& request) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%a|%a|%d", request.f_start_hz, request.f_stop_hz,
                request.points_per_decade);
  return buffer;
}

/// Exact fingerprint of a parameter-sweep request (threads and cancel
/// excluded — neither influences the bit-identical result). Parameter
/// names are length-prefixed so arbitrary name content (any length, any
/// delimiter characters) cannot collide with the numeric fields; numbers
/// are formatted one per bounded buffer, never truncated.
std::string param_sweep_key(const ParamSweepRequest& request) {
  std::string key = request.mode == ParamSweepRequest::Mode::kGrid ? "grid" : "mc";
  char buffer[64];
  auto add_number = [&](double value) {
    std::snprintf(buffer, sizeof(buffer), "|%a", value);
    key += buffer;
  };
  auto add_name = [&](const std::string& name) {
    key += '|';
    key += std::to_string(name.size());
    key += ':';
    key += name;
  };
  for (const mna::ParamAxis& axis : request.axes) {
    key += "|a";
    add_name(axis.name);
    add_number(axis.from);
    add_number(axis.to);
    std::snprintf(buffer, sizeof(buffer), "|%d|%d", axis.count, axis.log_scale ? 1 : 0);
    key += buffer;
  }
  for (const mna::ParamDist& dist : request.dists) {
    key += "|d";
    add_name(dist.name);
    add_number(dist.nominal);
    add_number(dist.rel_sigma);
    key += dist.kind == mna::ParamDist::Kind::kGaussian ? "|g" : "|u";
  }
  std::snprintf(buffer, sizeof(buffer), "|%d|%llu", request.samples,
                static_cast<unsigned long long>(request.seed));
  key += buffer;
  add_number(request.f_start_hz);
  add_number(request.f_stop_hz);
  std::snprintf(buffer, sizeof(buffer), "|%d", request.points_per_decade);
  key += buffer;
  return key;
}

/// Engine terminations that are errors at the facade boundary.
Status termination_status(const refgen::AdaptiveResult& result) {
  if (result.complete) return Status();
  if (result.termination == "singular_system") {
    return Status::error(StatusCode::kSingularSystem,
                         "adaptive engine: system is singular at the initial scaling "
                         "(floating section or zero-admittance cut)");
  }
  if (result.termination == "cancelled") {
    return Status::error(StatusCode::kCancelled,
                         "adaptive engine: run cancelled before completion");
  }
  return Status::error(StatusCode::kIncomplete,
                       "adaptive engine terminated without a complete reference: " +
                           result.termination);
}

constexpr const char* kEmptyHandleMessage = "empty CircuitHandle (compile a circuit first)";

}  // namespace

namespace internal {

/// Mutable per-TransferSpec state of one compiled circuit. The mutex
/// serializes use of the cached evaluator/simulator (both are
/// deliberately non-reentrant plan caches) and guards the response caches.
struct SpecEntry {
  explicit SpecEntry(std::size_t cache_capacity)
      : refgen_cache(cache_capacity),
        sweep_cache(cache_capacity),
        param_sweep_cache(cache_capacity),
        simplify_cache(cache_capacity) {}

  std::mutex mutex;
  /// Reference-generation plan cache: assembly pattern + symbolic LU plan
  /// stay warm across engine runs on this spec.
  std::unique_ptr<mna::CofactorEvaluator> evaluator;
  /// Sweep plan cache: drive-augmented circuit, assembler, LU plan.
  std::unique_ptr<mna::AcSimulator> simulator;
  /// Memoized responses (ServiceOptions::cache_responses), bounded by
  /// ServiceOptions::max_cached_responses with LRU eviction.
  support::LruCache<std::string, RefgenResponse> refgen_cache;
  support::LruCache<std::string, SweepResponse> sweep_cache;
  support::LruCache<std::string, ParamSweepResponse> param_sweep_cache;
  support::LruCache<std::string, SimplifyResponse> simplify_cache;
};

struct CompiledCircuit {
  // Declaration order is construction order: op is solved on original (when
  // it carries devices), linear is the linearization at that bias (or a
  // plain copy), canonical is derived from linear, system references
  // canonical. The struct lives behind a shared_ptr and is never moved, so
  // the internal reference stays valid.
  netlist::Circuit original;
  /// Solved DC bias (device-bearing handles only; default elsewhere).
  /// Immutable after construction — Service::op serves it lock-free.
  dc::OpResult op;
  /// What the AC-family analyses run on: the small-signal linearization of
  /// `original` at `op`, or `original` itself when there are no devices.
  netlist::Circuit linear;
  netlist::Circuit canonical;
  mna::NodalSystem system;
  std::string name;
  std::size_t cache_capacity = 0;
  /// The parsed-but-unexpanded netlist (compile_netlist only) — what
  /// param_sweep() re-elaborates per sample. Invalid for programmatic
  /// compile() handles.
  netlist::NetlistTemplate netlist_template;
  netlist::CanonicalOptions canonical_options;

  std::mutex specs_mutex;
  std::map<std::string, std::shared_ptr<SpecEntry>> specs;

  // Response-cache counters (Service::cache_stats). Atomics so the batch
  // lanes and concurrent requests can bump them without extending any
  // critical section.
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> cache_evictions{0};
  /// Refgen responses that completed through the degradation ladder
  /// (Service::engine_stats). Per-spec factorization counters live on the
  /// cached evaluators; this one is response-level so cache hits of a
  /// degraded result do not re-count.
  std::atomic<std::uint64_t> degraded_responses{0};
  /// Simplify workload counters (Service::engine_stats). Response-level so
  /// cache hits do not re-count, like degraded_responses.
  std::atomic<std::uint64_t> simplify_term_evals{0};
  std::atomic<std::uint64_t> simplify_terms_dropped{0};
  /// Newton workload counters (Service::engine_stats): the compile-time
  /// bias solve plus every param_sweep per-sample re-bias. Atomics because
  /// sweep lanes bump them concurrently.
  std::atomic<std::uint64_t> newton_iterations{0};
  std::atomic<std::uint64_t> op_solves{0};
  /// Whether Service::op already served the stored bias once (from_cache
  /// flips true on the second and later calls).
  std::atomic<bool> op_served{false};
  /// Transient workload counters (Service::engine_stats). Computed runs
  /// only — cache hits do not re-count, like degraded_responses.
  std::atomic<std::uint64_t> transient_steps{0};
  std::atomic<std::uint64_t> lte_rejections{0};
  std::atomic<std::uint64_t> transient_fresh_factorizations{0};
  std::atomic<std::uint64_t> transient_pivot_escalations{0};

  /// Transient analyses have no TransferSpec, so their response cache lives
  /// on the circuit itself rather than in a SpecEntry. Lazily built under
  /// transient_mutex (cache_capacity is assigned after construction).
  std::mutex transient_mutex;
  std::unique_ptr<support::LruCache<std::string, TransientResponse>> transient_cache;

  CompiledCircuit(netlist::Circuit circuit, const netlist::CanonicalOptions& options)
      : original(std::move(circuit)),
        op(original.has_devices() ? dc::solve_op(original) : dc::OpResult{}),
        linear(original.has_devices() ? dc::linearize_at(original, op) : original),
        canonical(netlist::canonicalize(linear, options)),
        system(canonical) {
    if (original.has_devices()) {
      op_solves.store(1, std::memory_order_relaxed);
      newton_iterations.store(static_cast<std::uint64_t>(op.newton_iterations),
                              std::memory_order_relaxed);
    }
  }

  std::shared_ptr<SpecEntry> entry(const mna::TransferSpec& spec) {
    const std::lock_guard<std::mutex> lock(specs_mutex);
    std::shared_ptr<SpecEntry>& slot = specs[spec_key(spec)];
    if (!slot) slot = std::make_shared<SpecEntry>(cache_capacity);
    return slot;
  }
};

}  // namespace internal

using internal::CompiledCircuit;
using internal::SpecEntry;

namespace {

/// The auto_linearize gate: a device-bearing handle only serves AC-family
/// requests that explicitly opted into the linearized circuit, so a client
/// that does not know about devices cannot silently analyze the wrong
/// (nonsensical large-signal) netlist. Linear handles ignore the flag.
Status check_auto_linearize(const CompiledCircuit& compiled, bool auto_linearize) {
  if (compiled.original.has_devices() && !auto_linearize) {
    return Status::error(
        StatusCode::kInvalidArgument,
        "handle '" + compiled.name +
            "' contains nonlinear devices; set auto_linearize=true to run this "
            "analysis on the small-signal circuit linearized at the solved "
            "operating point");
  }
  return Status();
}

}  // namespace

const netlist::Circuit& CircuitHandle::circuit() const { return compiled_->original; }
bool CircuitHandle::has_devices() const {
  return compiled_ != nullptr && compiled_->original.has_devices();
}
const netlist::Circuit& CircuitHandle::linear() const { return compiled_->linear; }
bool CircuitHandle::has_netlist_template() const {
  return compiled_ != nullptr && compiled_->netlist_template.valid();
}
const std::vector<std::string>& CircuitHandle::parameter_names() const {
  return compiled_->netlist_template.parameter_names();
}
const netlist::Circuit& CircuitHandle::canonical() const { return compiled_->canonical; }
int CircuitHandle::dim() const { return compiled_->system.dim(); }
int CircuitHandle::order_bound() const { return compiled_->system.order_bound(); }
const std::string& CircuitHandle::name() const { return compiled_->name; }
std::string CircuitHandle::summary() const { return compiled_->original.summary(); }

Service::Service(ServiceOptions options) : options_(std::move(options)) {}
Service::~Service() = default;

Result<CircuitHandle> Service::finish_compile(netlist::Circuit circuit, std::string name,
                                              netlist::NetlistTemplate netlist_template) const {
  try {
    auto compiled = std::make_shared<CompiledCircuit>(std::move(circuit), options_.canonical);
    compiled->name = name.empty() ? compiled->original.title : std::move(name);
    if (compiled->name.empty()) compiled->name = "circuit";
    compiled->cache_capacity = options_.max_cached_responses;
    compiled->netlist_template = std::move(netlist_template);
    compiled->canonical_options = options_.canonical;
    CircuitHandle handle;
    handle.compiled_ = std::move(compiled);
    return handle;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<CircuitHandle> Service::compile_netlist(std::string_view text, std::string name) const {
  try {
    netlist::NetlistTemplate netlist_template = netlist::parse_netlist_template(text);
    netlist::Circuit circuit = netlist_template.elaborate();
    return finish_compile(std::move(circuit), std::move(name), std::move(netlist_template));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<CircuitHandle> Service::compile(const netlist::Circuit& circuit, std::string name) const {
  return finish_compile(circuit, std::move(name));
}

Result<RefgenResponse> Service::refgen(const CircuitHandle& handle,
                                       const RefgenRequest& request) const {
  if (!handle.valid()) {
    return Status::error(StatusCode::kInvalidArgument, kEmptyHandleMessage);
  }
  support::Timer timer;
  try {
    CompiledCircuit& compiled = *handle.compiled_;
    if (const Status gate = check_auto_linearize(compiled, request.auto_linearize); !gate.ok()) {
      return gate;
    }
    const std::shared_ptr<SpecEntry> entry = compiled.entry(request.spec);
    const std::lock_guard<std::mutex> lock(entry->mutex);

    const std::string key = options_key(request.options);
    if (options_.cache_responses) {
      if (const RefgenResponse* hit = entry->refgen_cache.find(key)) {
        compiled.cache_hits.fetch_add(1, std::memory_order_relaxed);
        RefgenResponse response = *hit;
        response.from_cache = true;
        response.seconds = timer.seconds();
        return response;
      }
      compiled.cache_misses.fetch_add(1, std::memory_order_relaxed);
    }

    // Warm path: the spec's evaluator keeps its assembly pattern and LU
    // plan across runs, so a repeat request skips the pattern merge and the
    // first Markowitz ordering (the engine replays the cached plan).
    if (!entry->evaluator) {
      entry->evaluator = std::make_unique<mna::CofactorEvaluator>(compiled.system, request.spec);
    }
    refgen::AdaptiveScalingEngine engine(compiled.system, request.spec, request.options,
                                         entry->evaluator.get());
    RefgenResponse response;
    response.result = engine.run();
    response.seconds = timer.seconds();
    const Status status = termination_status(response.result);
    if (!status.ok()) return status;
    if (response.result.degraded) {
      compiled.degraded_responses.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.cache_responses) {
      compiled.cache_evictions.fetch_add(entry->refgen_cache.insert(key, response),
                                         std::memory_order_relaxed);
    }
    return response;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<SimplifyResponse> Service::simplify(const CircuitHandle& handle,
                                           const SimplifyRequest& request) const {
  if (!handle.valid()) {
    return Status::error(StatusCode::kInvalidArgument, kEmptyHandleMessage);
  }
  support::Timer timer;
  try {
    CompiledCircuit& compiled = *handle.compiled_;
    if (const Status gate = check_auto_linearize(compiled, request.auto_linearize); !gate.ok()) {
      return gate;
    }
    const std::shared_ptr<SpecEntry> entry = compiled.entry(request.spec);
    const std::lock_guard<std::mutex> lock(entry->mutex);

    const std::string key = simplify_key(request.options);
    if (options_.cache_responses) {
      if (const SimplifyResponse* hit = entry->simplify_cache.find(key)) {
        compiled.cache_hits.fetch_add(1, std::memory_order_relaxed);
        SimplifyResponse response = *hit;
        response.from_cache = true;
        response.seconds = timer.seconds();
        return response;
      }
      compiled.cache_misses.fetch_add(1, std::memory_order_relaxed);
    }

    // Warm path: the spec's evaluator serves the baseline band sweep with
    // its cached assembly pattern and LU plan; the ranking lanes copy it
    // (sharing the immutable symbolic plan) inside the engine.
    if (!entry->evaluator) {
      entry->evaluator = std::make_unique<mna::CofactorEvaluator>(compiled.system, request.spec);
    }
    SimplifyResponse response;
    response.result = refgen::simplify_transfer(compiled.canonical, compiled.system,
                                                request.spec, request.options,
                                                entry->evaluator.get());
    response.seconds = timer.seconds();
    compiled.simplify_term_evals.fetch_add(response.result.term_evals,
                                           std::memory_order_relaxed);
    compiled.simplify_terms_dropped.fetch_add(response.result.terms_dropped,
                                              std::memory_order_relaxed);
    if (options_.cache_responses) {
      compiled.cache_evictions.fetch_add(entry->simplify_cache.insert(key, response),
                                         std::memory_order_relaxed);
    }
    return response;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<SweepResponse> Service::sweep(const CircuitHandle& handle,
                                     const SweepRequest& request) const {
  if (!handle.valid()) {
    return Status::error(StatusCode::kInvalidArgument, kEmptyHandleMessage);
  }
  support::Timer timer;
  try {
    CompiledCircuit& compiled = *handle.compiled_;
    if (const Status gate = check_auto_linearize(compiled, request.auto_linearize); !gate.ok()) {
      return gate;
    }
    const std::shared_ptr<SpecEntry> entry = compiled.entry(request.spec);
    const std::lock_guard<std::mutex> lock(entry->mutex);

    const std::string key = sweep_key(request);
    if (options_.cache_responses) {
      if (const SweepResponse* hit = entry->sweep_cache.find(key)) {
        compiled.cache_hits.fetch_add(1, std::memory_order_relaxed);
        SweepResponse response = *hit;
        response.from_cache = true;
        response.seconds = timer.seconds();
        return response;
      }
      compiled.cache_misses.fetch_add(1, std::memory_order_relaxed);
    }

    // Warm path: the per-spec simulator caches the drive-augmented circuit,
    // its assembler, and the factorization plan; later sweeps and later
    // points replay instead of re-pivoting.
    if (!entry->simulator) {
      entry->simulator = std::make_unique<mna::AcSimulator>(compiled.linear);
    }
    SweepResponse response;
    response.points = entry->simulator->bode(request.spec, request.f_start_hz,
                                             request.f_stop_hz, request.points_per_decade,
                                             request.threads, request.cancel, request.kernel);
    response.seconds = timer.seconds();
    if (options_.cache_responses) {
      compiled.cache_evictions.fetch_add(entry->sweep_cache.insert(key, response),
                                         std::memory_order_relaxed);
    }
    return response;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<ParamSweepResponse> Service::param_sweep(const CircuitHandle& handle,
                                                const ParamSweepRequest& request) const {
  if (!handle.valid()) {
    return Status::error(StatusCode::kInvalidArgument, kEmptyHandleMessage);
  }
  support::Timer timer;
  try {
    CompiledCircuit& compiled = *handle.compiled_;
    if (!compiled.netlist_template.valid()) {
      return Status::error(StatusCode::kInvalidArgument,
                           "param_sweep requires a handle compiled from netlist text "
                           "(compile_netlist), not a programmatic circuit");
    }
    if (const Status gate = check_auto_linearize(compiled, request.auto_linearize); !gate.ok()) {
      return gate;
    }
    const std::shared_ptr<SpecEntry> entry = compiled.entry(request.spec);

    // Unlike refgen/sweep, the run itself touches no shared per-spec state
    // (everything is rebuilt from the immutable template), so the entry
    // mutex guards only the cache lookups/insert — a long sweep never
    // blocks other requests on the same spec. Two racing identical sweeps
    // may both compute; results are bit-identical, so that is benign.
    const std::string key = param_sweep_key(request);
    if (options_.cache_responses) {
      bool hit_cache = false;
      ParamSweepResponse response;
      {
        const std::lock_guard<std::mutex> lock(entry->mutex);
        if (const ParamSweepResponse* hit = entry->param_sweep_cache.find(key)) {
          response = *hit;
          hit_cache = true;
        }
      }
      if (hit_cache) {
        compiled.cache_hits.fetch_add(1, std::memory_order_relaxed);
        response.from_cache = true;
        response.seconds = timer.seconds();
        return response;
      }
      compiled.cache_misses.fetch_add(1, std::memory_order_relaxed);
    }

    // Resolve the sample plan, then run: every sample re-elaborates the
    // compiled template and replays the baseline factorization plan.
    mna::ParamSamplePlan plan;
    if (request.mode == ParamSweepRequest::Mode::kGrid) {
      if (!request.dists.empty() || request.samples != 0) {
        return Status::error(StatusCode::kInvalidArgument,
                             "param_sweep: grid mode takes axes only (no dists/samples)");
      }
      plan = mna::grid_samples(request.axes);
    } else {
      if (!request.axes.empty()) {
        return Status::error(StatusCode::kInvalidArgument,
                             "param_sweep: monte_carlo mode takes dists only (no axes)");
      }
      plan = mna::monte_carlo_samples(request.dists, request.samples, request.seed);
    }
    mna::ParamSweepOptions options;
    options.spec = request.spec;
    options.f_start_hz = request.f_start_hz;
    options.f_stop_hz = request.f_stop_hz;
    options.points_per_decade = request.points_per_decade;
    options.threads = request.threads;
    options.kernel = request.kernel;
    options.cancel = request.cancel;
    options.canonical = compiled.canonical_options;

    ParamSweepResponse response;
    response.result = mna::run_param_sweep(compiled.netlist_template, plan, options);
    response.seconds = timer.seconds();
    // Newton telemetry (device-bearing sweeps re-bias per sample). Computed
    // runs only — a later cache hit of this response does not re-count.
    compiled.op_solves.fetch_add(response.result.op_solves, std::memory_order_relaxed);
    compiled.newton_iterations.fetch_add(response.result.newton_iterations,
                                         std::memory_order_relaxed);
    // Memoize only reasonably sized studies: the LRU bound counts entries,
    // not bytes, and one maximal Monte-Carlo response can reach gigabytes —
    // a long-lived daemon must not pin that behind a 64-entry cache.
    constexpr std::size_t kMaxCachedSweepValues = std::size_t{1} << 16;
    if (options_.cache_responses && response.result.response.size() <= kMaxCachedSweepValues) {
      std::size_t evicted = 0;
      {
        const std::lock_guard<std::mutex> lock(entry->mutex);
        evicted = entry->param_sweep_cache.insert(key, response);
      }
      compiled.cache_evictions.fetch_add(evicted, std::memory_order_relaxed);
    }
    return response;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<OpResponse> Service::op(const CircuitHandle& handle, const OpRequest& request) const {
  (void)request;  // threads/cancel are wire symmetry only — bias is pre-solved
  if (!handle.valid()) {
    return Status::error(StatusCode::kInvalidArgument, kEmptyHandleMessage);
  }
  support::Timer timer;
  try {
    CompiledCircuit& compiled = *handle.compiled_;
    if (!compiled.original.has_devices()) {
      return Status::error(StatusCode::kInvalidArgument,
                           "op requires a handle with nonlinear devices (D/Q/M cards); a "
                           "purely linear circuit has no Newton bias problem");
    }
    OpResponse response;
    response.result = compiled.op;
    response.from_cache = compiled.op_served.exchange(true, std::memory_order_relaxed);
    response.seconds = timer.seconds();
    return response;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<TransientResponse> Service::transient(const CircuitHandle& handle,
                                             const TransientRequest& request) const {
  if (!handle.valid()) {
    return Status::error(StatusCode::kInvalidArgument, kEmptyHandleMessage);
  }
  support::Timer timer;
  try {
    CompiledCircuit& compiled = *handle.compiled_;
    // Deliberately NO check_auto_linearize: a transient analysis runs the
    // large-signal netlist directly (Newton per step on device handles) —
    // linearizing first would be answering a different question.
    const std::string key = transient_key(request);
    if (options_.cache_responses) {
      bool hit_cache = false;
      TransientResponse response;
      {
        const std::lock_guard<std::mutex> lock(compiled.transient_mutex);
        if (compiled.transient_cache) {
          if (const TransientResponse* hit = compiled.transient_cache->find(key)) {
            response = *hit;
            hit_cache = true;
          }
        }
      }
      if (hit_cache) {
        compiled.cache_hits.fetch_add(1, std::memory_order_relaxed);
        response.from_cache = true;
        response.seconds = timer.seconds();
        return response;
      }
      compiled.cache_misses.fetch_add(1, std::memory_order_relaxed);
    }

    transient::TransientOptions options;
    options.method = request.method;
    options.tstop = request.tstop;
    options.tstep = request.tstep;
    options.adaptive = request.adaptive;
    options.cancel = request.cancel;
    TransientResponse response;
    {
      // A fresh solver per run: the step-bucket plans are shaped by the
      // request's tstep, so they are not reusable across different requests
      // anyway, and the runs stay shared-nothing (bit-identical at any
      // concurrency, never serialized behind a per-handle solver).
      transient::TransientSolver solver(options);
      response.result = solver.solve(compiled.original);
    }
    response.seconds = timer.seconds();
    const transient::TransientResult& result = response.result;
    compiled.transient_steps.fetch_add(static_cast<std::uint64_t>(result.steps),
                                       std::memory_order_relaxed);
    compiled.lte_rejections.fetch_add(static_cast<std::uint64_t>(result.lte_rejections),
                                      std::memory_order_relaxed);
    compiled.transient_fresh_factorizations.fetch_add(result.fresh_factorizations,
                                                      std::memory_order_relaxed);
    compiled.transient_pivot_escalations.fetch_add(result.pivot_escalations,
                                                   std::memory_order_relaxed);
    compiled.newton_iterations.fetch_add(
        static_cast<std::uint64_t>(result.newton_iterations), std::memory_order_relaxed);
    if (result.degraded) {
      compiled.degraded_responses.fetch_add(1, std::memory_order_relaxed);
    }
    // Memoize only reasonably sized waveforms, like param_sweep: the LRU
    // bound counts entries, not bytes, and a long run's state history can
    // reach gigabytes. Recomputing is bit-identical, so a miss is only time.
    constexpr std::size_t kMaxCachedStateValues = std::size_t{1} << 16;
    const std::size_t state_values =
        result.states.size() *
        (result.node_names.size() + result.branch_names.size());
    if (options_.cache_responses && state_values <= kMaxCachedStateValues) {
      std::size_t evicted = 0;
      {
        const std::lock_guard<std::mutex> lock(compiled.transient_mutex);
        if (!compiled.transient_cache) {
          compiled.transient_cache =
              std::make_unique<support::LruCache<std::string, TransientResponse>>(
                  compiled.cache_capacity);
        }
        evicted = compiled.transient_cache->insert(key, response);
      }
      compiled.cache_evictions.fetch_add(evicted, std::memory_order_relaxed);
    }
    return response;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<CacheStats> Service::cache_stats(const CircuitHandle& handle) const {
  if (!handle.valid()) {
    return Status::error(StatusCode::kInvalidArgument, kEmptyHandleMessage);
  }
  CompiledCircuit& compiled = *handle.compiled_;
  CacheStats stats;
  stats.hits = compiled.cache_hits.load(std::memory_order_relaxed);
  stats.misses = compiled.cache_misses.load(std::memory_order_relaxed);
  stats.evictions = compiled.cache_evictions.load(std::memory_order_relaxed);
  // Collect the entries first, then lock each one briefly — never hold
  // specs_mutex and an entry mutex together.
  std::vector<std::shared_ptr<SpecEntry>> entries;
  {
    const std::lock_guard<std::mutex> lock(compiled.specs_mutex);
    for (const auto& [key, entry] : compiled.specs) entries.push_back(entry);
  }
  for (const std::shared_ptr<SpecEntry>& entry : entries) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    stats.entries += entry->refgen_cache.size() + entry->sweep_cache.size() +
                     entry->param_sweep_cache.size() + entry->simplify_cache.size();
  }
  {
    const std::lock_guard<std::mutex> lock(compiled.transient_mutex);
    if (compiled.transient_cache) stats.entries += compiled.transient_cache->size();
  }
  return stats;
}

Result<EngineStats> Service::engine_stats(const CircuitHandle& handle) const {
  if (!handle.valid()) {
    return Status::error(StatusCode::kInvalidArgument, kEmptyHandleMessage);
  }
  CompiledCircuit& compiled = *handle.compiled_;
  EngineStats stats;
  stats.degraded_responses = compiled.degraded_responses.load(std::memory_order_relaxed);
  stats.simplify_term_evals = compiled.simplify_term_evals.load(std::memory_order_relaxed);
  stats.simplify_terms_dropped =
      compiled.simplify_terms_dropped.load(std::memory_order_relaxed);
  stats.newton_iterations = compiled.newton_iterations.load(std::memory_order_relaxed);
  stats.op_solves = compiled.op_solves.load(std::memory_order_relaxed);
  stats.transient_steps = compiled.transient_steps.load(std::memory_order_relaxed);
  stats.lte_rejections = compiled.lte_rejections.load(std::memory_order_relaxed);
  // The compile-time bias solve and the transient runs contribute their
  // factorization telemetry alongside the per-spec evaluators' counters.
  stats.fresh_factorizations += compiled.op.fresh_factorizations;
  stats.pivot_escalations += compiled.op.pivot_escalations;
  stats.fresh_factorizations +=
      compiled.transient_fresh_factorizations.load(std::memory_order_relaxed);
  stats.pivot_escalations +=
      compiled.transient_pivot_escalations.load(std::memory_order_relaxed);
  // Same discipline as cache_stats: collect entries, then lock each briefly.
  std::vector<std::shared_ptr<SpecEntry>> entries;
  {
    const std::lock_guard<std::mutex> lock(compiled.specs_mutex);
    for (const auto& [key, entry] : compiled.specs) entries.push_back(entry);
  }
  for (const std::shared_ptr<SpecEntry>& entry : entries) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (!entry->evaluator) continue;
    stats.fresh_factorizations += entry->evaluator->fresh_factor_count();
    stats.pivot_escalations += entry->evaluator->pivot_escalation_count();
    stats.supernodes += entry->evaluator->supernode_count();
    stats.batched_lanes += entry->evaluator->batched_lane_count();
  }
  return stats;
}

Result<PolesZerosResponse> Service::poles_zeros(const CircuitHandle& handle,
                                                const PolesZerosRequest& request) const {
  support::Timer timer;
  Result<RefgenResponse> reference =
      refgen(handle, {request.spec, request.options, request.auto_linearize});
  if (!reference.ok()) return reference.status();
  try {
    const refgen::NumericalReference& ref = reference.value().result.reference;
    const numeric::RootResult zeros = numeric::find_roots(ref.numerator().polynomial());
    const numeric::RootResult poles = numeric::find_roots(ref.denominator().polynomial());
    PolesZerosResponse response;
    response.poles = poles.roots;
    response.zeros = zeros.roots;
    response.poles_converged = poles.converged;
    response.zeros_converged = zeros.converged;
    response.from_cache = reference.value().from_cache;
    response.seconds = timer.seconds();
    return response;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<BatchResponse> Service::batch(const CircuitHandle& handle,
                                     const BatchRequest& request) const {
  if (!handle.valid()) {
    return Status::error(StatusCode::kInvalidArgument, kEmptyHandleMessage);
  }
  support::Timer timer;
  BatchResponse response;
  response.items.resize(request.items.size());
  if (request.items.empty()) return response;

  try {
    CompiledCircuit& compiled = *handle.compiled_;
    // Shared-nothing lanes: each item builds its own evaluator over the
    // shared immutable system, so items never contend and results match
    // running each request alone (at any thread count). The per-spec
    // response cache is consulted/updated with short locks around the run,
    // never across it — two racing identical items may both compute
    // (benign: results are identical).
    support::ThreadPool pool(request.threads);
    pool.parallel_for(request.items.size(), [&](std::size_t begin, std::size_t end,
                                                int /*lane*/) {
      for (std::size_t i = begin; i < end; ++i) {
        const RefgenRequest& item = request.items[i];
        BatchItemResponse& out = response.items[i];
        support::Timer item_timer;
        try {
          if (const Status gate = check_auto_linearize(compiled, item.auto_linearize);
              !gate.ok()) {
            out.status = gate;
            continue;
          }
          const std::shared_ptr<SpecEntry> entry = compiled.entry(item.spec);
          const std::string key = options_key(item.options);
          if (options_.cache_responses) {
            bool hit_cache = false;
            {
              const std::lock_guard<std::mutex> lock(entry->mutex);
              if (const RefgenResponse* hit = entry->refgen_cache.find(key)) {
                out.response = *hit;
                hit_cache = true;
              }
            }
            if (hit_cache) {
              compiled.cache_hits.fetch_add(1, std::memory_order_relaxed);
              out.response.from_cache = true;
              out.response.seconds = item_timer.seconds();
              continue;
            }
            compiled.cache_misses.fetch_add(1, std::memory_order_relaxed);
          }
          refgen::AdaptiveOptions options = item.options;
          options.threads = 1;  // outer parallelism owns the lanes
          refgen::AdaptiveScalingEngine engine(compiled.system, item.spec, options);
          out.response.result = engine.run();
          out.response.seconds = item_timer.seconds();
          out.status = termination_status(out.response.result);
          if (out.status.ok() && options_.cache_responses) {
            std::size_t evicted = 0;
            {
              const std::lock_guard<std::mutex> lock(entry->mutex);
              evicted = entry->refgen_cache.insert(key, out.response);
            }
            compiled.cache_evictions.fetch_add(evicted, std::memory_order_relaxed);
          }
        } catch (...) {
          out.status = status_from_current_exception();
        }
      }
    });
    response.seconds = timer.seconds();
    return response;
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace symref::api
