// Structured error propagation for the public service facade.
//
// Everything inside src/ reports failure with exceptions; nothing outside
// src/api/ should have to. `Status` is the boundary type: an error code a
// remote caller can switch on, a human-readable message, and (for netlist
// problems) the source position. `Result<T>` carries either a value or a
// non-ok Status — the return type of every api::Service entry point, so no
// exception ever crosses the facade.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace symref::api {

/// Stable error taxonomy of the facade. Codes, not messages, are the
/// machine-readable contract (docs/api.md lists the mapping).
enum class StatusCode {
  kOk = 0,
  /// Malformed request outside the other categories (bad ranges, counts,
  /// or a circuit the canonicalizer rejects).
  kInvalidArgument,
  /// Netlist text failed to parse; location() points at the offending card.
  kParseError,
  /// TransferSpec names unknown, floating, or degenerate nodes.
  kInvalidSpec,
  /// The (scaled) system admitted no acceptable pivot — structurally or
  /// numerically singular at the request's operating point.
  kSingularSystem,
  /// A strict plan replay was refused (pattern changed or pivots degraded)
  /// where the caller required replay instead of a fresh factorization.
  kRefusedReplay,
  /// The engine terminated without a complete reference (max_iterations,
  /// no_valid_region, gap_unresolved).
  kIncomplete,
  /// The Newton .op solver exhausted its whole homotopy ladder (plain
  /// damped iteration, gmin stepping, source stepping) without converging.
  /// Permanent for the identical request; a different initial guess,
  /// looser tolerances, or a fixed netlist may succeed.
  kNoConvergence,
  /// The request was cancelled at a cooperative checkpoint (job cancel,
  /// client timeout) before producing a complete result.
  kCancelled,
  /// A named resource (registry circuit_id, job_id) does not exist — never
  /// existed, or was evicted/forgotten.
  kNotFound,
  /// File or serialized-payload I/O failed.
  kIoError,
  /// The request's deadline_ms elapsed before a complete result; the job was
  /// cancelled at the next cooperative checkpoint.
  kDeadlineExceeded,
  /// The server shed the request because its work queue was at capacity.
  /// Transient by definition: retry after backoff.
  kOverloaded,
  /// A transient resource failure (allocation pressure, an injected
  /// work-queue fault) — the request itself is fine; retrying may succeed.
  kUnavailable,
  /// Unexpected failure; the message is the caught exception text.
  kInternal,
};

/// Stable snake_case token for a code ("ok", "parse_error", ...); these are
/// the strings used in JSON payloads.
const char* status_code_name(StatusCode code) noexcept;

/// Inverse of status_code_name — remote clients mapping wire tokens back to
/// codes. Unknown tokens come back as kInternal.
StatusCode status_code_from_name(std::string_view name) noexcept;

/// Retry classification: true for codes that describe a condition expected
/// to clear on its own (kUnavailable, kOverloaded, kIoError). Everything
/// else — bad requests, singular systems, cancellation — is permanent:
/// resubmitting the identical request cannot succeed.
[[nodiscard]] bool status_is_transient(StatusCode code) noexcept;

/// 1-based position in the source netlist (or request payload); 0 = unknown.
struct SourceLocation {
  int line = 0;
  int column = 0;

  [[nodiscard]] bool known() const noexcept { return line > 0; }
  friend bool operator==(const SourceLocation& a, const SourceLocation& b) noexcept {
    return a.line == b.line && a.column == b.column;
  }
};

class Status {
 public:
  /// Default state is success.
  Status() noexcept = default;

  static Status error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code == StatusCode::kOk ? StatusCode::kInternal : code;
    s.message_ = std::move(message);
    return s;
  }
  static Status error(StatusCode code, std::string message, SourceLocation location) {
    Status s = error(code, std::move(message));
    s.location_ = location;
    return s;
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }
  [[nodiscard]] const SourceLocation& location() const noexcept { return location_; }

  /// "parse_error: unknown element card 'Z1' (line 3, column 1)".
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  SourceLocation location_;
};

/// Map the in-flight exception to a Status. Must be called inside a catch
/// block (it rethrows to dispatch on type):
///
///   try { ... } catch (...) { return api::status_from_current_exception(); }
///
/// netlist::ParseError -> kParseError (with line/column), mna::SpecError ->
/// kInvalidSpec, mna::SingularSystemError -> kSingularSystem,
/// sparse::RefusedReplayError -> kRefusedReplay, dc::NoConvergenceError ->
/// kNoConvergence, support::CancelledError -> kCancelled,
/// std::invalid_argument -> kInvalidArgument, std::bad_alloc ->
/// kUnavailable (allocation pressure is transient — retryable), anything
/// else -> kInternal.
[[nodiscard]] Status status_from_current_exception() noexcept;

/// A value or a non-ok Status. `status()` is always valid; `value()` only
/// when ok(). Moving the value out with take() is allowed once.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result from a Status requires an error");
    if (status_.ok()) status_ = Status::error(StatusCode::kInternal, "ok status without value");
  }

  [[nodiscard]] bool ok() const noexcept { return status_.ok(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] const T& value() const {
    assert(ok());
    return value_;
  }
  [[nodiscard]] T& value() {
    assert(ok());
    return value_;
  }
  [[nodiscard]] T take() {
    assert(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace symref::api
