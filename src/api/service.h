// The public entry point: compile once, query many times.
//
// Every caller used to hand-wire parse_netlist -> canonicalize ->
// NodalSystem -> AdaptiveScalingEngine / AcSimulator, re-paying the
// symbolic work on every query and letting exceptions leak across module
// boundaries. api::Service packages that flow the way a long-lived server
// would run it:
//
//   Service service;
//   auto handle = service.compile_netlist(text);          // once per circuit
//   if (!handle.ok()) { ... handle.status() ... }
//   auto ref = service.refgen(handle.value(), {spec, options});   // many times
//
// A CircuitHandle is an immutable compiled circuit — the parsed netlist,
// its canonical {G, C, VCCS} twin, and the NodalSystem — plus an internal
// per-TransferSpec cache of the expensive mutable state: the
// CofactorEvaluator (pattern-cached assembly + symbolic LU plan) for
// reference generation, the AcSimulator spec cache for sweeps, and (when
// ServiceOptions::cache_responses) memoized responses for repeated
// identical requests. Handles are cheap shared references; copying one
// shares the compiled circuit and its caches.
//
// No exception escapes any Service entry point: every method returns
// api::Result<T>, with failure classes mapped to distinct StatusCodes
// (api/status.h; the taxonomy is documented in docs/api.md).
//
// Concurrency: Service methods are safe to call from multiple threads.
// Requests against different handles (or different specs of one handle)
// run concurrently; requests sharing one handle+spec serialize on that
// spec's cache entry, except batch() items, which run shared-nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "api/requests.h"
#include "api/status.h"
#include "netlist/canonical.h"
#include "netlist/circuit.h"
#include "netlist/parser.h"

namespace symref::api {

namespace internal {
struct CompiledCircuit;
}

struct ServiceOptions {
  /// Canonicalization applied at compile() (gyrator/VCVS conductances...).
  netlist::CanonicalOptions canonical;
  /// Memoize responses per handle, keyed by the exact request parameters
  /// (thread counts excluded — results are bit-identical at any count).
  /// Identical repeated requests then cost a map lookup, the way an
  /// idempotent server endpoint would serve them.
  bool cache_responses = true;
  /// Bound on each per-spec response cache (refgen and sweep memoization
  /// each keep at most this many entries, least-recently-used evicted
  /// first). 0 = unbounded — the pre-LRU behavior, unsafe for a long-lived
  /// server under adversarial option churn.
  std::size_t max_cached_responses = 64;
};

/// Aggregate response-cache counters of one handle (all specs, refgen +
/// sweep caches combined) since compile. Monotonic except `entries`.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Responses currently resident across the handle's spec caches.
  std::size_t entries = 0;
};

/// Numeric-robustness counters of one handle (all specs combined) since
/// compile — the telemetry face of the degradation ladder. Monotonic.
struct EngineStats {
  /// Refused plan replays that fell back to a fresh factorization.
  std::uint64_t fresh_factorizations = 0;
  /// Fresh factorizations that only succeeded after relaxing the pivot
  /// threshold (the corresponding samples are flagged `degraded`).
  std::uint64_t pivot_escalations = 0;
  /// refgen() responses whose result carried the `degraded` flag.
  std::uint64_t degraded_responses = 0;
  /// Supernodes detected across the handle's current factorization plans
  /// (sum over the cached per-spec evaluators; see sparse/batched.h). A
  /// plan property, so NOT monotonic — it reflects the plans resident now.
  std::uint64_t supernodes = 0;
  /// Samples evaluated through the batched SoA replay kernel (all specs
  /// combined). Stays 0 under the scalar kernel. Monotonic.
  std::uint64_t batched_lanes = 0;
  /// Band-point evaluations the simplify() pruning/certification stages
  /// spent ranking candidates and trialing term drops. Monotonic.
  std::uint64_t simplify_term_evals = 0;
  /// Symbolic terms simplify() enumerated and then discarded (SAG drops).
  /// Monotonic.
  std::uint64_t simplify_terms_dropped = 0;
  /// Damped-Newton iterations spent solving DC operating points on this
  /// handle: the compile-time bias solve plus every per-sample re-bias a
  /// device-bearing param_sweep() performs. 0 on linear handles. Monotonic.
  std::uint64_t newton_iterations = 0;
  /// DC operating-point solves (compile-time bias + param_sweep re-biases).
  /// 0 on linear handles. Monotonic.
  std::uint64_t op_solves = 0;
  /// Accepted time steps integrated by transient() requests on this handle
  /// (computed runs only — cache hits do not re-count). Monotonic.
  std::uint64_t transient_steps = 0;
  /// Transient step candidates the LTE controller rejected and retried in a
  /// smaller step bucket. Monotonic.
  std::uint64_t lte_rejections = 0;
};

/// A compiled circuit: immutable shared state plus internally synchronized
/// per-spec plan/response caches. Obtain from Service::compile*; a
/// default-constructed handle is empty (valid() == false) and every request
/// against it fails with kInvalidArgument.
class CircuitHandle {
 public:
  CircuitHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return compiled_ != nullptr; }

  /// The circuit as given (pre-canonicalization). Requires valid().
  [[nodiscard]] const netlist::Circuit& circuit() const;
  /// True when the compiled netlist carries nonlinear devices (D/Q/M
  /// cards); such a handle solved its DC bias at compile and serves every
  /// AC-family request on the linearized circuit (auto_linearize gate).
  [[nodiscard]] bool has_devices() const;
  /// The small-signal circuit the AC-family analyses run on: the
  /// linearization of circuit() at the solved operating point when
  /// has_devices(), circuit() itself otherwise. Requires valid().
  [[nodiscard]] const netlist::Circuit& linear() const;
  /// True when the handle was compiled from netlist text, which retains the
  /// parsed template — the prerequisite for param_sweep() (a programmatic
  /// compile() has no parameters to re-elaborate).
  [[nodiscard]] bool has_netlist_template() const;
  /// Top-level `.param` names of the compiled netlist (empty for
  /// programmatic handles). Requires valid().
  [[nodiscard]] const std::vector<std::string>& parameter_names() const;
  /// The canonical {G, C, VCCS} twin the interpolation engine runs on.
  [[nodiscard]] const netlist::Circuit& canonical() const;
  /// Admittance-matrix dimension and determinant-degree bound.
  [[nodiscard]] int dim() const;
  [[nodiscard]] int order_bound() const;
  /// Compile-time label (explicit name, else the netlist title).
  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] std::string summary() const;

 private:
  friend class Service;
  std::shared_ptr<internal::CompiledCircuit> compiled_;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Parse + canonicalize + build the nodal system. `name` labels the
  /// handle (falls back to the netlist .title).
  [[nodiscard]] Result<CircuitHandle> compile_netlist(std::string_view text,
                                                      std::string name = {}) const;

  /// Compile a programmatically built circuit (copied into the handle).
  [[nodiscard]] Result<CircuitHandle> compile(const netlist::Circuit& circuit,
                                              std::string name = {}) const;

  /// The paper's algorithm for one transfer function of the handle.
  /// Warm path: repeated requests on one handle reuse the spec's evaluator
  /// (assembly pattern + LU plan) and, for identical requests, the memoized
  /// response. Errors: kInvalidSpec, kSingularSystem, kIncomplete.
  [[nodiscard]] Result<RefgenResponse> refgen(const CircuitHandle& handle,
                                              const RefgenRequest& request) const;

  /// Direct AC sweep. Warm path: the spec's cached simulator sweeps via
  /// plan replay. Errors: kInvalidSpec, kInvalidArgument (bad grid),
  /// kSingularSystem.
  [[nodiscard]] Result<SweepResponse> sweep(const CircuitHandle& handle,
                                            const SweepRequest& request) const;

  /// Reference generation (cache-shared with refgen()) + root extraction.
  [[nodiscard]] Result<PolesZerosResponse> poles_zeros(const CircuitHandle& handle,
                                                       const PolesZerosRequest& request) const;

  /// Plan-reusing parameter sweep (grid or seeded Monte-Carlo) over the
  /// handle's top-level `.param` symbols: compile once, re-stamp values and
  /// replay the baseline factorization plan per sample. Bit-identical at
  /// every thread count. Errors: kInvalidArgument (programmatic handle,
  /// unknown parameter, bad grid/sample counts), kInvalidSpec,
  /// kParseError (a sample drives an expression into a failure, e.g.
  /// division by zero), kCancelled.
  [[nodiscard]] Result<ParamSweepResponse> param_sweep(const CircuitHandle& handle,
                                                       const ParamSweepRequest& request) const;

  /// Reference-driven symbolic simplification: prune the circuit, generate
  /// the reduced reference, enumerate terms under eq. (3) and drop them
  /// greedily while the certificate stays inside the budget. Warm path: the
  /// spec's cached evaluator serves the baseline band sweep; identical
  /// requests hit the per-spec response cache. Errors: kInvalidSpec,
  /// kIncomplete, kSingularSystem, kInvalidArgument, kCancelled.
  [[nodiscard]] Result<SimplifyResponse> simplify(const CircuitHandle& handle,
                                                  const SimplifyRequest& request) const;

  /// The DC operating point of a device-bearing handle. The bias was
  /// solved once at compile (one shared Newton factorization plan); this
  /// serves the stored solution, so from_cache is true on every call after
  /// the first. Errors: kInvalidArgument (purely linear handle — no bias
  /// problem). A bias solve that fails surfaces at compile_netlist/compile
  /// as kNoConvergence or kSingularSystem, never here.
  [[nodiscard]] Result<OpResponse> op(const CircuitHandle& handle,
                                      const OpRequest& request) const;

  /// Time-domain integration over [0, tstop]. No auto_linearize gate: the
  /// integrator runs the handle's large-signal circuit directly (devices get
  /// a warm-started Newton iteration per step). Small responses are memoized
  /// like the other request types; big waveforms are recomputed
  /// bit-identically instead of pinned in the LRU. Errors: kInvalidArgument
  /// (bad tstop/tstep), kSingularSystem, kNoConvergence, kCancelled.
  [[nodiscard]] Result<TransientResponse> transient(const CircuitHandle& handle,
                                                    const TransientRequest& request) const;

  /// Many refgen items against one handle, shared-nothing in parallel.
  /// The call itself only fails for an invalid handle; per-item failures
  /// come back in BatchResponse::items[i].status.
  [[nodiscard]] Result<BatchResponse> batch(const CircuitHandle& handle,
                                            const BatchRequest& request) const;

  /// Response-cache counters of the handle (hit/miss/eviction totals and
  /// resident entries). Cheap; safe to call concurrently with requests.
  [[nodiscard]] Result<CacheStats> cache_stats(const CircuitHandle& handle) const;

  /// Numeric-robustness counters of the handle (fresh factorizations, pivot
  /// escalations, degraded responses). Cheap; safe to call concurrently
  /// with requests.
  [[nodiscard]] Result<EngineStats> engine_stats(const CircuitHandle& handle) const;

  [[nodiscard]] const ServiceOptions& options() const noexcept { return options_; }

 private:
  [[nodiscard]] Result<CircuitHandle> finish_compile(
      netlist::Circuit circuit, std::string name,
      netlist::NetlistTemplate netlist_template = {}) const;

  ServiceOptions options_;
};

}  // namespace symref::api
