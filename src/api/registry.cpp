#include "api/registry.h"

#include <algorithm>
#include <utility>

namespace symref::api {

std::string Registry::add(CircuitHandle handle, std::string content_key) {
  if (!handle.valid()) return {};
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string id = "c" + std::to_string(++next_);
  entries_.push_back(Entry{id, std::move(handle), std::move(content_key)});
  return id;
}

Result<CircuitHandle> Registry::get(std::string_view id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.id == id) return entry.handle;
  }
  return Status::error(StatusCode::kNotFound,
                       "unknown circuit_id \"" + std::string(id) + "\"");
}

std::string Registry::content_key(std::string_view id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.id == id) return entry.content_key;
  }
  return {};
}

std::vector<Registry::Entry> Registry::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

bool Registry::evict(std::string_view id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& entry) { return entry.id == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace symref::api
