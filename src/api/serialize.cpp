#include "api/serialize.h"

#include <climits>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace symref::api {

namespace {

/// Hex-float rendering of a double: bit-exact and inf/nan-capable.
std::string hex_double(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

Json scaled_to_json(const numeric::ScaledDouble& value) {
  Json out = Json::object();
  out.set("mantissa", hex_double(value.mantissa()));
  out.set("exp2", static_cast<double>(value.exponent2()));
  // Convenience double for consumers that do not need the extended range;
  // null when the value over/underflows IEEE double (saturated to_double()
  // would be misleading, and JSON cannot carry the inf anyway).
  const double approx = value.to_double();
  if (std::isfinite(approx) && (approx != 0.0 || value.is_zero())) {
    out.set("approx", approx);
  } else {
    out.set("approx", nullptr);
  }
  return out;
}

Json complex_to_json(std::complex<double> value) {
  Json out = Json::object();
  out.set("real", value.real());
  out.set("imag", value.imag());
  return out;
}

Json polynomial_to_json(const refgen::PolynomialReference& poly) {
  Json coefficients = Json::array();
  for (int i = 0; i <= poly.order_bound(); ++i) {
    const refgen::Coefficient& c = poly.at(i);
    Json entry = Json::object();
    entry.set("index", i);
    entry.set("value", scaled_to_json(c.value));
    entry.set("status", refgen::coefficient_status_name(c.status));
    entry.set("accuracy", c.relative_accuracy);
    coefficients.push_back(std::move(entry));
  }
  Json out = Json::object();
  out.set("order_bound", poly.order_bound());
  out.set("effective_order", poly.effective_order());
  out.set("complete", poly.complete());
  out.set("coefficients", std::move(coefficients));
  return out;
}

/// Shared response header. Success payloads append their fields after it.
Json envelope(const char* type, const Status& status) {
  Json out = Json::object();
  out.set("type", type);
  out.set("status", to_json(status));
  return out;
}

// --- Strict decoding helpers ------------------------------------------------

/// Verifies every member of `json` is in the allowed list.
Status check_keys(const Json& json, std::initializer_list<const char*> allowed,
                  const char* what) {
  if (!json.is_object()) {
    return Status::error(StatusCode::kInvalidArgument,
                         std::string(what) + ": expected a JSON object");
  }
  for (const auto& [key, value] : json.members()) {
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::error(StatusCode::kInvalidArgument,
                           std::string(what) + ": unknown key \"" + key + "\"");
    }
  }
  return Status();
}

Status read_string(const Json& json, const char* key, bool required, std::string* out,
                   const char* what) {
  const Json* value = json.find(key);
  if (value == nullptr) {
    if (!required) return Status();
    return Status::error(StatusCode::kInvalidArgument,
                         std::string(what) + ": missing required key \"" + key + "\"");
  }
  if (!value->is_string()) {
    return Status::error(StatusCode::kInvalidArgument,
                         std::string(what) + ": \"" + key + "\" must be a string");
  }
  *out = value->as_string();
  return Status();
}

Status read_number(const Json& json, const char* key, double* out, const char* what) {
  const Json* value = json.find(key);
  if (value == nullptr) return Status();
  if (!value->is_number()) {
    return Status::error(StatusCode::kInvalidArgument,
                         std::string(what) + ": \"" + key + "\" must be a number");
  }
  *out = value->as_number();
  return Status();
}

/// read_number that treats an absent key as an error — for fields where a
/// silent default would change the study (sweep ranges, nominals).
Status read_required_number(const Json& json, const char* key, double* out,
                            const char* what) {
  if (json.find(key) == nullptr) {
    return Status::error(StatusCode::kInvalidArgument,
                         std::string(what) + ": missing required key \"" + key + "\"");
  }
  return read_number(json, key, out, what);
}

Status read_int(const Json& json, const char* key, int* out, const char* what) {
  double value = *out;
  const Status status = read_number(json, key, &value, what);
  if (!status.ok()) return status;
  // Reject rather than cast out-of-range doubles: the cast would be UB,
  // and these fields come from untrusted request files.
  if (!(value >= static_cast<double>(INT_MIN) && value <= static_cast<double>(INT_MAX)) ||
      value != static_cast<double>(static_cast<int>(value))) {
    return Status::error(StatusCode::kInvalidArgument,
                         std::string(what) + ": \"" + key + "\" must be an integer");
  }
  *out = static_cast<int>(value);
  return Status();
}

const char* kernel_name(sparse::ReplayKernel kernel) noexcept {
  return kernel == sparse::ReplayKernel::kBatched ? "batched" : "scalar";
}

/// Optional "kernel" member: "scalar" (default) or "batched". Results are
/// bit-identical either way, so an absent key is never an error.
Status read_kernel(const Json& json, const char* key, sparse::ReplayKernel* out,
                   const char* what) {
  const Json* value = json.find(key);
  if (value == nullptr) return Status();
  if (!value->is_string()) {
    return Status::error(StatusCode::kInvalidArgument,
                         std::string(what) + ": \"" + key + "\" must be a string");
  }
  const std::string& name = value->as_string();
  if (name == "scalar") {
    *out = sparse::ReplayKernel::kScalar;
  } else if (name == "batched") {
    *out = sparse::ReplayKernel::kBatched;
  } else {
    return Status::error(StatusCode::kInvalidArgument,
                         std::string(what) + ": unknown kernel \"" + name +
                             "\" (expected scalar or batched)");
  }
  return Status();
}

Status read_bool(const Json& json, const char* key, bool* out, const char* what) {
  const Json* value = json.find(key);
  if (value == nullptr) return Status();
  if (!value->is_bool()) {
    return Status::error(StatusCode::kInvalidArgument,
                         std::string(what) + ": \"" + key + "\" must be a boolean");
  }
  *out = value->as_bool();
  return Status();
}

}  // namespace

Json to_json(const Status& status) {
  Json out = Json::object();
  out.set("code", status_code_name(status.code()));
  if (!status.message().empty()) out.set("message", status.message());
  if (status.location().known()) {
    out.set("line", status.location().line);
    if (status.location().column > 0) out.set("column", status.location().column);
  }
  return out;
}

Json to_json(const mna::TransferSpec& spec) {
  Json out = Json::object();
  out.set("kind", spec.kind == mna::TransferSpec::Kind::VoltageGain ? "voltage_gain"
                                                                    : "transimpedance");
  out.set("in", spec.in_pos);
  out.set("in_neg", spec.in_neg);
  out.set("out", spec.out_pos);
  out.set("out_neg", spec.out_neg);
  return out;
}

Json to_json(const refgen::AdaptiveOptions& options) {
  Json out = Json::object();
  out.set("sigma", options.sigma);
  out.set("noise_decades", options.noise_decades);
  out.set("tuning_r", options.tuning_r);
  out.set("max_iterations", options.max_iterations);
  out.set("use_deflation", options.use_deflation);
  out.set("conjugate_symmetry", options.conjugate_symmetry);
  out.set("simultaneous_scaling", options.simultaneous_scaling);
  out.set("geometric_mean_heuristic", options.geometric_mean_heuristic);
  out.set("initial_f", options.initial_f);
  out.set("initial_g", options.initial_g);
  out.set("no_progress_limit", options.no_progress_limit);
  out.set("threads", options.threads);
  out.set("kernel", kernel_name(options.kernel));
  return out;
}

Json to_json(const refgen::NumericalReference& reference) {
  Json out = Json::object();
  out.set("numerator", polynomial_to_json(reference.numerator()));
  out.set("denominator", polynomial_to_json(reference.denominator()));
  return out;
}

Json to_json(const RefgenResponse& response) {
  Json out = envelope("refgen", Status());
  out.set("from_cache", response.from_cache);
  out.set("seconds", response.seconds);
  out.set("termination", response.result.termination);
  out.set("complete", response.result.complete);
  out.set("iterations", static_cast<double>(response.result.iterations.size()));
  out.set("total_evaluations", response.result.total_evaluations);
  out.set("engine_seconds", response.result.seconds);
  out.set("numerator_degree", response.result.numerator_degree);
  out.set("denominator_degree", response.result.denominator_degree);
  out.set("degraded", response.result.degraded);
  out.set("degraded_points", static_cast<double>(response.result.degraded_points));
  out.set("reference", to_json(response.result.reference));
  return out;
}

Json to_json(const OpResponse& response) {
  Json out = envelope("op", Status());
  out.set("from_cache", response.from_cache);
  out.set("seconds", response.seconds);
  const dc::OpResult& result = response.result;
  Json nodes = Json::array();
  for (std::size_t i = 0; i < result.node_names.size(); ++i) {
    Json entry = Json::object();
    entry.set("name", result.node_names[i]);
    // Hex floats: the 1-vs-N-thread byte-compare of the CLI smoke rides on
    // bit-exactness, like the reference coefficients.
    entry.set("v", hex_double(result.node_voltages[i]));
    entry.set("volts", result.node_voltages[i]);
    nodes.push_back(std::move(entry));
  }
  out.set("nodes", std::move(nodes));
  Json branches = Json::array();
  for (std::size_t i = 0; i < result.branch_names.size(); ++i) {
    Json entry = Json::object();
    entry.set("name", result.branch_names[i]);
    entry.set("i", hex_double(result.branch_currents[i]));
    entry.set("amps", result.branch_currents[i]);
    branches.push_back(std::move(entry));
  }
  out.set("branches", std::move(branches));
  Json devices = Json::array();
  for (const dc::OpDeviceInfo& device : result.devices) {
    Json entry = Json::object();
    entry.set("name", device.name);
    entry.set("kind", device.kind);
    Json values = Json::object();
    for (const auto& [key, value] : device.values) values.set(key, hex_double(value));
    entry.set("values", std::move(values));
    devices.push_back(std::move(entry));
  }
  out.set("devices", std::move(devices));
  out.set("newton_iterations", result.newton_iterations);
  out.set("gmin_steps", result.gmin_steps);
  out.set("source_steps", result.source_steps);
  out.set("fresh_factorizations", static_cast<double>(result.fresh_factorizations));
  out.set("pivot_escalations", static_cast<double>(result.pivot_escalations));
  out.set("degraded", result.degraded);
  out.set("max_residual", hex_double(result.max_residual));
  out.set("engine_seconds", result.seconds);
  return out;
}

Json to_json(const SweepResponse& response) {
  Json out = envelope("sweep", Status());
  out.set("from_cache", response.from_cache);
  out.set("seconds", response.seconds);
  Json points = Json::array();
  for (const mna::BodePoint& point : response.points) {
    Json entry = Json::object();
    entry.set("frequency_hz", point.frequency_hz);
    entry.set("real", point.value.real());
    entry.set("imag", point.value.imag());
    entry.set("magnitude_db", point.magnitude_db);
    entry.set("phase_deg", point.phase_deg);
    points.push_back(std::move(entry));
  }
  out.set("points", std::move(points));
  return out;
}

Json to_json(const PolesZerosResponse& response) {
  Json out = envelope("poles_zeros", Status());
  out.set("from_cache", response.from_cache);
  out.set("seconds", response.seconds);
  Json poles = Json::array();
  for (const auto& pole : response.poles) poles.push_back(complex_to_json(pole));
  Json zeros = Json::array();
  for (const auto& zero : response.zeros) zeros.push_back(complex_to_json(zero));
  out.set("poles", std::move(poles));
  out.set("zeros", std::move(zeros));
  out.set("poles_converged", response.poles_converged);
  out.set("zeros_converged", response.zeros_converged);
  return out;
}

Json to_json(const BatchResponse& response) {
  Json out = envelope("batch", Status());
  out.set("seconds", response.seconds);
  Json items = Json::array();
  for (const BatchItemResponse& item : response.items) {
    items.push_back(item.status.ok() ? to_json(item.response)
                                     : error_response("refgen", item.status));
  }
  out.set("items", std::move(items));
  return out;
}

Json to_json(const ParamSweepResponse& response) {
  Json out = envelope("param_sweep", Status());
  out.set("from_cache", response.from_cache);
  out.set("seconds", response.seconds);
  const mna::ParamSweepResult& result = response.result;
  Json names = Json::array();
  for (const std::string& name : result.names) names.push_back(name);
  out.set("names", std::move(names));
  Json frequencies = Json::array();
  for (const double f : result.frequencies_hz) frequencies.push_back(f);
  out.set("frequencies_hz", std::move(frequencies));
  out.set("fresh_factorizations", static_cast<double>(result.fresh_factorizations));
  out.set("op_solves", static_cast<double>(result.op_solves));
  out.set("newton_iterations", static_cast<double>(result.newton_iterations));
  out.set("engine_seconds", result.seconds);

  const std::size_t width = result.names.size();
  const std::size_t points = result.frequencies_hz.size();
  Json samples = Json::array();
  const std::size_t count = width == 0 ? 0 : result.values.size() / width;
  for (std::size_t i = 0; i < count; ++i) {
    Json sample = Json::object();
    Json values = Json::array();
    for (std::size_t j = 0; j < width; ++j) values.push_back(result.values[i * width + j]);
    sample.set("values", std::move(values));
    sample.set("ok", i < result.ok.size() && result.ok[i] != 0);
    Json points_json = Json::array();
    for (std::size_t k = 0; k < points; ++k) {
      const std::complex<double> h = result.response[i * points + k];
      Json point = Json::object();
      // Hex floats: bit-exact across the wire (and hex "nan" for the
      // points of a failed sample), like the reference coefficients.
      point.set("real", hex_double(h.real()));
      point.set("imag", hex_double(h.imag()));
      point.set("magnitude_db", mna::magnitude_db(h));
      points_json.push_back(std::move(point));
    }
    sample.set("response", std::move(points_json));
    samples.push_back(std::move(sample));
  }
  out.set("samples", std::move(samples));
  return out;
}

Json to_json(const TransientResponse& response) {
  Json out = envelope("transient", Status());
  out.set("from_cache", response.from_cache);
  out.set("seconds", response.seconds);
  const transient::TransientResult& result = response.result;
  out.set("steps", result.steps);
  out.set("lte_rejections", result.lte_rejections);
  out.set("newton_iterations", result.newton_iterations);
  out.set("step_size_buckets", result.step_size_buckets);
  out.set("fresh_factorizations", static_cast<double>(result.fresh_factorizations));
  out.set("pivot_escalations", static_cast<double>(result.pivot_escalations));
  out.set("degraded", result.degraded);
  out.set("engine_seconds", result.seconds);
  Json nodes = Json::array();
  for (const std::string& name : result.node_names) nodes.push_back(name);
  out.set("nodes", std::move(nodes));
  Json branches = Json::array();
  for (const std::string& name : result.branch_names) branches.push_back(name);
  out.set("branches", std::move(branches));
  Json points = Json::array();
  for (std::size_t k = 0; k < result.times.size(); ++k) {
    Json point = Json::object();
    // Hex floats: the 1-vs-N-thread and daemon-vs-CLI byte-compares ride on
    // bit-exactness; "time" is the plot-friendly approximation.
    point.set("t", hex_double(result.times[k]));
    point.set("time", result.times[k]);
    Json values = Json::array();
    for (const double x : result.states[k]) values.push_back(hex_double(x));
    point.set("v", std::move(values));
    points.push_back(std::move(point));
  }
  out.set("points", std::move(points));
  return out;
}

namespace {

Json simplified_terms_to_json(const std::vector<refgen::SimplifiedTerm>& terms) {
  Json out = Json::array();
  for (const refgen::SimplifiedTerm& term : terms) {
    Json entry = Json::object();
    entry.set("coefficient", term.coefficient);
    Json symbols = Json::array();
    for (const std::string& symbol : term.symbols) symbols.push_back(symbol);
    entry.set("symbols", std::move(symbols));
    entry.set("s_power", term.s_power);
    entry.set("value", scaled_to_json(term.value));
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace

Json to_json(const SimplifyResponse& response) {
  Json out = envelope("simplify", Status());
  out.set("from_cache", response.from_cache);
  out.set("seconds", response.seconds);
  const refgen::SimplifyResult& result = response.result;
  out.set("engine_seconds", result.seconds);
  out.set("reduced_dim", result.reduced_dim);
  out.set("reduced_elements", static_cast<double>(result.reduced_elements));
  out.set("original_elements", static_cast<double>(result.original_elements));
  out.set("enumerated_terms", static_cast<double>(result.enumerated_terms));
  out.set("kept_terms", static_cast<double>(result.kept_terms));
  out.set("terms_dropped", static_cast<double>(result.terms_dropped));
  out.set("term_evals", static_cast<double>(result.term_evals));
  out.set("ranking_fresh_factorizations",
          static_cast<double>(result.ranking_fresh_factorizations));
  Json actions = Json::array();
  for (const refgen::SimplifyPruneAction& action : result.prune_actions) {
    Json entry = Json::object();
    entry.set("element", action.element);
    entry.set("op", action.op);
    entry.set("error_after", action.error_after);
    actions.push_back(std::move(entry));
  }
  out.set("prune_actions", std::move(actions));
  Json certificate = Json::object();
  certificate.set("error_budget", result.certificate.error_budget);
  certificate.set("max_relative_error", hex_double(result.certificate.max_relative_error));
  Json points = Json::array();
  for (std::size_t i = 0; i < result.certificate.frequencies_hz.size(); ++i) {
    Json point = Json::object();
    point.set("frequency_hz", result.certificate.frequencies_hz[i]);
    // Hex floats: the daemon-vs-CLI byte-compare rides on bit-exactness.
    point.set("relative_error", hex_double(result.certificate.relative_error[i]));
    points.push_back(std::move(point));
  }
  certificate.set("points", std::move(points));
  out.set("certificate", std::move(certificate));
  out.set("numerator_expression", result.numerator_expression);
  out.set("denominator_expression", result.denominator_expression);
  out.set("numerator_terms", simplified_terms_to_json(result.numerator_terms));
  out.set("denominator_terms", simplified_terms_to_json(result.denominator_terms));
  return out;
}

Json error_response(const char* type, const Status& status) {
  return envelope(type, status);
}

Result<mna::TransferSpec> spec_from_json(const Json& json) {
  constexpr const char* kWhat = "spec";
  Status status = check_keys(json, {"kind", "in", "in_neg", "out", "out_neg"}, kWhat);
  if (!status.ok()) return status;

  mna::TransferSpec spec;
  std::string kind = "voltage_gain";
  if (!(status = read_string(json, "kind", false, &kind, kWhat)).ok()) return status;
  if (kind == "voltage_gain") {
    spec.kind = mna::TransferSpec::Kind::VoltageGain;
  } else if (kind == "transimpedance") {
    spec.kind = mna::TransferSpec::Kind::Transimpedance;
  } else {
    return Status::error(StatusCode::kInvalidArgument,
                         "spec: unknown kind \"" + kind +
                             "\" (expected voltage_gain or transimpedance)");
  }
  if (!(status = read_string(json, "in", true, &spec.in_pos, kWhat)).ok()) return status;
  if (!(status = read_string(json, "out", true, &spec.out_pos, kWhat)).ok()) return status;
  if (!(status = read_string(json, "in_neg", false, &spec.in_neg, kWhat)).ok()) return status;
  if (!(status = read_string(json, "out_neg", false, &spec.out_neg, kWhat)).ok()) return status;
  return spec;
}

Result<refgen::AdaptiveOptions> options_from_json(const Json& json) {
  constexpr const char* kWhat = "options";
  Status status = check_keys(json,
                             {"sigma", "noise_decades", "tuning_r", "max_iterations",
                              "use_deflation", "conjugate_symmetry", "simultaneous_scaling",
                              "geometric_mean_heuristic", "initial_f", "initial_g",
                              "no_progress_limit", "threads", "kernel"},
                             kWhat);
  if (!status.ok()) return status;

  refgen::AdaptiveOptions options;
  if (!(status = read_int(json, "sigma", &options.sigma, kWhat)).ok()) return status;
  if (!(status = read_number(json, "noise_decades", &options.noise_decades, kWhat)).ok()) {
    return status;
  }
  if (!(status = read_number(json, "tuning_r", &options.tuning_r, kWhat)).ok()) return status;
  if (!(status = read_int(json, "max_iterations", &options.max_iterations, kWhat)).ok()) {
    return status;
  }
  if (!(status = read_bool(json, "use_deflation", &options.use_deflation, kWhat)).ok()) {
    return status;
  }
  if (!(status = read_bool(json, "conjugate_symmetry", &options.conjugate_symmetry, kWhat))
           .ok()) {
    return status;
  }
  if (!(status = read_bool(json, "simultaneous_scaling", &options.simultaneous_scaling, kWhat))
           .ok()) {
    return status;
  }
  if (!(status = read_bool(json, "geometric_mean_heuristic",
                           &options.geometric_mean_heuristic, kWhat))
           .ok()) {
    return status;
  }
  if (!(status = read_number(json, "initial_f", &options.initial_f, kWhat)).ok()) return status;
  if (!(status = read_number(json, "initial_g", &options.initial_g, kWhat)).ok()) return status;
  if (!(status = read_int(json, "no_progress_limit", &options.no_progress_limit, kWhat)).ok()) {
    return status;
  }
  if (!(status = read_int(json, "threads", &options.threads, kWhat)).ok()) return status;
  if (!(status = read_kernel(json, "kernel", &options.kernel, kWhat)).ok()) return status;
  return options;
}

const char* request_type_name(AnyRequest::Type type) noexcept {
  switch (type) {
    case AnyRequest::Type::kRefgen: return "refgen";
    case AnyRequest::Type::kSweep: return "sweep";
    case AnyRequest::Type::kPolesZeros: return "poles_zeros";
    case AnyRequest::Type::kBatch: return "batch";
    case AnyRequest::Type::kParamSweep: return "param_sweep";
    case AnyRequest::Type::kSimplify: return "simplify";
    case AnyRequest::Type::kOp: return "op";
    case AnyRequest::Type::kTransient: return "transient";
  }
  return "refgen";
}

Json to_json(const AnyRequest& request) {
  Json out = Json::object();
  out.set("type", request_type_name(request.type));
  switch (request.type) {
    case AnyRequest::Type::kRefgen:
      out.set("spec", to_json(request.refgen.spec));
      out.set("options", to_json(request.refgen.options));
      out.set("auto_linearize", request.refgen.auto_linearize);
      break;
    case AnyRequest::Type::kPolesZeros:
      out.set("spec", to_json(request.poles_zeros.spec));
      out.set("options", to_json(request.poles_zeros.options));
      out.set("auto_linearize", request.poles_zeros.auto_linearize);
      break;
    case AnyRequest::Type::kOp:
      out.set("threads", request.op.threads);
      break;
    case AnyRequest::Type::kTransient:
      out.set("tstop", request.transient.tstop);
      out.set("tstep", request.transient.tstep);
      out.set("method", transient::method_name(request.transient.method));
      out.set("adaptive", request.transient.adaptive);
      out.set("threads", request.transient.threads);
      break;
    case AnyRequest::Type::kSweep:
      out.set("spec", to_json(request.sweep.spec));
      out.set("f_start_hz", request.sweep.f_start_hz);
      out.set("f_stop_hz", request.sweep.f_stop_hz);
      out.set("points_per_decade", request.sweep.points_per_decade);
      out.set("threads", request.sweep.threads);
      out.set("kernel", kernel_name(request.sweep.kernel));
      out.set("auto_linearize", request.sweep.auto_linearize);
      break;
    case AnyRequest::Type::kBatch: {
      Json items = Json::array();
      for (const RefgenRequest& item : request.batch.items) {
        Json entry = Json::object();
        entry.set("spec", to_json(item.spec));
        entry.set("options", to_json(item.options));
        items.push_back(std::move(entry));
      }
      out.set("items", std::move(items));
      out.set("threads", request.batch.threads);
      break;
    }
    case AnyRequest::Type::kSimplify: {
      const refgen::SimplifyOptions& options = request.simplify.options;
      out.set("spec", to_json(request.simplify.spec));
      out.set("error_budget", options.error_budget);
      out.set("f_start_hz", options.f_start_hz);
      out.set("f_stop_hz", options.f_stop_hz);
      out.set("band_points", options.band_points);
      out.set("prune", options.prune);
      out.set("prune_share", options.prune_share);
      out.set("max_terms", static_cast<double>(options.max_terms_per_coefficient));
      out.set("max_queue", static_cast<double>(options.max_queue));
      out.set("skip_factor", options.coefficient_skip_factor);
      out.set("options", to_json(options.engine));
      out.set("auto_linearize", request.simplify.auto_linearize);
      break;
    }
    case AnyRequest::Type::kParamSweep: {
      const ParamSweepRequest& sweep = request.param_sweep;
      out.set("spec", to_json(sweep.spec));
      const bool grid = sweep.mode == ParamSweepRequest::Mode::kGrid;
      out.set("mode", grid ? "grid" : "monte_carlo");
      Json params = Json::array();
      if (grid) {
        for (const mna::ParamAxis& axis : sweep.axes) {
          Json entry = Json::object();
          entry.set("name", axis.name);
          entry.set("from", axis.from);
          entry.set("to", axis.to);
          entry.set("count", axis.count);
          entry.set("log", axis.log_scale);
          params.push_back(std::move(entry));
        }
      } else {
        for (const mna::ParamDist& dist : sweep.dists) {
          Json entry = Json::object();
          entry.set("name", dist.name);
          entry.set("nominal", dist.nominal);
          entry.set("rel_sigma", dist.rel_sigma);
          entry.set("dist",
                    dist.kind == mna::ParamDist::Kind::kGaussian ? "gaussian" : "uniform");
          params.push_back(std::move(entry));
        }
        out.set("samples", sweep.samples);
        out.set("seed", static_cast<double>(sweep.seed));
      }
      out.set("params", std::move(params));
      out.set("f_start_hz", sweep.f_start_hz);
      out.set("f_stop_hz", sweep.f_stop_hz);
      out.set("points_per_decade", sweep.points_per_decade);
      out.set("threads", sweep.threads);
      out.set("kernel", kernel_name(sweep.kernel));
      out.set("auto_linearize", sweep.auto_linearize);
      break;
    }
  }
  return out;
}

Result<AnyRequest> request_from_json(const Json& json) {
  constexpr const char* kWhat = "request";
  if (!json.is_object()) {
    return Status::error(StatusCode::kInvalidArgument, "request: expected a JSON object");
  }
  std::string type;
  Status status = read_string(json, "type", true, &type, kWhat);
  if (!status.ok()) return status;

  AnyRequest request;
  if (type == "refgen" || type == "poles_zeros") {
    status = check_keys(json, {"type", "spec", "options", "auto_linearize"}, kWhat);
    if (!status.ok()) return status;
    const Json* spec = json.find("spec");
    if (spec == nullptr) {
      return Status::error(StatusCode::kInvalidArgument,
                           "request: missing required key \"spec\"");
    }
    Result<mna::TransferSpec> parsed_spec = spec_from_json(*spec);
    if (!parsed_spec.ok()) return parsed_spec.status();
    refgen::AdaptiveOptions options;
    if (const Json* options_json = json.find("options"); options_json != nullptr) {
      Result<refgen::AdaptiveOptions> parsed = options_from_json(*options_json);
      if (!parsed.ok()) return parsed.status();
      options = parsed.take();
    }
    bool auto_linearize = false;
    if (!(status = read_bool(json, "auto_linearize", &auto_linearize, kWhat)).ok()) {
      return status;
    }
    if (type == "refgen") {
      request.type = AnyRequest::Type::kRefgen;
      request.refgen = {parsed_spec.take(), std::move(options), auto_linearize};
    } else {
      request.type = AnyRequest::Type::kPolesZeros;
      request.poles_zeros = {parsed_spec.take(), std::move(options), auto_linearize};
    }
    return request;
  }
  if (type == "sweep") {
    status = check_keys(
        json,
        {"type", "spec", "f_start_hz", "f_stop_hz", "points_per_decade", "threads", "kernel",
         "auto_linearize"},
        kWhat);
    if (!status.ok()) return status;
    const Json* spec = json.find("spec");
    if (spec == nullptr) {
      return Status::error(StatusCode::kInvalidArgument,
                           "request: missing required key \"spec\"");
    }
    Result<mna::TransferSpec> parsed_spec = spec_from_json(*spec);
    if (!parsed_spec.ok()) return parsed_spec.status();
    request.type = AnyRequest::Type::kSweep;
    request.sweep.spec = parsed_spec.take();
    if (!(status = read_number(json, "f_start_hz", &request.sweep.f_start_hz, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_number(json, "f_stop_hz", &request.sweep.f_stop_hz, kWhat)).ok()) {
      return status;
    }
    if (!(status =
              read_int(json, "points_per_decade", &request.sweep.points_per_decade, kWhat))
             .ok()) {
      return status;
    }
    if (!(status = read_int(json, "threads", &request.sweep.threads, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_kernel(json, "kernel", &request.sweep.kernel, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_bool(json, "auto_linearize", &request.sweep.auto_linearize, kWhat))
             .ok()) {
      return status;
    }
    return request;
  }
  if (type == "op") {
    status = check_keys(json, {"type", "threads"}, kWhat);
    if (!status.ok()) return status;
    request.type = AnyRequest::Type::kOp;
    if (!(status = read_int(json, "threads", &request.op.threads, kWhat)).ok()) return status;
    return request;
  }
  if (type == "transient") {
    status = check_keys(json, {"type", "tstop", "tstep", "method", "adaptive", "threads"},
                        kWhat);
    if (!status.ok()) return status;
    request.type = AnyRequest::Type::kTransient;
    TransientRequest& tran = request.transient;
    if (!(status = read_required_number(json, "tstop", &tran.tstop, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_number(json, "tstep", &tran.tstep, kWhat)).ok()) return status;
    std::string method;
    if (!(status = read_string(json, "method", false, &method, kWhat)).ok()) return status;
    if (!method.empty()) {
      try {
        tran.method = transient::method_from_name(method);
      } catch (const std::invalid_argument& e) {
        return Status::error(StatusCode::kInvalidArgument, std::string("request: ") + e.what());
      }
    }
    if (!(status = read_bool(json, "adaptive", &tran.adaptive, kWhat)).ok()) return status;
    if (!(status = read_int(json, "threads", &tran.threads, kWhat)).ok()) return status;
    return request;
  }
  if (type == "batch") {
    status = check_keys(json, {"type", "items", "threads"}, kWhat);
    if (!status.ok()) return status;
    const Json* items = json.find("items");
    if (items == nullptr || !items->is_array()) {
      return Status::error(StatusCode::kInvalidArgument,
                           "request: batch requires an \"items\" array");
    }
    request.type = AnyRequest::Type::kBatch;
    for (const Json& item : items->items()) {
      status = check_keys(item, {"spec", "options"}, "batch item");
      if (!status.ok()) return status;
      const Json* spec = item.find("spec");
      if (spec == nullptr) {
        return Status::error(StatusCode::kInvalidArgument,
                             "batch item: missing required key \"spec\"");
      }
      Result<mna::TransferSpec> parsed_spec = spec_from_json(*spec);
      if (!parsed_spec.ok()) return parsed_spec.status();
      refgen::AdaptiveOptions options;
      if (const Json* options_json = item.find("options"); options_json != nullptr) {
        Result<refgen::AdaptiveOptions> parsed = options_from_json(*options_json);
        if (!parsed.ok()) return parsed.status();
        options = parsed.take();
      }
      request.batch.items.push_back({parsed_spec.take(), std::move(options)});
    }
    if (!(status = read_int(json, "threads", &request.batch.threads, kWhat)).ok()) {
      return status;
    }
    return request;
  }
  if (type == "simplify") {
    status = check_keys(json,
                        {"type", "spec", "error_budget", "f_start_hz", "f_stop_hz",
                         "band_points", "prune", "prune_share", "max_terms", "max_queue",
                         "skip_factor", "options", "auto_linearize"},
                        kWhat);
    if (!status.ok()) return status;
    const Json* spec = json.find("spec");
    if (spec == nullptr) {
      return Status::error(StatusCode::kInvalidArgument,
                           "request: missing required key \"spec\"");
    }
    Result<mna::TransferSpec> parsed_spec = spec_from_json(*spec);
    if (!parsed_spec.ok()) return parsed_spec.status();
    request.type = AnyRequest::Type::kSimplify;
    request.simplify.spec = parsed_spec.take();
    refgen::SimplifyOptions& options = request.simplify.options;
    if (!(status = read_number(json, "error_budget", &options.error_budget, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_number(json, "f_start_hz", &options.f_start_hz, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_number(json, "f_stop_hz", &options.f_stop_hz, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_int(json, "band_points", &options.band_points, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_bool(json, "prune", &options.prune, kWhat)).ok()) return status;
    if (!(status = read_number(json, "prune_share", &options.prune_share, kWhat)).ok()) {
      return status;
    }
    int max_terms = static_cast<int>(options.max_terms_per_coefficient);
    int max_queue = static_cast<int>(options.max_queue);
    if (!(status = read_int(json, "max_terms", &max_terms, kWhat)).ok()) return status;
    if (!(status = read_int(json, "max_queue", &max_queue, kWhat)).ok()) return status;
    if (max_terms <= 0 || max_queue <= 0) {
      return Status::error(StatusCode::kInvalidArgument,
                           "request: \"max_terms\"/\"max_queue\" must be positive");
    }
    options.max_terms_per_coefficient = static_cast<std::size_t>(max_terms);
    options.max_queue = static_cast<std::size_t>(max_queue);
    if (!(status = read_number(json, "skip_factor", &options.coefficient_skip_factor, kWhat))
             .ok()) {
      return status;
    }
    if (const Json* options_json = json.find("options"); options_json != nullptr) {
      Result<refgen::AdaptiveOptions> parsed = options_from_json(*options_json);
      if (!parsed.ok()) return parsed.status();
      options.engine = parsed.take();
    }
    if (!(status = read_bool(json, "auto_linearize", &request.simplify.auto_linearize, kWhat))
             .ok()) {
      return status;
    }
    return request;
  }
  if (type == "param_sweep") {
    status = check_keys(json,
                        {"type", "spec", "mode", "params", "samples", "seed", "f_start_hz",
                         "f_stop_hz", "points_per_decade", "threads", "kernel",
                         "auto_linearize"},
                        kWhat);
    if (!status.ok()) return status;
    const Json* spec = json.find("spec");
    if (spec == nullptr) {
      return Status::error(StatusCode::kInvalidArgument,
                           "request: missing required key \"spec\"");
    }
    Result<mna::TransferSpec> parsed_spec = spec_from_json(*spec);
    if (!parsed_spec.ok()) return parsed_spec.status();
    request.type = AnyRequest::Type::kParamSweep;
    ParamSweepRequest& sweep = request.param_sweep;
    sweep.spec = parsed_spec.take();

    std::string mode = "grid";
    if (!(status = read_string(json, "mode", false, &mode, kWhat)).ok()) return status;
    const bool grid = mode == "grid";
    if (!grid && mode != "monte_carlo") {
      return Status::error(StatusCode::kInvalidArgument,
                           "request: unknown param_sweep mode \"" + mode +
                               "\" (expected grid or monte_carlo)");
    }
    sweep.mode = grid ? ParamSweepRequest::Mode::kGrid : ParamSweepRequest::Mode::kMonteCarlo;

    const Json* params = json.find("params");
    if (params == nullptr || !params->is_array() || params->items().empty()) {
      return Status::error(StatusCode::kInvalidArgument,
                           "request: param_sweep requires a non-empty \"params\" array");
    }
    for (const Json& entry : params->items()) {
      if (grid) {
        status = check_keys(entry, {"name", "from", "to", "count", "log"}, "param axis");
        if (!status.ok()) return status;
        mna::ParamAxis axis;
        if (!(status = read_string(entry, "name", true, &axis.name, "param axis")).ok()) {
          return status;
        }
        if (!(status = read_required_number(entry, "from", &axis.from, "param axis")).ok()) {
          return status;
        }
        if (!(status = read_required_number(entry, "to", &axis.to, "param axis")).ok()) {
          return status;
        }
        if (entry.find("count") == nullptr) {
          return Status::error(StatusCode::kInvalidArgument,
                               "param axis: missing required key \"count\"");
        }
        if (!(status = read_int(entry, "count", &axis.count, "param axis")).ok()) return status;
        if (!(status = read_bool(entry, "log", &axis.log_scale, "param axis")).ok()) {
          return status;
        }
        sweep.axes.push_back(std::move(axis));
      } else {
        status = check_keys(entry, {"name", "nominal", "rel_sigma", "dist"}, "param dist");
        if (!status.ok()) return status;
        mna::ParamDist dist;
        if (!(status = read_string(entry, "name", true, &dist.name, "param dist")).ok()) {
          return status;
        }
        if (!(status = read_required_number(entry, "nominal", &dist.nominal, "param dist"))
                 .ok()) {
          return status;
        }
        if (!(status =
                  read_required_number(entry, "rel_sigma", &dist.rel_sigma, "param dist"))
                 .ok()) {
          return status;
        }
        std::string kind = "gaussian";
        if (!(status = read_string(entry, "dist", false, &kind, "param dist")).ok()) {
          return status;
        }
        if (kind == "gaussian") {
          dist.kind = mna::ParamDist::Kind::kGaussian;
        } else if (kind == "uniform") {
          dist.kind = mna::ParamDist::Kind::kUniform;
        } else {
          return Status::error(StatusCode::kInvalidArgument,
                               "param dist: unknown dist \"" + kind +
                                   "\" (expected gaussian or uniform)");
        }
        sweep.dists.push_back(std::move(dist));
      }
    }
    if (!(status = read_int(json, "samples", &sweep.samples, kWhat)).ok()) return status;
    double seed = 0.0;
    if (!(status = read_number(json, "seed", &seed, kWhat)).ok()) return status;
    // Seeds ride a JSON number: integers up to 2^53 round-trip exactly.
    if (!(seed >= 0.0) || seed != static_cast<double>(static_cast<std::uint64_t>(seed)) ||
        seed > 9007199254740992.0) {
      return Status::error(StatusCode::kInvalidArgument,
                           "request: \"seed\" must be a non-negative integer <= 2^53");
    }
    sweep.seed = static_cast<std::uint64_t>(seed);
    if (!(status = read_number(json, "f_start_hz", &sweep.f_start_hz, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_number(json, "f_stop_hz", &sweep.f_stop_hz, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_int(json, "points_per_decade", &sweep.points_per_decade, kWhat)).ok()) {
      return status;
    }
    if (!(status = read_int(json, "threads", &sweep.threads, kWhat)).ok()) return status;
    if (!(status = read_kernel(json, "kernel", &sweep.kernel, kWhat)).ok()) return status;
    if (!(status = read_bool(json, "auto_linearize", &sweep.auto_linearize, kWhat)).ok()) {
      return status;
    }
    return request;
  }
  return Status::error(StatusCode::kInvalidArgument,
                       "request: unknown type \"" + type +
                           "\" (expected refgen, sweep, poles_zeros, batch, param_sweep, "
                           "simplify, op, or transient)");
}

Result<std::vector<AnyRequest>> requests_from_json(const Json& json) {
  std::vector<AnyRequest> out;
  if (json.is_array()) {
    for (const Json& item : json.items()) {
      Result<AnyRequest> parsed = request_from_json(item);
      if (!parsed.ok()) return parsed.status();
      out.push_back(parsed.take());
    }
    return out;
  }
  Result<AnyRequest> parsed = request_from_json(json);
  if (!parsed.ok()) return parsed.status();
  out.push_back(parsed.take());
  return out;
}

}  // namespace symref::api
