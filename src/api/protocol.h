// Line-delimited JSON protocol: the served form of api::Service.
//
// One request per line, one reply per line, plus server-pushed event lines
// for job progress and completion — a JSON-RPC-shaped contract small enough
// to drive from a shell script yet complete enough for a multi-client
// daemon (tools/refgend speaks it over stdio and TCP; tools/refgen
// --connect is a client). The full schema is documented in docs/api.md
// ("Server protocol").
//
//   -> {"id": 1, "method": "compile", "params": {"netlist": "..."}}
//   <- {"id": 1, "result": {"circuit_id": "c1", ...}}
//   -> {"id": 2, "method": "submit",
//       "params": {"circuit_id": "c1", "request": {"type": "refgen", ...},
//                  "progress": true}}
//   <- {"id": 2, "result": {"job_id": "j1"}}
//   <- {"event": "progress", "job_id": "j1", "iteration": 0, ...}
//   <- {"event": "done", "job_id": "j1", "result": {"type": "refgen", ...}}
//
// Methods: compile, submit, poll, wait, cancel, list, evict, stats,
// shutdown. Failures come back as {"id": ..., "error": {"code": ...}} using
// the api::Status taxonomy. Replies to a session's requests are written in
// request order; event lines interleave arbitrarily (each line is
// self-contained — dispatch on the presence of "event" vs "id").
//
// Topology: one ServerCore per daemon (the Service, the circuit Registry,
// the JobManager — ids are daemon-global, so any session may poll or cancel
// any job); one Session per client connection. A session that ends (EOF or
// shutdown) cancels the jobs it submitted and stops its event stream;
// compiled circuits stay registered for other clients.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "api/jobs.h"
#include "api/registry.h"
#include "api/service.h"
#include "support/blob_store.h"

namespace symref::api::protocol {

struct ServerOptions {
  ServiceOptions service;
  /// JobManager worker lanes; <= 0 picks the hardware thread count.
  int workers = 0;
  /// Bound on jobs waiting for a worker (0 = unbounded). A submit that
  /// finds the queue full completes immediately with kOverloaded — clients
  /// are expected to back off and retry.
  std::size_t max_queue_depth = 0;
  /// Directory of the crash-safe reference store (empty = no store). A
  /// submit whose (netlist content, request) pair was served before — even
  /// by a previous daemon process — replays the stored response
  /// byte-identically instead of recomputing.
  std::string store_dir;
  /// Retry policy applied to submits that do not specify "max_attempts".
  RetryPolicy default_retry{/*max_attempts=*/3};
};

/// Shared state of one daemon: every session compiles into, submits to, and
/// polls the same registry and job manager.
class ServerCore {
 public:
  explicit ServerCore(ServerOptions options = {});

  [[nodiscard]] const Service& service() const noexcept { return service_; }
  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] JobManager& jobs() noexcept { return jobs_; }
  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }
  /// The reference store, or nullptr when ServerOptions::store_dir is
  /// empty. May be !ok() (unusable directory) — sessions then skip it and
  /// the daemon serves without persistence; check error() for the cause.
  [[nodiscard]] support::BlobStore* store() noexcept { return store_.get(); }

  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }
  /// Stop serving AND cancel every live job: a session thread blocked in
  /// jobs().wait() would otherwise pin the daemon until its job finished
  /// naturally (sockets only unblock threads parked in read_line).
  void request_shutdown();

 private:
  ServerOptions options_;
  Service service_;
  Registry registry_;
  std::unique_ptr<support::BlobStore> store_;
  std::atomic<bool> shutdown_{false};
  JobManager jobs_;  // declared last: destroyed first, while the rest lives
};

/// One client connection as the protocol sees it: a readable and writable
/// stream of '\n'-terminated lines. read_line is called from the session's
/// reader thread only; write_line must tolerate calls from worker threads
/// (the session serializes them under its own mutex, so implementations
/// just need to write-and-flush atomically per call).
class LineTransport {
 public:
  virtual ~LineTransport() = default;
  /// False on EOF or a broken connection.
  virtual bool read_line(std::string* line) = 0;
  virtual bool write_line(const std::string& line) = 0;
};

/// std::istream/std::ostream transport — stdio daemons and in-process tests.
class IostreamTransport : public LineTransport {
 public:
  IostreamTransport(std::istream& in, std::ostream& out) : in_(in), out_(out) {}
  bool read_line(std::string* line) override;
  bool write_line(const std::string& line) override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

/// Serves one connection until EOF, a "shutdown" request, or another
/// session's shutdown. Create one per client; sessions of one core may run
/// on concurrent threads.
class Session {
 public:
  Session(ServerCore& core, std::shared_ptr<LineTransport> transport);
  /// Closes the event stream and cancels this session's unfinished jobs.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Blocking read-dispatch-reply loop.
  void serve();

 private:
  struct Writer;

  [[nodiscard]] Json dispatch(const Json& request);

  ServerCore& core_;
  std::shared_ptr<LineTransport> transport_;
  std::shared_ptr<Writer> writer_;
  std::vector<JobId> submitted_;
  bool stop_ = false;  // this session saw "shutdown"
};

/// Wire token of a job id ("j7"). parse_job_id accepts exactly that form.
std::string job_id_token(JobId id);
[[nodiscard]] Result<JobId> parse_job_id(const std::string& token);

}  // namespace symref::api::protocol
