// Typed request/response messages of the service facade.
//
// One request type per workload the library serves today; every request is
// executed against a compiled CircuitHandle (see api/service.h), so the
// parse/canonicalize/assembly/plan work is paid once per circuit, not once
// per request. The JSON wire mapping of these structs lives in
// api/serialize.h; docs/api.md documents the schema.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "api/status.h"
#include "dc/newton.h"
#include "mna/ac.h"
#include "mna/param_sweep.h"
#include "mna/transfer.h"
#include "refgen/adaptive.h"
#include "refgen/simplify.h"
#include "transient/transient.h"

namespace symref::api {

/// Generate the numerical reference (the paper's algorithm) for one
/// transfer function of the compiled circuit.
struct RefgenRequest {
  mna::TransferSpec spec;
  refgen::AdaptiveOptions options;
  /// Required `true` to serve this request on a handle whose netlist
  /// contains nonlinear devices (D/Q/M cards): the request then runs
  /// against the small-signal circuit linearized at the handle's solved DC
  /// operating point. On a purely linear handle the flag is ignored.
  /// Omitting it on a device-bearing handle fails with kInvalidArgument.
  bool auto_linearize = false;
};

struct RefgenResponse {
  refgen::AdaptiveResult result;
  /// True when the response was served from the handle's response cache
  /// (identical spec + options seen before on this handle).
  bool from_cache = false;
  /// Facade wall time for this request (cache lookup or full engine run).
  double seconds = 0.0;
};

/// AC sweep (Bode analysis) via direct per-point MNA solves — the
/// "electrical simulator" path, sharing the handle's per-spec plan cache.
struct SweepRequest {
  mna::TransferSpec spec;
  double f_start_hz = 1.0;
  double f_stop_hz = 1e9;
  int points_per_decade = 10;
  /// Worker lanes for the per-point solves; results are bit-identical at
  /// every setting (not part of the response-cache key).
  int threads = 1;
  /// Cooperative cancellation checkpoint, polled per point. A cancelled
  /// sweep fails with kCancelled; the handle's plan caches stay valid.
  /// Like threads, not part of the response-cache key.
  support::CancellationToken cancel;
  /// Replay kernel for the per-point solves (see sparse/batched.h). Results
  /// are bit-identical under either kernel — like threads, not part of the
  /// response-cache key.
  sparse::ReplayKernel kernel = sparse::ReplayKernel::kScalar;
  /// Required `true` to serve this request on a handle whose netlist
  /// contains nonlinear devices (D/Q/M cards): the request then runs
  /// against the small-signal circuit linearized at the handle's solved DC
  /// operating point. On a purely linear handle the flag is ignored.
  /// Omitting it on a device-bearing handle fails with kInvalidArgument.
  bool auto_linearize = false;
};

struct SweepResponse {
  std::vector<mna::BodePoint> points;
  bool from_cache = false;
  double seconds = 0.0;
};

/// Poles and zeros: reference generation (or a response-cache hit) followed
/// by extended-range Aberth-Ehrlich root extraction.
struct PolesZerosRequest {
  mna::TransferSpec spec;
  /// Options of the underlying reference generation.
  refgen::AdaptiveOptions options;
  /// Required `true` to serve this request on a handle whose netlist
  /// contains nonlinear devices (D/Q/M cards): the request then runs
  /// against the small-signal circuit linearized at the handle's solved DC
  /// operating point. On a purely linear handle the flag is ignored.
  /// Omitting it on a device-bearing handle fails with kInvalidArgument.
  bool auto_linearize = false;
};

struct PolesZerosResponse {
  std::vector<std::complex<double>> poles;
  std::vector<std::complex<double>> zeros;
  bool poles_converged = false;
  bool zeros_converged = false;
  /// True when the underlying reference came from the response cache.
  bool from_cache = false;
  double seconds = 0.0;
};

/// Parameter sweep (corners / tolerance grid / Monte-Carlo) over the
/// `.param` symbols of a handle compiled FROM NETLIST TEXT: the compiled
/// template re-elaborates per sample while every sample replays the
/// handle-independent baseline factorization plan (see mna/param_sweep.h).
/// Requires a netlist-compiled handle; a handle compiled from a
/// programmatic Circuit fails with kInvalidArgument.
struct ParamSweepRequest {
  mna::TransferSpec spec;
  enum class Mode { kGrid, kMonteCarlo };
  Mode mode = Mode::kGrid;
  /// Grid mode: Cartesian product of these axes.
  std::vector<mna::ParamAxis> axes;
  /// Monte-Carlo mode: one draw per dimension per sample.
  std::vector<mna::ParamDist> dists;
  int samples = 0;         // Monte-Carlo sample count
  std::uint64_t seed = 0;  // Monte-Carlo seed (same seed -> same study)
  /// Probe frequency grid per sample (like SweepRequest's).
  double f_start_hz = 1.0;
  double f_stop_hz = 1e9;
  int points_per_decade = 10;
  /// Worker lanes; results are bit-identical at every setting (not part of
  /// the response-cache key).
  int threads = 1;
  /// Cooperative cancellation, polled per sample. Not part of the cache key.
  support::CancellationToken cancel;
  /// Replay kernel for the per-point plan replays; bit-identical results,
  /// not part of the response-cache key.
  sparse::ReplayKernel kernel = sparse::ReplayKernel::kScalar;
  /// Required `true` to serve this request on a handle whose netlist
  /// contains nonlinear devices (D/Q/M cards): the request then runs
  /// against the small-signal circuit linearized at the PER-SAMPLE solved DC
  /// operating point (each elaborated sample is re-biased, so `.param`
  /// symbols reaching device cards vary the operating point). On a purely linear handle the flag is ignored.
  /// Omitting it on a device-bearing handle fails with kInvalidArgument.
  bool auto_linearize = false;
};

struct ParamSweepResponse {
  mna::ParamSweepResult result;
  bool from_cache = false;
  double seconds = 0.0;
};

/// Reference-driven symbolic simplification of one transfer function: prune,
/// re-reference, enumerate and drop terms until the band error certificate
/// fits the budget (refgen/simplify.h). `options.engine.threads/kernel/
/// cancel` drive every stage; results are bit-identical at any setting, so
/// none is part of the response-cache key. Errors: kInvalidSpec (spec the
/// generators cannot represent), kIncomplete (budget not certifiable within
/// the enumeration caps), kSingularSystem, kCancelled.
struct SimplifyRequest {
  mna::TransferSpec spec;
  refgen::SimplifyOptions options;
  /// Required `true` to serve this request on a handle whose netlist
  /// contains nonlinear devices (D/Q/M cards): the request then runs
  /// against the small-signal circuit linearized at the handle's solved DC
  /// operating point. On a purely linear handle the flag is ignored.
  /// Omitting it on a device-bearing handle fails with kInvalidArgument.
  bool auto_linearize = false;
};

struct SimplifyResponse {
  refgen::SimplifyResult result;
  bool from_cache = false;
  double seconds = 0.0;
};

/// DC operating point (".op") of a device-bearing handle. The bias is
/// solved once when the handle compiles (damped Newton with gmin/source
/// stepping, one shared factorization plan — see dc/newton.h); this request
/// returns that solution, so the first call and every later one are cache
/// hits by construction. On a purely linear handle it fails with
/// kInvalidArgument (there is no bias problem to solve).
struct OpRequest {
  /// Accepted for wire symmetry with the other requests; the Newton solve
  /// is inherently serial and the value does not change the result (not
  /// part of any cache key).
  int threads = 1;
  /// Cooperative cancellation, polled per Newton iteration.
  support::CancellationToken cancel;
};

struct OpResponse {
  dc::OpResult result;
  /// True when served from the handle's compiled bias (always, today,
  /// except the compile itself).
  bool from_cache = false;
  double seconds = 0.0;
};

/// Time-domain (transient) integration of the handle's circuit over
/// [0, tstop]. Unlike the AC-family requests there is NO auto_linearize
/// gate: the integrator runs the large-signal netlist directly, solving a
/// damped Newton iteration per step on device-bearing handles — that is the
/// point of a transient analysis. Linear handles integrate with one plan
/// replay per step (see transient/transient.h for the step-bucket contract).
struct TransientRequest {
  /// End of the simulated window (seconds, > 0 required).
  double tstop = 0.0;
  /// Reference (maximum) step size; 0 picks tstop / 1000.
  double tstep = 0.0;
  /// Integration method: trapezoidal (default), BDF1 or BDF2.
  transient::Method method = transient::Method::kTrapezoidal;
  /// LTE step control on/off; off = constant tstep steps (one plan bucket).
  bool adaptive = true;
  /// Accepted for wire symmetry with the other requests; time stepping is
  /// inherently serial and the value never changes the result (not part of
  /// the response-cache key).
  int threads = 1;
  /// Cooperative cancellation, polled at every step and Newton iterate.
  support::CancellationToken cancel;
};

struct TransientResponse {
  transient::TransientResult result;
  /// True when served from the handle's response cache (identical
  /// tstop/tstep/method/adaptive seen before; small runs only — large
  /// waveforms are recomputed, bit-identically, instead of pinned).
  bool from_cache = false;
  double seconds = 0.0;
};

/// Many reference generations against ONE handle — every transfer function
/// of a chip, or an options sweep. Items run shared-nothing in parallel
/// (each with its own evaluator); per-item failures do not abort the batch.
struct BatchRequest {
  std::vector<RefgenRequest> items;
  /// Outer worker lanes; <= 0 picks the hardware thread count. Item
  /// engines run serially (options.threads is forced to 1).
  int threads = 0;
};

struct BatchItemResponse {
  /// Item outcome; `response` is meaningful only when status.ok().
  Status status;
  RefgenResponse response;
};

struct BatchResponse {
  /// One entry per request item, in item order.
  std::vector<BatchItemResponse> items;
  double seconds = 0.0;
};

}  // namespace symref::api
