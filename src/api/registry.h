// Named-handle store: compiled circuits addressable by id across requests
// and clients.
//
// api::Service hands out CircuitHandles as C++ values; a served protocol
// needs them addressable by a token a remote client can quote back. The
// Registry owns that mapping: add() assigns a monotonically increasing id
// ("c1", "c2", ...; never reused within one registry, so a stale id after
// evict() fails with kNotFound instead of silently hitting a new circuit).
//
// Thread-safe; handles are cheap shared references, so get() copies one out
// under the lock and requests then run without touching the registry.
// Evicting a circuit that still has in-flight jobs is safe — their handles
// keep the compiled circuit alive until they finish.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/service.h"
#include "api/status.h"

namespace symref::api {

class Registry {
 public:
  struct Entry {
    std::string id;
    CircuitHandle handle;
    /// Content hash of the source netlist text (hex64 of fnv1a64); empty
    /// for programmatic handles. Keys the daemon's reference store so a
    /// restarted daemon recognizes the same circuit under a fresh id.
    std::string content_key;
  };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Store a compiled handle; returns its new id. Invalid handles are
  /// rejected with an empty string (callers should not register failures).
  std::string add(CircuitHandle handle, std::string content_key = {});

  /// Handle by id; kNotFound when absent or evicted.
  [[nodiscard]] Result<CircuitHandle> get(std::string_view id) const;

  /// Content key recorded at add(); empty when absent or keyless.
  [[nodiscard]] std::string content_key(std::string_view id) const;

  /// All live entries, in insertion order.
  [[nodiscard]] std::vector<Entry> list() const;

  /// Drop the id. Returns false when it was not present. In-flight requests
  /// holding the handle are unaffected (shared ownership).
  bool evict(std::string_view id);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t next_ = 0;
  std::vector<Entry> entries_;  // daemon-scale N: linear scans are fine
};

}  // namespace symref::api
