#include "api/jobs.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "support/cancellation.h"
#include "support/fault_injection.h"
#include "support/timer.h"

namespace symref::api {

namespace {

using MonotonicClock = std::chrono::steady_clock;

/// splitmix64 (same construction as support::FaultInjector) — deterministic
/// retry jitter.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Backoff before attempt `attempts + 1`, given `attempts` completed ones.
double backoff_delay_ms(const RetryPolicy& policy, int attempts, JobId id) noexcept {
  double base = policy.initial_backoff_ms;
  for (int k = 1; k < attempts; ++k) base *= policy.backoff_multiplier;
  base = std::min(base, policy.max_backoff_ms);
  if (base < 0.0) base = 0.0;
  const std::uint64_t draw =
      mix64(mix64(policy.jitter_seed) ^ mix64(id) ^ static_cast<std::uint64_t>(attempts));
  const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;  // [0, 1)
  return base * (0.5 + unit);                                       // [0.5x, 1.5x)
}

}  // namespace

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
  }
  return "done";
}

Json to_json(const JobOutcome& outcome) {
  if (!outcome.status.ok()) {
    return error_response(request_type_name(outcome.type), outcome.status);
  }
  // A store hit replays the persisted bytes verbatim (byte-identical across
  // daemon restarts — the whole point of the reference store).
  if (!outcome.raw.is_null()) return outcome.raw;
  switch (outcome.type) {
    case AnyRequest::Type::kRefgen: return to_json(outcome.refgen);
    case AnyRequest::Type::kSweep: return to_json(outcome.sweep);
    case AnyRequest::Type::kPolesZeros: return to_json(outcome.poles_zeros);
    case AnyRequest::Type::kBatch: return to_json(outcome.batch);
    case AnyRequest::Type::kParamSweep: return to_json(outcome.param_sweep);
    case AnyRequest::Type::kSimplify: return to_json(outcome.simplify);
    case AnyRequest::Type::kOp: return to_json(outcome.op);
    case AnyRequest::Type::kTransient: return to_json(outcome.transient);
  }
  return error_response("refgen", Status::error(StatusCode::kInternal, "bad outcome type"));
}

/// All mutable job state. The per-job mutex guards state/outcome; the
/// fields set once at submit (request, handle, callbacks) are immutable
/// afterwards and safe to read from the worker without it.
struct JobManager::Job {
  JobId id = 0;
  CircuitHandle handle;
  AnyRequest request;
  JobProgressFn on_progress;
  JobDoneFn on_done;
  support::CancellationSource cancel_source;
  support::Timer timer;  // started at submit
  RetryPolicy retry;     // immutable after submit
  double deadline_ms = 0.0;
  MonotonicClock::time_point deadline_at;  // meaningful when deadline_ms > 0

  std::mutex mutex;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  /// Set after on_done returned: wait() releases only then, so everything
  /// on_done produced (a protocol session's done event, say) is ordered
  /// before any wait() return for this job.
  bool callbacks_done = false;
  bool cancel_requested = false;
  /// Set by the monitor when deadline_at passed before completion; the
  /// engine's kCancelled (from the tripped token) is rewritten to
  /// kDeadlineExceeded, and no retry is attempted.
  bool deadline_hit = false;
  int attempts = 0;                // executions started
  std::atomic<int> iterations{0};  // bumped from the engine observer
  double total_seconds = 0.0;      // frozen at finish
  JobOutcome outcome;              // meaningful once state == kDone
};

/// Timed-event thread: a single multimap of (fire time -> closure) ordered
/// by time, drained by one background thread. Closures run off the monitor
/// thread with no locks held, so they may take job mutexes and post to the
/// work queue freely.
class JobManager::Monitor {
 public:
  Monitor() : thread_([this] { loop(); }) {}
  ~Monitor() { shutdown(); }

  void schedule(MonotonicClock::time_point when, std::function<void()> event) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
      events_.emplace(when, std::move(event));
    }
    cv_.notify_all();
  }

  /// Discards pending events and joins. Idempotent.
  void shutdown() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      events_.clear();
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (stop_) return;
      if (events_.empty()) {
        cv_.wait(lock);
        continue;
      }
      const MonotonicClock::time_point next = events_.begin()->first;
      if (MonotonicClock::now() < next) {
        cv_.wait_until(lock, next);
        continue;  // re-check stop / earlier insertions
      }
      std::function<void()> event = std::move(events_.begin()->second);
      events_.erase(events_.begin());
      lock.unlock();
      event();
      lock.lock();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::multimap<MonotonicClock::time_point, std::function<void()>> events_;
  bool stop_ = false;
  std::thread thread_;
};

JobManager::JobManager(const Service& service, int workers, std::size_t max_retained_jobs,
                       std::size_t max_queue_depth)
    : service_(service),
      max_retained_jobs_(max_retained_jobs == 0 ? 1 : max_retained_jobs),
      queue_(workers, max_queue_depth) {}

JobManager::~JobManager() {
  std::vector<std::shared_ptr<Job>> live;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) live.push_back(job);
  }
  // Queued jobs complete as kCancelled here; running jobs get their token
  // tripped and stop at the next checkpoint. Backoff-parked jobs are queued,
  // so they complete here too — their pending monitor events then see a done
  // job and drop. The monitor is joined before member destruction begins so
  // no event can touch the queue or job table mid-teardown; the WorkQueue
  // member is destroyed first (declared last), joining the workers.
  for (const std::shared_ptr<Job>& job : live) cancel(job->id);
  if (monitor_) monitor_->shutdown();
}

JobManager::Monitor& JobManager::monitor() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!monitor_) monitor_ = std::make_unique<Monitor>();
  return *monitor_;
}

void JobManager::register_job(const std::shared_ptr<Job>& job) {
  const std::lock_guard<std::mutex> lock(mutex_);
  job->id = ++next_;
  jobs_.emplace(job->id, job);
  // Forget the oldest finished jobs beyond the retention bound. Live jobs
  // are never dropped, so a slow queue cannot lose work — only history.
  if (jobs_.size() > max_retained_jobs_) {
    for (auto it = jobs_.begin(); it != jobs_.end() && jobs_.size() > max_retained_jobs_;) {
      bool done = false;
      {
        const std::lock_guard<std::mutex> job_lock(it->second->mutex);
        done = it->second->state == JobState::kDone;
      }
      it = done ? jobs_.erase(it) : std::next(it);
    }
  }
}

JobId JobManager::submit(const CircuitHandle& handle, AnyRequest request,
                         JobProgressFn on_progress, JobDoneFn on_done) {
  SubmitOptions options;
  options.on_progress = std::move(on_progress);
  options.on_done = std::move(on_done);
  return submit(handle, std::move(request), std::move(options));
}

JobId JobManager::submit(const CircuitHandle& handle, AnyRequest request,
                         SubmitOptions options) {
  auto job = std::make_shared<Job>();
  job->handle = handle;
  job->request = std::move(request);
  job->on_progress = std::move(options.on_progress);
  job->on_done = std::move(options.on_done);
  job->retry = options.retry;
  if (job->retry.max_attempts < 1) job->retry.max_attempts = 1;
  register_job(job);
  if (options.deadline_ms > 0.0) {
    job->deadline_ms = options.deadline_ms;
    job->deadline_at = MonotonicClock::now() +
                       std::chrono::duration_cast<MonotonicClock::duration>(
                           std::chrono::duration<double, std::milli>(options.deadline_ms));
    monitor().schedule(job->deadline_at, [this, job] { expire_deadline(job); });
  }
  const auto posted = queue_.try_post([this, job] { run(job); });
  if (posted == support::WorkQueue::PostResult::kFull) {
    JobOutcome outcome;
    outcome.type = job->request.type;
    outcome.status = Status::error(
        StatusCode::kOverloaded, "work queue full (" + std::to_string(queue_.pending()) + "/" +
                                     std::to_string(queue_.max_pending()) +
                                     " pending); retry after backoff");
    finish(job, std::move(outcome));
  } else if (posted == support::WorkQueue::PostResult::kStopped) {
    JobOutcome outcome;
    outcome.type = job->request.type;
    outcome.status = Status::error(StatusCode::kCancelled, "job manager is shutting down");
    finish(job, std::move(outcome));
  }
  return job->id;
}

JobId JobManager::submit_stored(const CircuitHandle& handle, AnyRequest request, Json stored,
                                JobDoneFn on_done) {
  auto job = std::make_shared<Job>();
  job->handle = handle;
  job->request = std::move(request);
  job->on_done = std::move(on_done);
  register_job(job);
  JobOutcome outcome;
  outcome.type = job->request.type;
  outcome.raw = std::move(stored);
  job->attempts = 0;  // never executed — served from the persistent store
  finish(job, std::move(outcome));
  return job->id;
}

void JobManager::expire_deadline(const std::shared_ptr<Job>& job) {
  bool was_queued = false;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state == JobState::kDone) return;
    job->deadline_hit = true;
    // Trip the token: a running engine stops at its next cooperative
    // checkpoint and reports kCancelled, which run() rewrites below.
    job->cancel_source.cancel();
    was_queued = job->state == JobState::kQueued;
  }
  if (was_queued) {
    JobOutcome outcome;
    outcome.type = job->request.type;
    outcome.status = Status::error(
        StatusCode::kDeadlineExceeded,
        "deadline of " + std::to_string(job->deadline_ms) + " ms expired before the job ran");
    finish(job, std::move(outcome));
  }
}

std::shared_ptr<JobManager::Job> JobManager::find(JobId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

void JobManager::finish(const std::shared_ptr<Job>& job, JobOutcome outcome) {
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state == JobState::kDone) return;  // lost the race to cancel()
    job->state = JobState::kDone;
    job->total_seconds = job->timer.seconds();
    job->outcome = std::move(outcome);
  }
  // outcome/on_done are immutable once done; calling outside the lock keeps
  // callbacks free to poll() without deadlocking (they must not wait() on
  // their own job — waiters are released only after this returns).
  if (job->on_done) job->on_done(job->id, job->outcome);
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->callbacks_done = true;
  }
  job->cv.notify_all();
}

void JobManager::run(const std::shared_ptr<Job>& job) {
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    job->state = JobState::kRunning;
    ++job->attempts;
  }
  const support::CancellationToken token = job->cancel_source.token();
  // Wire the job's cancellation token and progress stream into the request's
  // engine options (chaining any observer the request already carried).
  auto wire = [&](refgen::AdaptiveOptions& options) {
    options.cancel = token;
    const refgen::ProgressObserver inner = options.on_iteration;
    Job* raw = job.get();  // the posted task keeps the job alive
    options.on_iteration = [raw, inner](const refgen::IterationRecord& record) {
      if (inner) inner(record);
      raw->iterations.fetch_add(1, std::memory_order_relaxed);
      if (raw->on_progress) {
        JobProgress progress;
        progress.id = raw->id;
        progress.iteration = record.index;
        progress.purpose = refgen::purpose_name(record.purpose);
        progress.points = record.points;
        progress.evaluations = record.evaluations;
        progress.num_new_coefficients = record.num_new_coefficients;
        progress.den_new_coefficients = record.den_new_coefficients;
        progress.f_scale = record.f_scale;
        progress.g_scale = record.g_scale;
        raw->on_progress(progress);
      }
    };
  };

  AnyRequest& request = job->request;
  JobOutcome outcome;
  outcome.type = request.type;
  // Fault site "work_queue": the attempt fails with a transient status
  // before touching the engine — the cheapest way to drive the RetryPolicy
  // machinery below through real backoff/re-post cycles.
  if (support::fault("work_queue")) {
    outcome.status =
        Status::error(StatusCode::kUnavailable, "injected fault at site work_queue");
    maybe_retry_or_finish(job, std::move(outcome));
    return;
  }
  switch (request.type) {
    case AnyRequest::Type::kRefgen: {
      wire(request.refgen.options);
      auto response = service_.refgen(job->handle, request.refgen);
      outcome.status = response.status();
      if (response.ok()) outcome.refgen = response.take();
      break;
    }
    case AnyRequest::Type::kSweep: {
      request.sweep.cancel = token;
      auto response = service_.sweep(job->handle, request.sweep);
      outcome.status = response.status();
      if (response.ok()) outcome.sweep = response.take();
      break;
    }
    case AnyRequest::Type::kPolesZeros: {
      wire(request.poles_zeros.options);
      auto response = service_.poles_zeros(job->handle, request.poles_zeros);
      outcome.status = response.status();
      if (response.ok()) outcome.poles_zeros = response.take();
      break;
    }
    case AnyRequest::Type::kBatch: {
      for (RefgenRequest& item : request.batch.items) item.options.cancel = token;
      auto response = service_.batch(job->handle, request.batch);
      outcome.status = response.status();
      if (response.ok()) outcome.batch = response.take();
      break;
    }
    case AnyRequest::Type::kParamSweep: {
      request.param_sweep.cancel = token;
      auto response = service_.param_sweep(job->handle, request.param_sweep);
      outcome.status = response.status();
      if (response.ok()) outcome.param_sweep = response.take();
      break;
    }
    case AnyRequest::Type::kSimplify: {
      // The simplify engine re-runs the reference internally; its observer
      // hook feeds the same progress stream as a refgen job.
      wire(request.simplify.options.engine);
      auto response = service_.simplify(job->handle, request.simplify);
      outcome.status = response.status();
      if (response.ok()) outcome.simplify = response.take();
      break;
    }
    case AnyRequest::Type::kOp: {
      // The bias was solved at compile; the token is wired for symmetry but
      // the serve is a lock-free copy of the stored solution.
      request.op.cancel = token;
      auto response = service_.op(job->handle, request.op);
      outcome.status = response.status();
      if (response.ok()) outcome.op = response.take();
      break;
    }
    case AnyRequest::Type::kTransient: {
      // The token trips the integrator's per-step (and per-Newton-iterate)
      // checkpoints, so cancel/deadline land mid-run, not only at the end.
      request.transient.cancel = token;
      auto response = service_.transient(job->handle, request.transient);
      outcome.status = response.status();
      if (response.ok()) outcome.transient = response.take();
      break;
    }
  }
  maybe_retry_or_finish(job, std::move(outcome));
}

void JobManager::maybe_retry_or_finish(const std::shared_ptr<Job>& job, JobOutcome outcome) {
  const MonotonicClock::time_point now = MonotonicClock::now();
  bool retry = false;
  double delay_ms = 0.0;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    // Deadline rewrite: the engine saw only a tripped token, so it reports
    // kCancelled; the caller asked for a deadline, so it gets the code that
    // says which one happened.
    if (job->deadline_hit && outcome.status.code() == StatusCode::kCancelled) {
      outcome.status = Status::error(
          StatusCode::kDeadlineExceeded,
          "deadline of " + std::to_string(job->deadline_ms) + " ms exceeded");
    }
    if (job->state == JobState::kRunning && status_is_transient(outcome.status.code()) &&
        !job->cancel_requested && !job->deadline_hit &&
        job->attempts < job->retry.max_attempts) {
      delay_ms = backoff_delay_ms(job->retry, job->attempts, job->id);
      const auto fire_at = now + std::chrono::duration_cast<MonotonicClock::duration>(
                                     std::chrono::duration<double, std::milli>(delay_ms));
      // Never schedule a retry that cannot complete before the deadline.
      if (job->deadline_ms <= 0.0 || fire_at < job->deadline_at) {
        job->state = JobState::kQueued;  // cancel()/deadline can still claim it
        retry = true;
      }
    }
  }
  if (!retry) {
    finish(job, std::move(outcome));
    return;
  }
  const auto fire_at = now + std::chrono::duration_cast<MonotonicClock::duration>(
                                 std::chrono::duration<double, std::milli>(delay_ms));
  monitor().schedule(fire_at, [this, job] {
    {
      const std::lock_guard<std::mutex> lock(job->mutex);
      if (job->state != JobState::kQueued) return;  // finished while parked
    }
    if (queue_.try_post([this, job] { run(job); }) !=
        support::WorkQueue::PostResult::kAccepted) {
      JobOutcome dropped;
      dropped.type = job->request.type;
      dropped.status =
          Status::error(StatusCode::kCancelled, "worker queue unavailable during retry");
      finish(job, std::move(dropped));
    }
  });
}

JobInfo JobManager::snapshot(const Job& job) {
  // Caller holds job.mutex.
  JobInfo info;
  info.id = job.id;
  info.state = job.state;
  info.type = job.request.type;
  info.circuit = job.handle.valid() ? job.handle.name() : std::string();
  info.iterations = job.iterations.load(std::memory_order_relaxed);
  info.cancel_requested = job.cancel_requested;
  info.seconds = job.state == JobState::kDone ? job.total_seconds : job.timer.seconds();
  info.attempts = job.attempts;
  return info;
}

Result<JobInfo> JobManager::poll(JobId id) const {
  const std::shared_ptr<Job> job = find(id);
  if (!job) {
    return Status::error(StatusCode::kNotFound, "unknown job_id " + std::to_string(id));
  }
  const std::lock_guard<std::mutex> lock(job->mutex);
  return snapshot(*job);
}

Result<JobOutcome> JobManager::wait(JobId id) const {
  const std::shared_ptr<Job> job = find(id);
  if (!job) {
    return Status::error(StatusCode::kNotFound, "unknown job_id " + std::to_string(id));
  }
  std::unique_lock<std::mutex> lock(job->mutex);
  job->cv.wait(lock, [&] { return job->state == JobState::kDone && job->callbacks_done; });
  return job->outcome;
}

bool JobManager::cancel(JobId id) {
  const std::shared_ptr<Job> job = find(id);
  if (!job) return false;
  bool was_queued = false;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state == JobState::kDone) return false;
    job->cancel_requested = true;
    job->cancel_source.cancel();
    was_queued = job->state == JobState::kQueued;
  }
  if (was_queued) {
    // Complete it right here; when a worker later pops the task it sees a
    // non-queued state and skips. (If the worker wins the race instead, the
    // tripped token stops the engine at its first checkpoint and the
    // worker's kCancelled outcome lands — either way exactly one finish.)
    JobOutcome outcome;
    outcome.type = job->request.type;
    outcome.status =
        Status::error(StatusCode::kCancelled, "job cancelled before it started");
    finish(job, std::move(outcome));
  }
  return true;
}

std::vector<JobInfo> JobManager::list() const {
  std::vector<std::shared_ptr<Job>> all;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) all.push_back(job);
  }
  std::vector<JobInfo> infos;
  infos.reserve(all.size());
  for (const std::shared_ptr<Job>& job : all) {
    const std::lock_guard<std::mutex> lock(job->mutex);
    infos.push_back(snapshot(*job));
  }
  return infos;
}

}  // namespace symref::api
