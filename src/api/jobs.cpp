#include "api/jobs.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "support/cancellation.h"
#include "support/timer.h"

namespace symref::api {

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
  }
  return "done";
}

Json to_json(const JobOutcome& outcome) {
  if (!outcome.status.ok()) {
    return error_response(request_type_name(outcome.type), outcome.status);
  }
  switch (outcome.type) {
    case AnyRequest::Type::kRefgen: return to_json(outcome.refgen);
    case AnyRequest::Type::kSweep: return to_json(outcome.sweep);
    case AnyRequest::Type::kPolesZeros: return to_json(outcome.poles_zeros);
    case AnyRequest::Type::kBatch: return to_json(outcome.batch);
    case AnyRequest::Type::kParamSweep: return to_json(outcome.param_sweep);
  }
  return error_response("refgen", Status::error(StatusCode::kInternal, "bad outcome type"));
}

/// All mutable job state. The per-job mutex guards state/outcome; the
/// fields set once at submit (request, handle, callbacks) are immutable
/// afterwards and safe to read from the worker without it.
struct JobManager::Job {
  JobId id = 0;
  CircuitHandle handle;
  AnyRequest request;
  JobProgressFn on_progress;
  JobDoneFn on_done;
  support::CancellationSource cancel_source;
  support::Timer timer;  // started at submit

  std::mutex mutex;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  /// Set after on_done returned: wait() releases only then, so everything
  /// on_done produced (a protocol session's done event, say) is ordered
  /// before any wait() return for this job.
  bool callbacks_done = false;
  bool cancel_requested = false;
  std::atomic<int> iterations{0};  // bumped from the engine observer
  double total_seconds = 0.0;      // frozen at finish
  JobOutcome outcome;              // meaningful once state == kDone
};

JobManager::JobManager(const Service& service, int workers, std::size_t max_retained_jobs)
    : service_(service),
      max_retained_jobs_(max_retained_jobs == 0 ? 1 : max_retained_jobs),
      queue_(workers) {}

JobManager::~JobManager() {
  std::vector<std::shared_ptr<Job>> live;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) live.push_back(job);
  }
  // Queued jobs complete as kCancelled here; running jobs get their token
  // tripped and stop at the next checkpoint. The WorkQueue member is
  // destroyed first (declared last), joining the workers.
  for (const std::shared_ptr<Job>& job : live) cancel(job->id);
}

JobId JobManager::submit(const CircuitHandle& handle, AnyRequest request,
                         JobProgressFn on_progress, JobDoneFn on_done) {
  auto job = std::make_shared<Job>();
  job->handle = handle;
  job->request = std::move(request);
  job->on_progress = std::move(on_progress);
  job->on_done = std::move(on_done);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->id = ++next_;
    jobs_.emplace(job->id, job);
    // Forget the oldest finished jobs beyond the retention bound. Live jobs
    // are never dropped, so a slow queue cannot lose work — only history.
    if (jobs_.size() > max_retained_jobs_) {
      for (auto it = jobs_.begin();
           it != jobs_.end() && jobs_.size() > max_retained_jobs_;) {
        bool done = false;
        {
          const std::lock_guard<std::mutex> job_lock(it->second->mutex);
          done = it->second->state == JobState::kDone;
        }
        it = done ? jobs_.erase(it) : std::next(it);
      }
    }
  }
  queue_.post([this, job] { run(job); });
  return job->id;
}

std::shared_ptr<JobManager::Job> JobManager::find(JobId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

void JobManager::finish(const std::shared_ptr<Job>& job, JobOutcome outcome) {
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state == JobState::kDone) return;  // lost the race to cancel()
    job->state = JobState::kDone;
    job->total_seconds = job->timer.seconds();
    job->outcome = std::move(outcome);
  }
  // outcome/on_done are immutable once done; calling outside the lock keeps
  // callbacks free to poll() without deadlocking (they must not wait() on
  // their own job — waiters are released only after this returns).
  if (job->on_done) job->on_done(job->id, job->outcome);
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    job->callbacks_done = true;
  }
  job->cv.notify_all();
}

void JobManager::run(const std::shared_ptr<Job>& job) const {
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    job->state = JobState::kRunning;
  }
  const support::CancellationToken token = job->cancel_source.token();
  // Wire the job's cancellation token and progress stream into the request's
  // engine options (chaining any observer the request already carried).
  auto wire = [&](refgen::AdaptiveOptions& options) {
    options.cancel = token;
    const refgen::ProgressObserver inner = options.on_iteration;
    Job* raw = job.get();  // the posted task keeps the job alive
    options.on_iteration = [raw, inner](const refgen::IterationRecord& record) {
      if (inner) inner(record);
      raw->iterations.fetch_add(1, std::memory_order_relaxed);
      if (raw->on_progress) {
        JobProgress progress;
        progress.id = raw->id;
        progress.iteration = record.index;
        progress.purpose = refgen::purpose_name(record.purpose);
        progress.points = record.points;
        progress.evaluations = record.evaluations;
        progress.num_new_coefficients = record.num_new_coefficients;
        progress.den_new_coefficients = record.den_new_coefficients;
        progress.f_scale = record.f_scale;
        progress.g_scale = record.g_scale;
        raw->on_progress(progress);
      }
    };
  };

  AnyRequest& request = job->request;
  JobOutcome outcome;
  outcome.type = request.type;
  switch (request.type) {
    case AnyRequest::Type::kRefgen: {
      wire(request.refgen.options);
      auto response = service_.refgen(job->handle, request.refgen);
      outcome.status = response.status();
      if (response.ok()) outcome.refgen = response.take();
      break;
    }
    case AnyRequest::Type::kSweep: {
      request.sweep.cancel = token;
      auto response = service_.sweep(job->handle, request.sweep);
      outcome.status = response.status();
      if (response.ok()) outcome.sweep = response.take();
      break;
    }
    case AnyRequest::Type::kPolesZeros: {
      wire(request.poles_zeros.options);
      auto response = service_.poles_zeros(job->handle, request.poles_zeros);
      outcome.status = response.status();
      if (response.ok()) outcome.poles_zeros = response.take();
      break;
    }
    case AnyRequest::Type::kBatch: {
      for (RefgenRequest& item : request.batch.items) item.options.cancel = token;
      auto response = service_.batch(job->handle, request.batch);
      outcome.status = response.status();
      if (response.ok()) outcome.batch = response.take();
      break;
    }
    case AnyRequest::Type::kParamSweep: {
      request.param_sweep.cancel = token;
      auto response = service_.param_sweep(job->handle, request.param_sweep);
      outcome.status = response.status();
      if (response.ok()) outcome.param_sweep = response.take();
      break;
    }
  }
  finish(job, std::move(outcome));
}

JobInfo JobManager::snapshot(const Job& job) {
  // Caller holds job.mutex.
  JobInfo info;
  info.id = job.id;
  info.state = job.state;
  info.type = job.request.type;
  info.circuit = job.handle.valid() ? job.handle.name() : std::string();
  info.iterations = job.iterations.load(std::memory_order_relaxed);
  info.cancel_requested = job.cancel_requested;
  info.seconds = job.state == JobState::kDone ? job.total_seconds : job.timer.seconds();
  return info;
}

Result<JobInfo> JobManager::poll(JobId id) const {
  const std::shared_ptr<Job> job = find(id);
  if (!job) {
    return Status::error(StatusCode::kNotFound, "unknown job_id " + std::to_string(id));
  }
  const std::lock_guard<std::mutex> lock(job->mutex);
  return snapshot(*job);
}

Result<JobOutcome> JobManager::wait(JobId id) const {
  const std::shared_ptr<Job> job = find(id);
  if (!job) {
    return Status::error(StatusCode::kNotFound, "unknown job_id " + std::to_string(id));
  }
  std::unique_lock<std::mutex> lock(job->mutex);
  job->cv.wait(lock, [&] { return job->state == JobState::kDone && job->callbacks_done; });
  return job->outcome;
}

bool JobManager::cancel(JobId id) {
  const std::shared_ptr<Job> job = find(id);
  if (!job) return false;
  bool was_queued = false;
  {
    const std::lock_guard<std::mutex> lock(job->mutex);
    if (job->state == JobState::kDone) return false;
    job->cancel_requested = true;
    job->cancel_source.cancel();
    was_queued = job->state == JobState::kQueued;
  }
  if (was_queued) {
    // Complete it right here; when a worker later pops the task it sees a
    // non-queued state and skips. (If the worker wins the race instead, the
    // tripped token stops the engine at its first checkpoint and the
    // worker's kCancelled outcome lands — either way exactly one finish.)
    JobOutcome outcome;
    outcome.type = job->request.type;
    outcome.status =
        Status::error(StatusCode::kCancelled, "job cancelled before it started");
    finish(job, std::move(outcome));
  }
  return true;
}

std::vector<JobInfo> JobManager::list() const {
  std::vector<std::shared_ptr<Job>> all;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) all.push_back(job);
  }
  std::vector<JobInfo> infos;
  infos.reserve(all.size());
  for (const std::shared_ptr<Job>& job : all) {
    const std::lock_guard<std::mutex> lock(job->mutex);
    infos.push_back(snapshot(*job));
  }
  return infos;
}

}  // namespace symref::api
