#include "api/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/fault_injection.h"

namespace symref::api {

namespace {

const std::string kEmptyString;
const Json::Array kEmptyArray;
const Json::Object kEmptyObject;

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[32];
  // Shortest representation that still round-trips a double.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  double reparsed = 0.0;
  std::sscanf(buffer, "%lg", &reparsed);
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    std::sscanf(candidate, "%lg", &reparsed);
    if (reparsed == value) {
      std::memcpy(buffer, candidate, sizeof(candidate));
      break;
    }
  }
  out += buffer;
}

/// Recursive-descent parser over the raw text, tracking line/column.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json> run() {
    skip_whitespace();
    Json value;
    if (!parse_value(value)) return take_error();
    skip_whitespace();
    if (at_ < text_.size()) {
      error("trailing characters after JSON document");
      return take_error();
    }
    return value;
  }

 private:
  [[nodiscard]] bool eof() const noexcept { return at_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[at_]; }

  char advance() noexcept {
    const char c = text_[at_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() noexcept {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      advance();
    }
  }

  bool error(const std::string& message) {
    if (error_.ok()) {
      error_ = Status::error(StatusCode::kParseError, "json: " + message, {line_, column_});
    }
    return false;
  }

  Status take_error() {
    return error_.ok() ? Status::error(StatusCode::kParseError, "json: parse failed") : error_;
  }

  bool expect(char c) {
    if (eof() || peek() != c) return error(std::string("expected '") + c + "'");
    advance();
    return true;
  }

  bool parse_literal(const char* word, Json value, Json& out) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (eof() || peek() != *p) return error(std::string("bad literal (expected ") + word + ")");
      advance();
    }
    out = std::move(value);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (true) {
      if (eof()) return error("unterminated string");
      const char c = advance();
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return error("control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return error("unterminated escape");
      const char esc = advance();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) return error("truncated \\u escape");
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; facade payloads are ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return error("unknown escape sequence");
      }
    }
  }

  bool parse_number(Json& out) {
    const std::size_t start = at_;
    if (!eof() && peek() == '-') advance();
    if (eof() || peek() < '0' || peek() > '9') return error("bad number");
    const char first_digit = peek();
    advance();
    if (first_digit == '0' && !eof() && peek() >= '0' && peek() <= '9') {
      return error("leading zeros are not allowed");
    }
    while (!eof() && peek() >= '0' && peek() <= '9') advance();
    if (!eof() && peek() == '.') {
      advance();
      if (eof() || peek() < '0' || peek() > '9') return error("digits required after '.'");
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      if (eof() || peek() < '0' || peek() > '9') return error("digits required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    const std::string token(text_.substr(start, at_ - start));
    out = Json(std::strtod(token.c_str(), nullptr));
    return true;
  }

  bool parse_value(Json& out) {
    if (++depth_ > kMaxDepth) return error("nesting too deep");
    skip_whitespace();
    if (eof()) return error("unexpected end of input");
    bool ok = false;
    switch (peek()) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"': {
        std::string text;
        ok = parse_string(text);
        if (ok) out = Json(std::move(text));
        break;
      }
      case 't': ok = parse_literal("true", Json(true), out); break;
      case 'f': ok = parse_literal("false", Json(false), out); break;
      case 'n': ok = parse_literal("null", Json(nullptr), out); break;
      default: ok = parse_number(out); break;
    }
    --depth_;
    return ok;
  }

  bool parse_object(Json& out) {
    if (!expect('{')) return false;
    Json::Object members;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      advance();
      out = Json(std::move(members));
      return true;
    }
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!expect(':')) return false;
      Json value;
      if (!parse_value(value)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (eof()) return error("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == '}') {
        advance();
        out = Json(std::move(members));
        return true;
      }
      return error("expected ',' or '}' in object");
    }
  }

  bool parse_array(Json& out) {
    if (!expect('[')) return false;
    Json::Array items;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      advance();
      out = Json(std::move(items));
      return true;
    }
    while (true) {
      Json value;
      if (!parse_value(value)) return false;
      items.push_back(std::move(value));
      skip_whitespace();
      if (eof()) return error("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == ']') {
        advance();
        out = Json(std::move(items));
        return true;
      }
      return error("expected ',' or ']' in array");
    }
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::size_t at_ = 0;
  int line_ = 1;
  int column_ = 1;
  int depth_ = 0;
  Status error_;
};

}  // namespace

int Json::as_int(int fallback) const noexcept {
  if (!is_number()) return fallback;
  const double value = std::get<double>(value_);
  if (!(value >= -2147483648.0 && value <= 2147483647.0)) return fallback;
  return static_cast<int>(value);
}

const std::string& Json::as_string() const {
  return is_string() ? std::get<std::string>(value_) : kEmptyString;
}

const Json::Array& Json::items() const {
  return is_array() ? std::get<Array>(value_) : kEmptyArray;
}

const Json::Object& Json::members() const {
  return is_object() ? std::get<Object>(value_) : kEmptyObject;
}

std::size_t Json::size() const noexcept {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : std::get<Object>(value_)) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json& Json::set(std::string_view key, Json value) {
  if (!is_object()) value_ = Object{};
  auto& members = std::get<Object>(value_);
  for (auto& [name, existing] : members) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  members.emplace_back(std::string(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (!is_array()) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const Array& items = std::get<Array>(value_);
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ',';
      newline(depth + 1);
      items[i].dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out += ']';
  } else {
    const Object& members = std::get<Object>(value_);
    if (members.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ',';
      newline(depth + 1);
      append_escaped(out, members[i].first);
      out += indent < 0 ? ":" : ": ";
      members[i].second.dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Result<Json> Json::parse(std::string_view text) {
  // Fault site "json_parse": malformed-input handling is exercised by
  // chaos runs without needing actually-malformed bytes on the wire.
  if (support::fault("json_parse")) {
    return Status::error(StatusCode::kParseError, "injected fault at site json_parse");
  }
  return JsonParser(text).run();
}

}  // namespace symref::api
