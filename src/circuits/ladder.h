// Scalable test circuits: RC ladders, gm-C chains, random RC networks.
//
// The ladders have exactly known polynomial order (n capacitors, order n),
// which makes them the workhorse of property tests and of the scalability
// bench (runtime vs circuit size, ablation A4 in DESIGN.md).
#pragma once

#include "mna/transfer.h"
#include "netlist/circuit.h"
#include "support/random.h"

namespace symref::circuits {

/// Uniform RC lowpass ladder: in -R- n1 -R- n2 ... with C from each stage
/// node to ground. Input node "in", output node "n<stages>".
/// Denominator order is exactly `stages`.
netlist::Circuit rc_ladder(int stages, double resistance = 1e3, double capacitance = 1e-9);

/// Voltage gain across the ladder.
mna::TransferSpec rc_ladder_spec(int stages);

/// Chain of lossy gm-C integrator stages whose element values spread over
/// `decades_of_spread` decades — wide coefficient slopes that force the
/// adaptive engine through many regions.
netlist::Circuit gm_c_chain(int stages, double decades_of_spread = 3.0,
                            double base_gm = 100e-6, double base_c = 1e-12);

mna::TransferSpec gm_c_chain_spec(int stages);

/// rows x cols RC grid: resistors along the mesh edges, a capacitor from
/// every node to ground, and a load resistor grounding the output corner.
/// Unlike the ladder (which factors with zero fill), the 2D mesh produces
/// genuine fill-in and multi-step supernodes — the size axis for the replay
/// kernel benches. Node names "m<row>_<col>", 1-based.
netlist::Circuit grid_mesh(int rows, int cols, double resistance = 1e3,
                           double capacitance = 1e-9);

/// Voltage gain from corner m1_1 to corner m<rows>_<cols>.
mna::TransferSpec grid_mesh_spec(int rows, int cols);

struct RandomRcOptions {
  int nodes = 8;            // non-ground nodes
  int extra_resistors = 6;  // beyond the spanning tree
  int capacitors = 6;
  double r_min = 1e2, r_max = 1e6;
  double c_min = 1e-13, c_max = 1e-9;
};

/// Random connected RC network: a resistor spanning tree (every node has a
/// DC path to ground) plus random extra resistors and capacitors.
/// Node names "n1".."n<nodes>"; use any pair for a transfer spec.
netlist::Circuit random_rc(support::Rng& rng, const RandomRcOptions& options = {});

}  // namespace symref::circuits
