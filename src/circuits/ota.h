// Positive-feedback OTA (paper Fig. 1).
//
// The paper's Table 1 example: a two-Gm OTA whose differential voltage gain
// has a topological order estimate of 9 (capacitor count) while the true
// order is much lower — exactly the situation where unit-circle
// interpolation without scaling (Table 1a) produces round-off garbage.
//
// The authors' device-level netlist is not published; this is a small-signal
// macromodel with the same structure: differential Gm input stage, positive
// feedback (negative conductance) at the internal node, Gm output stage, and
// nine parasitic/load capacitors with typical integrated-circuit values
// (1 fF .. 2 pF against conductances of 1 uS .. 200 uS), giving consecutive
// coefficient ratios of 1e6-1e12 as in §2.2.
#pragma once

#include "mna/transfer.h"
#include "netlist/circuit.h"

namespace symref::circuits {

/// Build the positive-feedback OTA. Input nodes "inp"/"inn", output "vo".
netlist::Circuit ota_fig1();

/// Differential voltage gain spec used by Table 1: (vo - 0) / (inp - inn).
mna::TransferSpec ota_fig1_gain_spec();

/// The paper's "upper estimate on the polynomial order" for this circuit.
inline constexpr int kOtaFig1OrderEstimate = 9;

}  // namespace symref::circuits
