#include "circuits/ua741.h"

#include "netlist/devices.h"

namespace symref::circuits {

using netlist::BjtParams;

namespace {

/// Vertical NPN, classic 6-GHz-class small-signal parameters scaled to the
/// 741's conservative process (fT a few hundred MHz).
BjtParams npn(double ic, const Ua741Options& options) {
  BjtParams p = BjtParams::from_bias(ic, /*beta=*/200.0, /*early=*/130.0,
                                     /*tau_f=*/0.35e-9, /*cje=*/1.0e-12,
                                     /*cmu=*/0.5e-12,
                                     /*ccs=*/options.substrate_caps ? 2.0e-12 : 0.0,
                                     /*rb=*/options.base_resistance ? 200.0 : 0.0);
  return p;
}

/// Lateral PNP: low beta, low Early voltage, slow (tau_f tens of ns).
BjtParams pnp(double ic, const Ua741Options& options) {
  BjtParams p = BjtParams::from_bias(ic, /*beta=*/50.0, /*early=*/50.0,
                                     /*tau_f=*/30e-9, /*cje=*/0.3e-12,
                                     /*cmu=*/1.0e-12,
                                     /*ccs=*/options.substrate_caps ? 3.0e-12 : 0.0,
                                     /*rb=*/options.base_resistance ? 300.0 : 0.0);
  return p;
}

}  // namespace

netlist::Circuit ua741(const Ua741Options& options) {
  netlist::Circuit c;
  c.title = "uA741 small-signal";

  // AC ground: both supply rails collapse to node "0".

  // --- Input stage -----------------------------------------------------
  // Q1/Q2: NPN emitter followers from the inputs; collectors feed the Q8
  // mirror input. Q3/Q4: lateral PNP common-base; bases biased by the
  // Q9/Q10 loop, collectors into the Q5/Q6/Q7 mirror.
  netlist::expand_bjt(c, "q1", /*c=*/"c8", /*b=*/"inp", /*e=*/"e1", npn(9.5e-6, options));
  netlist::expand_bjt(c, "q2", "c8", "inn", "e2", npn(9.5e-6, options));
  netlist::expand_bjt(c, "q3", "col3", "b34", "e1", pnp(9.5e-6, options));
  netlist::expand_bjt(c, "q4", "o1", "b34", "e2", pnp(9.5e-6, options));

  // Q5/Q6 mirror with emitter degeneration, Q7 beta-helper.
  netlist::expand_bjt(c, "q5", "col3", "bm", "em5", npn(9.5e-6, options));
  netlist::expand_bjt(c, "q6", "o1", "bm", "em6", npn(9.5e-6, options));
  netlist::expand_bjt(c, "q7", "0", "col3", "bm", npn(10e-6, options));
  c.add_resistor("r1", "em5", "0", 1e3);
  c.add_resistor("r2", "em6", "0", 1e3);
  c.add_resistor("r3", "bm", "0", 50e3);

  // --- Bias network ------------------------------------------------------
  // Q8 diode-connected PNP at the input-pair collectors, mirrored by Q9
  // onto the Q3/Q4 base line, which the Widlar source Q10 pulls down.
  netlist::expand_bjt(c, "q8", "c8", "c8", "0", pnp(19e-6, options));
  netlist::expand_bjt(c, "q9", "b34", "c8", "0", pnp(19e-6, options));
  netlist::expand_bjt(c, "q10", "b34", "b11", "er10", npn(19e-6, options));
  c.add_resistor("r4", "er10", "0", 5e3);
  netlist::expand_bjt(c, "q11", "b11", "b11", "0", npn(730e-6, options));
  c.add_resistor("r5", "b11", "bias", 39e3);
  netlist::expand_bjt(c, "q12", "bias", "bias", "0", pnp(730e-6, options));
  // Q13 dual-collector PNP, modeled as two devices: Q13a biases the output
  // stage, Q13b is the second stage's active load.
  netlist::expand_bjt(c, "q13a", "b14", "bias", "0", pnp(180e-6, options));
  netlist::expand_bjt(c, "q13b", "o2", "bias", "0", pnp(550e-6, options));

  // --- Second stage -------------------------------------------------------
  // Q16 emitter follower into Q17 common-emitter; the 30 pF Miller
  // capacitor closes the loop from Q17's collector back to Q16's base.
  netlist::expand_bjt(c, "q16", "0", "o1", "e16", npn(16e-6, options));
  c.add_resistor("r9", "e16", "0", 50e3);
  netlist::expand_bjt(c, "q17", "o2", "e16", "em17", npn(550e-6, options));
  c.add_resistor("r8", "em17", "0", 100.0);
  c.add_capacitor("cc", "o1", "o2", 30e-12);

  // --- Class-AB output stage ----------------------------------------------
  // VBE multiplier Q18 between the output bases, push-pull Q14 (NPN) /
  // Q20 (PNP) with short-circuit-sense resistors R6/R7.
  netlist::expand_bjt(c, "q18", "b14", "n18", "o2", npn(165e-6, options));
  c.add_resistor("rm1", "b14", "n18", 4.5e3);
  c.add_resistor("rm2", "n18", "o2", 7.5e3);
  netlist::expand_bjt(c, "q14", "0", "b14", "e14", npn(180e-6, options));
  c.add_resistor("r6", "e14", "vo", 27.0);
  netlist::expand_bjt(c, "q20", "0", "o2", "e20", pnp(180e-6, options));
  c.add_resistor("r7", "e20", "vo", 22.0);

  // Load.
  c.add_resistor("rl", "vo", "0", options.load_resistance);
  if (options.load_capacitance > 0.0) {
    c.add_capacitor("cl", "vo", "0", options.load_capacitance);
  }
  return c;
}

mna::TransferSpec ua741_gain_spec() {
  return mna::TransferSpec::voltage_gain("inp", "vo", "inn", "0");
}

}  // namespace symref::circuits
