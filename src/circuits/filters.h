// Active-filter benchmark circuits with analytically known transfer
// functions — they exercise the canonicalization of opamps / VCVS and give
// closed-form oracles for the reference engine.
#pragma once

#include "mna/transfer.h"
#include "netlist/circuit.h"

namespace symref::circuits {

/// Tow-Thomas biquad built from three ideal opamps. Lowpass output at
/// "lp", bandpass at "bp". With equal parts the lowpass transfer is
///   H(s) = -H0 * w0^2 / (s^2 + s*w0/Q + w0^2).
netlist::Circuit tow_thomas(double f0_hz = 10e3, double quality = 2.0, double gain = 1.0);

mna::TransferSpec tow_thomas_lowpass_spec();
mna::TransferSpec tow_thomas_bandpass_spec();

/// Unity-gain Sallen-Key lowpass (VCVS buffer):
///   H(s) = 1 / (1 + s*C2*(R1+R2) + s^2*R1*R2*C1*C2).
netlist::Circuit sallen_key(double r1 = 10e3, double r2 = 10e3, double c1 = 10e-9,
                            double c2 = 1e-9);

mna::TransferSpec sallen_key_spec();

/// Series-RLC bandpass: in -R- out with L and C from "out" to ground.
///   H(s) = (s L / R) / (1 + s L / R + s^2 L C)   (voltage across L||C)
/// Exercises the inductor -> gyrator-C canonicalization inside the full
/// reference pipeline. Center frequency f0, quality factor q.
netlist::Circuit rlc_bandpass(double f0_hz = 1e6, double quality = 5.0,
                              double resistance = 1e3);

mna::TransferSpec rlc_bandpass_spec();

}  // namespace symref::circuits
