// MOS operational transconductance amplifiers — CMOS-flavoured benchmark
// circuits (the paper's techniques target exactly this class; the OTA of
// Fig. 1 is a CMOS block). Both builders expand saturation-region MOS
// small-signal models (netlist/devices.h).
#pragma once

#include "mna/transfer.h"
#include "netlist/circuit.h"

namespace symref::circuits {

struct MosOtaOptions {
  double load_capacitance = 2e-12;
  double compensation_capacitance = 1e-12;
  /// Nulling resistor in series with the Miller capacitor (0 = none).
  double nulling_resistance = 0.0;
};

/// Two-stage Miller-compensated OTA: differential pair + current-mirror
/// load, common-source second stage, Miller cap (optionally with a nulling
/// resistor) to the output. Inputs "inp"/"inn", output "vo".
netlist::Circuit two_stage_miller_ota(const MosOtaOptions& options = {});

mna::TransferSpec two_stage_miller_ota_spec();

/// Folded-cascode OTA: differential pair folded into cascoded branches with
/// a cascode current-mirror load. Single high-impedance output node, one
/// dominant pole at the output. Inputs "inp"/"inn", output "vo".
netlist::Circuit folded_cascode_ota(double load_capacitance = 2e-12);

mna::TransferSpec folded_cascode_ota_spec();

}  // namespace symref::circuits
