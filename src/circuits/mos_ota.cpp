#include "circuits/mos_ota.h"

#include "netlist/devices.h"

namespace symref::circuits {

using netlist::MosParams;

namespace {

/// Saturation-region small-signal parameters for a long-channel analog
/// device at the given bias current, gm/Id ~ 10 and intrinsic gain ~50.
MosParams nmos(double id) {
  MosParams p;
  p.gm = 10.0 * id;
  p.gds = 0.02 * p.gm;  // gm*ro ~ 50
  p.cgs = 20e-15 + id * 2e-9;
  p.cgd = 5e-15;
  p.cdb = 10e-15;
  return p;
}

MosParams pmos(double id) {
  MosParams p;
  p.gm = 8.0 * id;      // lower mobility
  p.gds = 0.04 * p.gm;  // gm*ro ~ 25
  p.cgs = 30e-15 + id * 3e-9;
  p.cgd = 8e-15;
  p.cdb = 15e-15;
  return p;
}

}  // namespace

netlist::Circuit two_stage_miller_ota(const MosOtaOptions& options) {
  netlist::Circuit c;
  c.title = "two-stage Miller OTA";

  // First stage: NMOS differential pair (tail node "tail" — the tail source
  // is a bias element, small-signal a conductance to ground), PMOS mirror
  // load (diode side "d1", output side "d2").
  const double id1 = 10e-6;
  netlist::expand_mos(c, "m1", /*d=*/"d1", /*g=*/"inp", /*s=*/"tail", nmos(id1));
  netlist::expand_mos(c, "m2", "d2", "inn", "tail", nmos(id1));
  netlist::expand_mos(c, "m3", "d1", "d1", "0", pmos(id1));  // diode-connected
  netlist::expand_mos(c, "m4", "d2", "d1", "0", pmos(id1));
  // Tail current source output conductance.
  c.add_conductance("gtail", "tail", "0", 2e-6);

  // Second stage: PMOS common source driven from "d2", NMOS current-source
  // load m7 (gate AC-grounded: only its gds/cdb stamp).
  const double id2 = 100e-6;
  netlist::expand_mos(c, "m6", "vo", "d2", "0", pmos(id2));
  netlist::expand_mos(c, "m7", "vo", "0", "0", nmos(id2));

  // Miller compensation, optionally with a nulling resistor.
  if (options.nulling_resistance > 0.0) {
    c.add_resistor("rz", "d2", "cz", options.nulling_resistance);
    c.add_capacitor("cc", "cz", "vo", options.compensation_capacitance);
  } else {
    c.add_capacitor("cc", "d2", "vo", options.compensation_capacitance);
  }
  c.add_capacitor("cl", "vo", "0", options.load_capacitance);
  return c;
}

mna::TransferSpec two_stage_miller_ota_spec() {
  return mna::TransferSpec::voltage_gain("inp", "vo", "inn", "0");
}

netlist::Circuit folded_cascode_ota(double load_capacitance) {
  netlist::Circuit c;
  c.title = "folded-cascode OTA";

  const double id = 20e-6;
  // Input pair folding into nodes "fp"/"fn".
  netlist::expand_mos(c, "m1", "fp", "inp", "tail", nmos(id));
  netlist::expand_mos(c, "m2", "fn", "inn", "tail", nmos(id));
  c.add_conductance("gtail", "tail", "0", 2e-6);

  // Folding current sources (NMOS, gates AC-grounded: only gds/cdb stamp).
  netlist::expand_mos(c, "m3", "fp", "0", "0", nmos(2 * id));
  netlist::expand_mos(c, "m4", "fn", "0", "0", nmos(2 * id));

  // NMOS cascodes from the folding nodes to the mirror-diode node ("cp")
  // and the output ("vo"); cascode gates are AC ground.
  netlist::expand_mos(c, "m5", "cp", "0", "fp", nmos(id));
  netlist::expand_mos(c, "m6", "vo", "0", "fn", nmos(id));

  // Cascoded PMOS current-mirror load: bottom devices m7/m8 (gates on the
  // diode node "cp"), cascodes m9/m10 (gates AC ground) — without the
  // p-side cascode the output resistance, and thus the gain, collapses to
  // a single ro.
  netlist::expand_mos(c, "m7", "mp", "cp", "0", pmos(id));
  netlist::expand_mos(c, "m8", "mn", "cp", "0", pmos(id));
  netlist::expand_mos(c, "m9", "cp", "0", "mp", pmos(id));
  netlist::expand_mos(c, "m10", "vo", "0", "mn", pmos(id));

  c.add_capacitor("cl", "vo", "0", load_capacitance);
  return c;
}

mna::TransferSpec folded_cascode_ota_spec() {
  return mna::TransferSpec::voltage_gain("inp", "vo", "inn", "0");
}

}  // namespace symref::circuits
