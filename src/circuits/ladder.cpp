#include "circuits/ladder.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace symref::circuits {

netlist::Circuit rc_ladder(int stages, double resistance, double capacitance) {
  if (stages < 1) throw std::invalid_argument("rc_ladder: stages must be >= 1");
  netlist::Circuit c;
  c.title = "rc-ladder-" + std::to_string(stages);
  std::string previous = "in";
  for (int i = 1; i <= stages; ++i) {
    const std::string node = "n" + std::to_string(i);
    c.add_resistor("r" + std::to_string(i), previous, node, resistance);
    c.add_capacitor("c" + std::to_string(i), node, "0", capacitance);
    previous = node;
  }
  return c;
}

mna::TransferSpec rc_ladder_spec(int stages) {
  return mna::TransferSpec::voltage_gain("in", "n" + std::to_string(stages));
}

netlist::Circuit gm_c_chain(int stages, double decades_of_spread, double base_gm,
                            double base_c) {
  if (stages < 1) throw std::invalid_argument("gm_c_chain: stages must be >= 1");
  netlist::Circuit c;
  c.title = "gm-c-chain-" + std::to_string(stages);
  std::string previous = "in";
  // A tiny input-termination conductance keeps the input node non-floating.
  c.add_conductance("gin", "in", "0", base_gm / 10.0);
  for (int i = 1; i <= stages; ++i) {
    const std::string node = "n" + std::to_string(i);
    // Element values sweep log-linearly across the requested spread, so
    // consecutive coefficient ratios vary from stage to stage.
    const double position =
        stages > 1 ? static_cast<double>(i - 1) / static_cast<double>(stages - 1) : 0.0;
    const double scale = std::pow(10.0, decades_of_spread * (position - 0.5));
    c.add_vccs("gm" + std::to_string(i), node, "0", previous, "0", base_gm * scale);
    c.add_conductance("gl" + std::to_string(i), node, "0", base_gm * scale / 20.0);
    c.add_capacitor("c" + std::to_string(i), node, "0", base_c / scale);
    previous = node;
  }
  return c;
}

mna::TransferSpec gm_c_chain_spec(int stages) {
  return mna::TransferSpec::voltage_gain("in", "n" + std::to_string(stages));
}

netlist::Circuit grid_mesh(int rows, int cols, double resistance, double capacitance) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("grid_mesh: rows/cols must be >= 1");
  netlist::Circuit c;
  c.title = "grid-mesh-" + std::to_string(rows) + "x" + std::to_string(cols);
  auto node = [](int r, int col) {
    return "m" + std::to_string(r) + "_" + std::to_string(col);
  };
  int element = 0;
  for (int r = 1; r <= rows; ++r) {
    for (int col = 1; col <= cols; ++col) {
      if (col < cols) {
        c.add_resistor("rh" + std::to_string(++element), node(r, col), node(r, col + 1),
                       resistance);
      }
      if (r < rows) {
        c.add_resistor("rv" + std::to_string(++element), node(r, col), node(r + 1, col),
                       resistance);
      }
      c.add_capacitor("cg" + std::to_string(++element), node(r, col), "0", capacitance);
    }
  }
  c.add_resistor("rload", node(rows, cols), "0", resistance);
  return c;
}

mna::TransferSpec grid_mesh_spec(int rows, int cols) {
  return mna::TransferSpec::voltage_gain("m1_1",
                                         "m" + std::to_string(rows) + "_" + std::to_string(cols));
}

netlist::Circuit random_rc(support::Rng& rng, const RandomRcOptions& options) {
  netlist::Circuit c;
  c.title = "random-rc";
  auto node_name = [](int i) { return i == 0 ? std::string("0") : "n" + std::to_string(i); };
  int element = 0;

  // Resistor spanning tree over nodes 0..nodes: node i attaches to a random
  // earlier node, so the conductance graph is connected and grounded.
  for (int i = 1; i <= options.nodes; ++i) {
    const int parent = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(i)));
    c.add_resistor("rt" + std::to_string(++element), node_name(i), node_name(parent),
                   rng.log_uniform(options.r_min, options.r_max));
  }
  for (int i = 0; i < options.extra_resistors; ++i) {
    const int a = static_cast<int>(rng.uniform_index(options.nodes + 1));
    int b = static_cast<int>(rng.uniform_index(options.nodes + 1));
    if (a == b) b = (b + 1) % (options.nodes + 1);
    c.add_resistor("rx" + std::to_string(++element), node_name(a), node_name(b),
                   rng.log_uniform(options.r_min, options.r_max));
  }
  for (int i = 0; i < options.capacitors; ++i) {
    const int a = static_cast<int>(rng.uniform_index(options.nodes)) + 1;  // not ground
    int b = static_cast<int>(rng.uniform_index(options.nodes + 1));
    if (a == b) b = 0;
    c.add_capacitor("cx" + std::to_string(++element), node_name(a), node_name(b),
                    rng.log_uniform(options.c_min, options.c_max));
  }
  return c;
}

}  // namespace symref::circuits
