#include "circuits/filters.h"

#include <cmath>

namespace symref::circuits {

netlist::Circuit tow_thomas(double f0_hz, double quality, double gain) {
  const double w0 = 2.0 * M_PI * f0_hz;
  const double c = 10e-9;
  const double r = 1.0 / (w0 * c);     // integrator resistors
  const double rq = quality * r;       // damping
  const double rg = r / gain;          // input gain set
  const double ru = 10e3;              // unity inverter

  netlist::Circuit ckt;
  ckt.title = "tow-thomas biquad";
  // A1: lossy inverting integrator; virtual ground "va", output "bp".
  ckt.add_resistor("rg", "in", "va", rg);
  ckt.add_resistor("rq", "bp", "va", rq);
  ckt.add_resistor("rfb", "inv", "va", r);   // loop feedback from the inverter
  ckt.add_capacitor("c1", "va", "bp", c);
  ckt.add_opamp("a1", "bp", "0", "va");
  // A2: inverting integrator; virtual ground "vb", output "lp".
  ckt.add_resistor("r2", "bp", "vb", r);
  ckt.add_capacitor("c2", "vb", "lp", c);
  ckt.add_opamp("a2", "lp", "0", "vb");
  // A3: unity inverter; virtual ground "vc", output "inv".
  ckt.add_resistor("r3", "lp", "vc", ru);
  ckt.add_resistor("r4", "inv", "vc", ru);
  ckt.add_opamp("a3", "inv", "0", "vc");
  return ckt;
}

mna::TransferSpec tow_thomas_lowpass_spec() {
  return mna::TransferSpec::voltage_gain("in", "lp");
}

mna::TransferSpec tow_thomas_bandpass_spec() {
  return mna::TransferSpec::voltage_gain("in", "bp");
}

netlist::Circuit sallen_key(double r1, double r2, double c1, double c2) {
  netlist::Circuit ckt;
  ckt.title = "sallen-key lowpass";
  ckt.add_resistor("r1", "in", "n1", r1);
  ckt.add_resistor("r2", "n1", "n2", r2);
  ckt.add_capacitor("c1", "n1", "vo", c1);
  ckt.add_capacitor("c2", "n2", "0", c2);
  // Unity-gain buffer: vo follows n2.
  ckt.add_vcvs("e1", "vo", "0", "n2", "0", 1.0);
  return ckt;
}

mna::TransferSpec sallen_key_spec() { return mna::TransferSpec::voltage_gain("in", "vo"); }

netlist::Circuit rlc_bandpass(double f0_hz, double quality, double resistance) {
  const double w0 = 2.0 * M_PI * f0_hz;
  // Parallel-resonant tank driven through R: Q = R * sqrt(C/L),
  // w0 = 1/sqrt(LC)  ->  L = R/(Q w0), C = Q/(R w0).
  const double inductance = resistance / (quality * w0);
  const double capacitance = quality / (resistance * w0);
  netlist::Circuit c;
  c.title = "rlc bandpass";
  c.add_resistor("r1", "in", "out", resistance);
  c.add_inductor("l1", "out", "0", inductance);
  c.add_capacitor("c1", "out", "0", capacitance);
  return c;
}

mna::TransferSpec rlc_bandpass_spec() {
  return mna::TransferSpec::voltage_gain("in", "out");
}

}  // namespace symref::circuits
