#include "circuits/ota.h"

namespace symref::circuits {

netlist::Circuit ota_fig1() {
  netlist::Circuit c;
  c.title = "positive-feedback OTA (Fig. 1)";

  // First Gm stage: differential input to internal node "a".
  c.add_vccs("gm1", "a", "0", "inp", "inn", 100e-6);
  c.add_conductance("go1", "a", "0", 10e-6);

  // Positive feedback Gm: injects current proportional to v(a) back into
  // "a" — a negative conductance that partially cancels go1 (the circuit's
  // defining feature in Fig. 1).
  c.add_vccs("gmf", "a", "0", "0", "a", 8e-6);

  // Second Gm stage driving the output.
  c.add_vccs("gm2", "vo", "0", "a", "0", 200e-6);
  c.add_conductance("go2", "vo", "0", 5e-6);

  // Nine capacitors: input/device parasitics, Miller coupling, load. The
  // capacitor ELEMENT count (9) is the paper's order estimate; their graph
  // rank is lower, so most interpolated coefficients are identically zero —
  // which is what Table 1a fails to reveal.
  c.add_capacitor("cinp", "inp", "0", 50e-15);
  c.add_capacitor("cinn", "inn", "0", 50e-15);
  c.add_capacitor("cgd1p", "inp", "a", 5e-15);
  c.add_capacitor("cgd1n", "inn", "a", 5e-15);
  c.add_capacitor("cdiff", "inp", "inn", 10e-15);
  c.add_capacitor("cpa", "a", "0", 100e-15);
  c.add_capacitor("cm", "a", "vo", 1e-12);
  c.add_capacitor("cfb", "inn", "vo", 2e-15);
  c.add_capacitor("cl", "vo", "0", 2e-12);
  return c;
}

mna::TransferSpec ota_fig1_gain_spec() {
  return mna::TransferSpec::voltage_gain("inp", "vo", "inn", "0");
}

}  // namespace symref::circuits
