// Small-signal µA741 operational amplifier (paper §3.2 example).
//
// The paper demonstrates the adaptive algorithm on the µA741's open-loop
// voltage gain, whose denominator has ~49 coefficients spanning from 1e-90
// down to 1e-522 — far beyond what any single scaling can expose. The
// authors' netlist and bias data are not published, so this is the classic
// Fairchild schematic (input stage Q1-Q9, Widlar bias Q10-Q13, second stage
// Q16/Q17, class-AB output Q14/Q18/Q20 with the 30 pF Miller capacitor)
// expanded transistor-by-transistor into hybrid-pi small-signal models with
// textbook operating-point currents. Every transistor gets a base-spreading
// resistance (private internal node) and a collector-substrate capacitance,
// which reproduces the paper's situation: a ~40-node admittance matrix,
// ~60 capacitors, consecutive coefficients 1e6-1e9 apart.
#pragma once

#include "mna/transfer.h"
#include "netlist/circuit.h"

namespace symref::circuits {

struct Ua741Options {
  /// Model base spreading resistances (adds one node per transistor).
  bool base_resistance = true;
  /// Model collector-substrate junction capacitances.
  bool substrate_caps = true;
  /// Output load.
  double load_resistance = 2e3;
  double load_capacitance = 100e-12;
};

/// Build the µA741 small-signal equivalent. Inputs "inp"/"inn", output "vo".
netlist::Circuit ua741(const Ua741Options& options = {});

/// Open-loop differential voltage gain: (vo - 0) / (inp - inn).
mna::TransferSpec ua741_gain_spec();

}  // namespace symref::circuits
