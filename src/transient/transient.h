// Time-domain (transient) analysis with plan-reusing time stepping.
//
// The integrator discretizes every capacitor and inductor into a companion
// conductance + history source (trapezoidal, BDF1 or BDF2). The companion
// stamps occupy the same matrix positions at every step, so the MNA pattern
// is fixed for the whole run: each accepted step is a PatternedMatrix
// rebind() + SparseLu refactor() replay of a recorded plan. The companion
// conductances scale with 1/h, so the plan is keyed by the *step-size
// bucket*: allowed step sizes are h_ref / 2^k, each bucket owns one
// factorization plan (recorded the first time the controller lands in it and
// replayed forever after), and a constant-step run performs exactly three
// fresh factorizations end to end — the t = 0 bias pattern, the
// consistent-initialization solve, and the single step bucket.
// `TransientResult::fresh_factorizations` probes the contract.
//
// Device-bearing netlists run a damped Newton iteration per step (the PR 9
// OpSolver machinery from dc/stamps.h: fixed-pattern device companions,
// pnjlim junction limiting, the escalating-pivot degradation ladder); the
// previous step's solution is the warm start, so a handful of iterations per
// step suffice and every iterate replays the bucket's plan.
//
// Step control: the local truncation error is estimated per accepted
// candidate by comparing the corrector against a quadratic predictor
// extrapolated through the last three accepted points. A step whose estimate
// exceeds the tolerance is rejected (counted in lte_rejections) and retried
// in the next-smaller bucket; sustained headroom grows the step back toward
// h_ref. Fixed-step runs (adaptive = false) skip the controller entirely.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dc/newton.h"
#include "dc/stamps.h"
#include "netlist/circuit.h"
#include "sparse/lu.h"
#include "sparse/matrix.h"
#include "support/cancellation.h"

namespace symref::transient {

enum class Method {
  kTrapezoidal,  // 2nd order, A-stable, the default
  kBdf1,         // backward Euler: 1st order, L-stable
  kBdf2,         // 2nd order, L-stable (BDF1 startup step)
};

/// "trap" / "bdf1" / "bdf2".
const char* method_name(Method method) noexcept;

/// Parse a method name; throws std::invalid_argument on anything else.
Method method_from_name(std::string_view name);

struct TransientOptions {
  Method method = Method::kTrapezoidal;

  /// End of the simulated window (seconds, > 0 required).
  double tstop = 0.0;

  /// Reference (maximum) step size. 0 picks tstop / 1000. With adaptive
  /// control the allowed steps are tstep / 2^k, k in [0, max_halvings].
  double tstep = 0.0;

  /// LTE step control on/off. Off = constant tstep steps (one bucket).
  bool adaptive = true;

  /// LTE acceptance: |x - predictor| <= lte_abstol + lte_reltol * |x| per
  /// unknown, with a safety factor applied on rejection.
  double lte_reltol = 1e-3;
  double lte_abstol = 1e-6;

  /// Deepest allowed bucket: h_min = tstep / 2^max_halvings.
  int max_halvings = 20;

  /// Hard cap on accepted + rejected steps (runaway guard).
  int max_steps = 1 << 20;

  /// Newton-per-step controls (device-bearing netlists).
  int max_newton_iterations = 100;
  double newton_reltol = 1e-6;
  double newton_abstol_v = 1e-9;
  double newton_abstol_i = 1e-12;
  double gmin = 1e-12;

  /// Options for the t = 0 bias solve (homotopy ladder etc.); tstep-shaped
  /// fields are ignored. The cancel token below is threaded into it.
  dc::OpOptions bias;

  /// Cooperative cancellation, polled at every step (and every Newton
  /// iterate): a tripped token throws support::CancelledError.
  support::CancellationToken cancel;
};

struct TransientResult {
  /// Unknown layout: node names (rows 0..) then branch names.
  std::vector<std::string> node_names;
  std::vector<std::string> branch_names;

  /// Accepted time points, t = 0 first; states[k] holds the full unknown
  /// vector (node voltages then branch currents) at times[k].
  std::vector<double> times;
  std::vector<std::vector<double>> states;

  int steps = 0;               // accepted steps (times.size() - 1)
  int lte_rejections = 0;      // rejected step candidates
  int newton_iterations = 0;   // total over all steps (0 for linear runs)
  int step_size_buckets = 0;   // distinct h buckets used by accepted steps

  /// Fresh factorizations, including the t = 0 bias solve's and the
  /// consistent-initialization solve's. The plan-replay contract for a
  /// linear reactive circuit: step_size_buckets + 2 (one bias factor, one
  /// initialization factor) under healthy replay; faults/degradation only
  /// add to it.
  std::uint64_t fresh_factorizations = 0;
  std::uint64_t pivot_escalations = 0;
  bool degraded = false;

  double seconds = 0.0;

  /// Waveform of one node ("0"/"gnd" = all-zero ground) across times.
  /// Throws std::invalid_argument for an unknown node.
  [[nodiscard]] std::vector<double> waveform_of(std::string_view node) const;

  /// One node's voltage at point index k.
  [[nodiscard]] double voltage_at(std::string_view node, std::size_t k) const;
};

class NoConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TransientSolver {
 public:
  explicit TransientSolver(TransientOptions options);

  /// Integrate `circuit` over [0, tstop]. The circuit must outlive the call.
  /// Throws mna::SingularSystemError (degenerate system),
  /// transient::NoConvergenceError (Newton or step-control breakdown),
  /// support::CancelledError, std::invalid_argument (bad options).
  [[nodiscard]] TransientResult solve(const netlist::Circuit& circuit);

 private:
  /// One factorization plan per step-size bucket (key: halving count k;
  /// -1 = the t = 0 DC pattern).
  struct BucketPlan {
    sparse::SparseLu lu;
    bool planned = false;
  };

  TransientOptions options_;
  sparse::PatternedMatrix assembly_;
  bool has_pattern_ = false;
  std::map<int, BucketPlan> buckets_;
};

/// One-shot convenience wrapper.
[[nodiscard]] TransientResult solve_transient(const netlist::Circuit& circuit,
                                              const TransientOptions& options);

}  // namespace symref::transient
