#include "transient/transient.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "dc/stamps.h"
#include "mna/errors.h"
#include "support/fault_injection.h"
#include "support/timer.h"

namespace symref::transient {

using dc::DeviceState;
using dc::Layout;
using netlist::Circuit;
using netlist::Element;
using sparse::PatternStamp;

namespace {

/// Bucket key of the single non-dyadic step that lands exactly on tstop when
/// the remaining window is shorter than the current dyadic step.
constexpr int kFinalPartialBucket = -2;

/// Bucket key of the consistent-initialization solve: a BDF1 "step" of
/// near-zero length at t = 0. The huge companion conductances pin every
/// capacitor voltage and inductor current at its initial value while the
/// purely algebraic unknowns relax to a consistent t = 0+ state — and the
/// BDF1 current recovery i = geq * (v - v0) reads off the TRUE initial
/// capacitor currents, which the trapezoidal history needs (an inconsistent
/// initial current error alternates sign forever under trap instead of
/// decaying).
constexpr int kInitBucket = -3;

/// Norton forcing applied to each .ic node during the initialization solve
/// (its stamp position is kept in every later assembly with value 0 so the
/// pattern stays pinned). Strong against ordinary circuit conductances but
/// WEAK against the initialization companions (~1e12x the working geq), so a
/// capacitor at an .ic node keeps sinking essentially all of the node's
/// imbalance current — the pin must not skew the recovered i_C(0).
constexpr double kIcPinConductance = 1e6;

/// Per-reactive-element integration history at the last accepted points.
struct ReactiveHistory {
  double v = 0.0;       // across-voltage at t_n
  double v_prev = 0.0;  // at t_{n-1} (BDF2)
  double i = 0.0;       // through-current at t_n
  double i_prev = 0.0;  // at t_{n-1} (BDF2)
};

/// Companion-model coefficients of one step. For a capacitor the model is
/// i = geq * v - hist (hist injected into the node rows of the RHS); for an
/// inductor the branch row reads (vp - vn) - req * i = rhs_b.
struct CompanionCoeffs {
  double geq_scale = 0.0;  // geq = geq_scale * C / h ; req = geq_scale * L / h
};

double capacitor_hist(Method m, double c, double h, const ReactiveHistory& s) {
  switch (m) {
    case Method::kTrapezoidal:
      return (2.0 * c / h) * s.v + s.i;
    case Method::kBdf1:
      return (c / h) * s.v;
    case Method::kBdf2:
      return (c / (2.0 * h)) * (4.0 * s.v - s.v_prev);
  }
  return 0.0;
}

double inductor_rhs(Method m, double l, double h, const ReactiveHistory& s) {
  switch (m) {
    case Method::kTrapezoidal:
      return -((2.0 * l / h) * s.i + s.v);
    case Method::kBdf1:
      return -(l / h) * s.i;
    case Method::kBdf2:
      return -(l / (2.0 * h)) * (4.0 * s.i - s.i_prev);
  }
  return 0.0;
}

double companion_scale(Method m) {
  switch (m) {
    case Method::kTrapezoidal:
      return 2.0;
    case Method::kBdf1:
      return 1.0;
    case Method::kBdf2:
      return 1.5;
  }
  return 2.0;
}

}  // namespace

const char* method_name(Method method) noexcept {
  switch (method) {
    case Method::kTrapezoidal:
      return "trap";
    case Method::kBdf1:
      return "bdf1";
    case Method::kBdf2:
      return "bdf2";
  }
  return "trap";
}

Method method_from_name(std::string_view name) {
  if (name == "trap" || name == "trapezoidal") return Method::kTrapezoidal;
  if (name == "bdf1" || name == "be" || name == "euler") return Method::kBdf1;
  if (name == "bdf2" || name == "gear2") return Method::kBdf2;
  throw std::invalid_argument("transient: unknown method '" + std::string(name) +
                              "' (expected trap | bdf1 | bdf2)");
}

std::vector<double> TransientResult::waveform_of(std::string_view node) const {
  if (node == "0" || node == "gnd" || node == "GND" || node == "Gnd") {
    return std::vector<double>(times.size(), 0.0);
  }
  for (std::size_t i = 0; i < node_names.size(); ++i) {
    if (node_names[i] == node) {
      std::vector<double> wave(times.size());
      for (std::size_t k = 0; k < times.size(); ++k) wave[k] = states[k][i];
      return wave;
    }
  }
  throw std::invalid_argument("TransientResult: unknown node '" + std::string(node) + "'");
}

double TransientResult::voltage_at(std::string_view node, std::size_t k) const {
  if (node == "0" || node == "gnd" || node == "GND" || node == "Gnd") return 0.0;
  for (std::size_t i = 0; i < node_names.size(); ++i) {
    if (node_names[i] == node) return states.at(k)[i];
  }
  throw std::invalid_argument("TransientResult: unknown node '" + std::string(node) + "'");
}

TransientSolver::TransientSolver(TransientOptions options) : options_(std::move(options)) {}

TransientResult TransientSolver::solve(const Circuit& circuit) {
  const support::Timer timer;
  if (!(options_.tstop > 0.0) || !std::isfinite(options_.tstop)) {
    throw std::invalid_argument("transient: tstop must be finite and > 0");
  }
  if (options_.tstep < 0.0 || !std::isfinite(options_.tstep)) {
    throw std::invalid_argument("transient: tstep must be finite and >= 0");
  }
  if (options_.tstep > options_.tstop) {
    throw std::invalid_argument("transient: tstep exceeds tstop");
  }
  if (options_.max_halvings < 0 || options_.max_halvings > 60) {
    throw std::invalid_argument("transient: max_halvings must be in [0, 60]");
  }

  auto layout_ptr = dc::build_layout(circuit);
  const Layout& layout = *layout_ptr;

  TransientResult result;
  for (int n = 1; n < circuit.node_count(); ++n) result.node_names.push_back(circuit.node_name(n));
  result.branch_names = layout.branch_names;
  if (layout.dim == 0) {
    result.times.push_back(0.0);
    result.states.emplace_back();
    result.seconds = timer.seconds();
    return result;
  }
  const std::size_t dim = static_cast<std::size_t>(layout.dim);
  const std::size_t node_rows = static_cast<std::size_t>(layout.node_rows);

  // --- t = 0 bias point: the DC operating point of the circuit with every
  // source held at its waveform's t = 0 level, then .ic node overrides. ----
  std::vector<double> x(dim, 0.0);
  {
    Circuit bias_circuit = circuit;
    for (const Element& e : circuit.elements()) {
      if (e.is_source()) {
        Element* mutable_e = bias_circuit.mutable_element(e.name);
        mutable_e->dc_value = e.transient_value(0.0);
        mutable_e->waveform = netlist::Waveform{};
      }
    }
    dc::OpOptions bias_options = options_.bias;
    bias_options.cancel = options_.cancel;
    const dc::OpResult bias = dc::solve_op(bias_circuit, bias_options);
    result.fresh_factorizations += bias.fresh_factorizations;
    result.pivot_escalations += bias.pivot_escalations;
    result.degraded = result.degraded || bias.degraded;
    for (std::size_t i = 0; i < node_rows; ++i) x[i] = bias.node_voltages[i];
    for (std::size_t i = node_rows; i < dim; ++i) x[i] = bias.branch_currents[i - node_rows];
  }
  for (const auto& [node, volts] : circuit.initial_conditions()) {
    x[static_cast<std::size_t>(layout.row_of_node(node))] = volts;
  }

  // Reactive histories at t = 0: capacitor voltages from the (possibly
  // .ic-overridden) bias state with zero current (a capacitor is open at
  // DC); inductor currents from their bias branch rows.
  auto across = [&](const Layout::Reactive& r, const std::vector<double>& v) {
    const double vp = r.row_pos >= 0 ? v[static_cast<std::size_t>(r.row_pos)] : 0.0;
    const double vn = r.row_neg >= 0 ? v[static_cast<std::size_t>(r.row_neg)] : 0.0;
    return vp - vn;
  };
  std::vector<ReactiveHistory> cap_hist(layout.capacitors.size());
  std::vector<ReactiveHistory> ind_hist(layout.inductors.size());
  for (std::size_t i = 0; i < layout.capacitors.size(); ++i) {
    cap_hist[i].v = cap_hist[i].v_prev = across(layout.capacitors[i], x);
  }
  for (std::size_t i = 0; i < layout.inductors.size(); ++i) {
    ind_hist[i].i = ind_hist[i].i_prev = x[static_cast<std::size_t>(layout.inductors[i].branch)];
    ind_hist[i].v = across(layout.inductors[i], x);
  }
  std::vector<DeviceState> dev_state(layout.devices.size());
  for (std::size_t i = 0; i < layout.devices.size(); ++i) {
    dev_state[i] = dc::proposed_state(*layout.devices[i], x, layout);
  }

  result.times.push_back(0.0);
  result.states.push_back(x);

  // --- Step grid ----------------------------------------------------------
  // Fixed mode snaps the whole window onto n equal steps of ~tstep (exactly
  // reaching tstop, one bucket). Adaptive mode walks the dyadic grid
  // h = h_ref / 2^k under LTE control.
  const double h_ref = options_.tstep > 0.0 ? options_.tstep : options_.tstop / 1000.0;
  long fixed_steps = 0;
  double fixed_h = 0.0;
  if (!options_.adaptive) {
    fixed_steps = std::lround(std::ceil(options_.tstop / h_ref - 1e-9));
    fixed_steps = std::max<long>(fixed_steps, 1);
    fixed_h = options_.tstop / static_cast<double>(fixed_steps);
  }

  // --- Per-step machinery -------------------------------------------------
  std::vector<PatternStamp> stamps;
  std::vector<double> rhs(dim, 0.0);
  std::vector<std::complex<double>> rhs_c(dim);
  std::vector<double> x_new(dim, 0.0);
  std::vector<DeviceState> state_new(dev_state);
  std::set<int> buckets_used;

  // Factor-or-replay against one bucket's plan: the first visit records the
  // bucket's plan fresh; every later visit replays it (escalation ladder on
  // refusal, mirroring the DC solver's policy and fault sites).
  auto factor_bucket = [&](int key, const sparse::CompressedMatrix& matrix,
                           double t_new) -> sparse::SparseLu& {
    // A bucket counts as used the moment its plan is touched — including a
    // trial step later rejected by LTE control — so the replay invariant
    // "fresh factorizations == buckets + bias + init" holds exactly. The
    // initialization micro-step is accounted separately (it is not a step
    // size the run ever revisits).
    if (key != kInitBucket) buckets_used.insert(key);
    BucketPlan& bucket = buckets_[key];
    const bool refused = !bucket.planned || !bucket.lu.has_plan() ||
                         support::fault("newton_step") || !bucket.lu.refactor(matrix);
    if (refused) {
      bool degraded = false;
      if (!dc::factor_with_ladder(bucket.lu, matrix, &degraded)) {
        std::ostringstream os;
        os << "transient: singular system at t = " << t_new
           << " (floating node or degenerate companion network?)";
        throw mna::SingularSystemError(os.str());
      }
      ++result.fresh_factorizations;
      if (degraded) {
        ++result.pivot_escalations;
        result.degraded = true;
      }
      bucket.planned = true;
    }
    return bucket.lu;
  };

  // Assemble the step system at time t_new with step h: base stamps, then
  // reactive companions, then device companions, then the .ic pin positions
  // — ALWAYS in this order so the merged pattern is pinned for the whole
  // run (the .ic pins carry a nonzero value only during the t = 0
  // initialization solve).
  bool pin_ic = false;
  auto assemble_step = [&](Method m, double t_new, double h,
                           const std::vector<DeviceState>& dstate)
      -> const sparse::CompressedMatrix& {
    stamps.assign(layout.base_stamps.begin(), layout.base_stamps.end());
    std::fill(rhs.begin(), rhs.end(), 0.0);
    const double scale = companion_scale(m);
    for (const Layout::Source& s : layout.sources) {
      const Element& e = circuit.elements()[static_cast<std::size_t>(s.element)];
      rhs[static_cast<std::size_t>(s.row)] += s.scale * e.transient_value(t_new);
    }
    for (std::size_t i = 0; i < layout.capacitors.size(); ++i) {
      const Layout::Reactive& r = layout.capacitors[i];
      const double geq = scale * r.value / h;
      dc::stamp_conductance(stamps, r.row_pos, r.row_neg, geq);
      const double hist = capacitor_hist(m, r.value, h, cap_hist[i]);
      if (r.row_pos >= 0) rhs[static_cast<std::size_t>(r.row_pos)] += hist;
      if (r.row_neg >= 0) rhs[static_cast<std::size_t>(r.row_neg)] -= hist;
    }
    for (std::size_t i = 0; i < layout.inductors.size(); ++i) {
      const Layout::Reactive& r = layout.inductors[i];
      const double req = scale * r.value / h;
      stamps.push_back({r.branch, r.branch, -req, 0.0});
      rhs[static_cast<std::size_t>(r.branch)] += inductor_rhs(m, r.value, h, ind_hist[i]);
    }
    for (std::size_t i = 0; i < layout.devices.size(); ++i) {
      dc::stamp_device(stamps, *layout.devices[i], dstate[i], options_.gmin, layout, &rhs);
    }
    for (const auto& [node, volts] : circuit.initial_conditions()) {
      const int row = layout.row_of_node(node);
      const double g_pin = pin_ic ? kIcPinConductance : 0.0;
      stamps.push_back({row, row, g_pin, 0.0});
      rhs[static_cast<std::size_t>(row)] += g_pin * volts;
    }
    if (!assembly_.rebind(layout.dim, stamps)) {
      // First assembly of this pattern (or a different circuit): every
      // recorded bucket plan belongs to the old structure.
      assembly_ = sparse::PatternedMatrix(layout.dim, stamps);
      buckets_.clear();
      has_pattern_ = false;
    }
    return assembly_.assemble(0.0);
  };

  // One step candidate t -> t_new = t + h against bucket `key`. Fills x_new /
  // state_new; returns false when the per-step Newton fails to converge
  // (never for a linear circuit — one replayed solve is exact).
  auto step_once = [&](Method m, double t_new, double h, int key) -> bool {
    if (layout.devices.empty()) {
      const sparse::CompressedMatrix& matrix = assemble_step(m, t_new, h, dev_state);
      sparse::SparseLu& lu = factor_bucket(key, matrix, t_new);
      has_pattern_ = true;
      for (std::size_t i = 0; i < dim; ++i) rhs_c[i] = rhs[i];
      lu.solve(rhs_c);
      for (std::size_t i = 0; i < dim; ++i) x_new[i] = rhs_c[i].real();
      return true;
    }

    // Newton-per-step, warm-started at the previous accepted point; the
    // convergence criterion mirrors the DC solver's (clamp + junction limit
    // + per-unknown step tolerance).
    x_new = x;
    state_new = dev_state;
    for (int iter = 0; iter < options_.max_newton_iterations; ++iter) {
      if (options_.cancel.cancelled()) throw support::CancelledError();
      ++result.newton_iterations;
      const sparse::CompressedMatrix& matrix = assemble_step(m, t_new, h, state_new);
      sparse::SparseLu& lu = factor_bucket(key, matrix, t_new);
      has_pattern_ = true;
      for (std::size_t i = 0; i < dim; ++i) rhs_c[i] = rhs[i];
      lu.solve(rhs_c);

      bool clamped = false;
      double max_rel = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        double delta = rhs_c[i].real() - x_new[i];
        if (i < node_rows && std::fabs(delta) > options_.bias.max_voltage_step) {
          delta = delta > 0 ? options_.bias.max_voltage_step : -options_.bias.max_voltage_step;
          clamped = true;
        }
        const double accepted = x_new[i] + delta;
        const double abstol = i < node_rows ? options_.newton_abstol_v : options_.newton_abstol_i;
        const double tol = abstol + options_.newton_reltol *
                                        std::max(std::fabs(accepted), std::fabs(x_new[i]));
        max_rel = std::max(max_rel, std::fabs(delta) / tol);
        x_new[i] = accepted;
      }
      bool limited = false;
      for (std::size_t i = 0; i < layout.devices.size(); ++i) {
        const DeviceState proposed = dc::proposed_state(*layout.devices[i], x_new, layout);
        state_new[i] = dc::limit_state(*layout.devices[i], proposed, state_new[i], &limited);
      }
      if (!clamped && !limited && max_rel <= 1.0 && iter > 0) return true;
    }
    return false;
  };

  // Roll the reactive histories onto the freshly solved x_new: the new
  // across-voltages, and the element currents recovered from the companion
  // relation i = geq * v - hist of the step that was just taken.
  auto roll_histories = [&](Method m, double h) {
    const double scale = companion_scale(m);
    for (std::size_t i = 0; i < layout.capacitors.size(); ++i) {
      const Layout::Reactive& r = layout.capacitors[i];
      const double v1 = across(r, x_new);
      const double geq = scale * r.value / h;
      const double i1 = geq * v1 - capacitor_hist(m, r.value, h, cap_hist[i]);
      cap_hist[i].v_prev = cap_hist[i].v;
      cap_hist[i].i_prev = cap_hist[i].i;
      cap_hist[i].v = v1;
      cap_hist[i].i = i1;
    }
    for (std::size_t i = 0; i < layout.inductors.size(); ++i) {
      const Layout::Reactive& r = layout.inductors[i];
      ind_hist[i].i_prev = ind_hist[i].i;
      ind_hist[i].v_prev = ind_hist[i].v;
      ind_hist[i].i = x_new[static_cast<std::size_t>(r.branch)];
      ind_hist[i].v = across(r, x_new);
    }
  };

  // Accept a step: roll the histories forward and record the point.
  double h_last = 0.0;
  auto accept_step = [&](Method m, double t_new, double h) {
    roll_histories(m, h);
    x = x_new;
    dev_state = state_new;
    h_last = h;
    result.times.push_back(t_new);
    result.states.push_back(x);
    ++result.steps;
  };

  // BDF2 needs two accepted points at the SAME step size; startup steps and
  // the first step after a bucket change fall back to BDF1 for one step.
  auto effective_method = [&](double h) {
    if (options_.method == Method::kBdf2 &&
        (result.steps < 1 || std::fabs(h - h_last) > 1e-12 * h)) {
      return Method::kBdf1;
    }
    return options_.method;
  };

  // Quadratic-extrapolation LTE estimate of the freshly computed x_new
  // against the last three accepted points; <= 1 accepts.
  auto lte_ratio = [&](double t_new) -> double {
    const std::size_t n = result.times.size();
    if (n < 3) return 0.0;  // not enough history: accept
    const double t0 = result.times[n - 1];
    const double t1 = result.times[n - 2];
    const double t2 = result.times[n - 3];
    const double c0 = ((t_new - t1) * (t_new - t2)) / ((t0 - t1) * (t0 - t2));
    const double c1 = ((t_new - t0) * (t_new - t2)) / ((t1 - t0) * (t1 - t2));
    const double c2 = ((t_new - t0) * (t_new - t1)) / ((t2 - t0) * (t2 - t1));
    const std::vector<double>& s0 = result.states[n - 1];
    const std::vector<double>& s1 = result.states[n - 2];
    const std::vector<double>& s2 = result.states[n - 3];
    double worst = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double predicted = c0 * s0[i] + c1 * s1[i] + c2 * s2[i];
      const double tol = options_.lte_abstol +
                         options_.lte_reltol * std::max(std::fabs(x_new[i]), std::fabs(predicted));
      worst = std::max(worst, std::fabs(x_new[i] - predicted) / tol);
    }
    return worst;
  };

  // --- Consistent initialization ------------------------------------------
  // The bias point plus .ic overrides fixes the differential state
  // (capacitor voltages, inductor currents) but leaves the algebraic
  // unknowns inconsistent: an .ic-forced node drags its neighbours, and the
  // initial capacitor CURRENTS are not part of the DC solution at all. One
  // near-zero-length BDF1 step pins the differential state (companion
  // conductances ~ 1e9x the working ones) and relaxes everything else; the
  // companion current recovery then reads off the true t = 0+ capacitor
  // currents the trapezoidal history needs.
  if (!layout.capacitors.empty() || !layout.inductors.empty() ||
      !circuit.initial_conditions().empty()) {
    const double h_first = options_.adaptive ? h_ref : fixed_h;
    const double h_init = h_first * 1e-12;
    pin_ic = true;
    const bool init_ok = step_once(Method::kBdf1, 0.0, h_init, kInitBucket);
    pin_ic = false;
    if (!init_ok) {
      throw NoConvergenceError(
          "transient: Newton failed to converge on the t = 0 initialization solve");
    }
    roll_histories(Method::kBdf1, h_init);
    // Startup duplicates: BDF2's two-point history starts uniform.
    for (ReactiveHistory& s : cap_hist) {
      s.v_prev = s.v;
      s.i_prev = s.i;
    }
    for (ReactiveHistory& s : ind_hist) {
      s.v_prev = s.v;
      s.i_prev = s.i;
    }
    x = x_new;
    dev_state = state_new;
    result.states[0] = x;
  }

  // --- Time loop ----------------------------------------------------------
  int attempts = 0;
  auto check_budget = [&] {
    if (options_.cancel.cancelled()) throw support::CancelledError();
    if (++attempts > options_.max_steps) {
      std::ostringstream os;
      os << "transient: step budget exhausted (" << options_.max_steps << " attempts, "
         << result.steps << " accepted, t = " << result.times.back() << " of "
         << options_.tstop << ")";
      throw NoConvergenceError(os.str());
    }
  };

  if (!options_.adaptive) {
    for (long n = 1; n <= fixed_steps; ++n) {
      check_budget();
      const double t_new = n == fixed_steps
                               ? options_.tstop
                               : options_.tstop * static_cast<double>(n) /
                                     static_cast<double>(fixed_steps);
      const Method m = effective_method(fixed_h);
      if (!step_once(m, t_new, fixed_h, 0)) {
        std::ostringstream os;
        os << "transient: Newton failed to converge at t = " << t_new
           << " with fixed step " << fixed_h << " (try a smaller tstep or adaptive control)";
        throw NoConvergenceError(os.str());
      }
      accept_step(m, t_new, fixed_h);
    }
  } else {
    int k = 0;  // current halving depth: h = h_ref / 2^k
    int calm_streak = 0;
    double t = 0.0;
    while (t < options_.tstop * (1.0 - 1e-12)) {
      check_budget();
      double h = std::ldexp(h_ref, -k);
      int key = k;
      if (t + h > options_.tstop) {
        h = options_.tstop - t;
        key = kFinalPartialBucket;
      }
      const double t_new = key == kFinalPartialBucket ? options_.tstop : t + h;
      const Method m = effective_method(h);

      const bool newton_ok = step_once(m, t_new, h, key);
      const double err = newton_ok ? lte_ratio(t_new) : 0.0;
      if (!newton_ok || err > 1.0) {
        if (newton_ok) ++result.lte_rejections;
        if (k >= options_.max_halvings) {
          if (!newton_ok) {
            std::ostringstream os;
            os << "transient: Newton failed to converge at t = " << t_new
               << " with the minimum step " << h;
            throw NoConvergenceError(os.str());
          }
          // LTE floor: the grid cannot be refined further — accept the best
          // available step rather than spinning (SPICE's trtol escape).
        } else {
          ++k;
          calm_streak = 0;
          continue;
        }
      }
      accept_step(m, t_new, h);
      t = t_new;
      // Sustained headroom grows the step back toward h_ref (the predictor
      // error scales ~h^3, so a generous margin is required before doubling).
      if (err < 0.05 && key == k) {
        if (++calm_streak >= 3 && k > 0) {
          --k;
          calm_streak = 0;
        }
      } else {
        calm_streak = 0;
      }
    }
  }

  result.step_size_buckets = static_cast<int>(buckets_used.size());
  result.seconds = timer.seconds();
  return result;
}

TransientResult solve_transient(const Circuit& circuit, const TransientOptions& options) {
  TransientSolver solver(options);
  return solver.solve(circuit);
}

}  // namespace symref::transient
