#include "mna/nodal.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

#include "mna/errors.h"
#include "netlist/canonical.h"
#include "numeric/stats.h"
#include "sparse/lu.h"
#include "support/thread_pool.h"

namespace symref::mna {

using netlist::Element;
using netlist::ElementKind;

NodalSystem::NodalSystem(const netlist::Circuit& circuit) : circuit_(circuit) {
  if (!netlist::is_canonical(circuit)) {
    throw std::invalid_argument(
        "NodalSystem: circuit is not canonical; run netlist::canonicalize first");
  }

  std::vector<bool> active(static_cast<std::size_t>(circuit.node_count()), false);
  for (const Element& e : circuit.elements()) {
    active[static_cast<std::size_t>(e.node_pos)] = true;
    active[static_cast<std::size_t>(e.node_neg)] = true;
    if (e.ctrl_pos >= 0) active[static_cast<std::size_t>(e.ctrl_pos)] = true;
    if (e.ctrl_neg >= 0) active[static_cast<std::size_t>(e.ctrl_neg)] = true;
  }
  node_to_row_.assign(static_cast<std::size_t>(circuit.node_count()), -1);
  int next = 0;
  for (int n = 1; n < circuit.node_count(); ++n) {
    if (active[static_cast<std::size_t>(n)]) node_to_row_[static_cast<std::size_t>(n)] = next++;
  }
  dim_ = next;

  // Merge stamps position-wise so matrix() is a flat scan.
  std::map<std::pair<int, int>, PatternStamp> merged;
  auto accumulate = [&](int r, int c, double g, double cap) {
    if (r < 0 || c < 0) return;
    PatternStamp& entry = merged[{r, c}];
    entry.row = r;
    entry.col = c;
    entry.conductance += g;
    entry.capacitance += cap;
  };
  auto row_of = [&](int node) { return node_to_row_[static_cast<std::size_t>(node)]; };

  for (const Element& e : circuit.elements()) {
    // Reject NaN/Inf element values up front: a non-finite stamp would slip
    // through the LU replay as a "successful" factorization of garbage.
    if (!std::isfinite(e.value)) {
      throw SpecError("NodalSystem: non-finite value on element '" + e.name + "'");
    }
    const int ra = row_of(e.node_pos);
    const int rb = row_of(e.node_neg);
    switch (e.kind) {
      case ElementKind::Conductance:
        accumulate(ra, ra, e.value, 0.0);
        accumulate(rb, rb, e.value, 0.0);
        accumulate(ra, rb, -e.value, 0.0);
        accumulate(rb, ra, -e.value, 0.0);
        break;
      case ElementKind::Capacitor:
        if (e.node_pos != e.node_neg) ++capacitor_count_;
        accumulate(ra, ra, 0.0, e.value);
        accumulate(rb, rb, 0.0, e.value);
        accumulate(ra, rb, 0.0, -e.value);
        accumulate(rb, ra, 0.0, -e.value);
        break;
      case ElementKind::Vccs: {
        const int rc = row_of(e.ctrl_pos);
        const int rd = row_of(e.ctrl_neg);
        accumulate(ra, rc, e.value, 0.0);
        accumulate(ra, rd, -e.value, 0.0);
        accumulate(rb, rc, -e.value, 0.0);
        accumulate(rb, rd, e.value, 0.0);
        break;
      }
      default:
        // unreachable: canonicality checked in the constructor
        break;
    }
  }
  entries_.reserve(merged.size());
  for (const auto& [key, entry] : merged) entries_.push_back(entry);
}

std::optional<int> NodalSystem::row_of_node(std::string_view name) const {
  const auto node = circuit_.find_node(name);
  if (!node) return std::nullopt;
  if (*node == 0) return std::nullopt;
  const int row = node_to_row_[static_cast<std::size_t>(*node)];
  return row < 0 ? std::nullopt : std::optional<int>(row);
}

sparse::TripletMatrix NodalSystem::matrix(std::complex<double> s_hat, double f_scale,
                                          double g_scale) const {
  sparse::TripletMatrix mat(dim_);
  for (const PatternStamp& entry : entries_) {
    const std::complex<double> value =
        g_scale * entry.conductance + s_hat * (f_scale * entry.capacitance);
    if (value != std::complex<double>()) mat.add(entry.row, entry.col, value);
  }
  return mat;
}

CofactorEvaluator::CofactorEvaluator(const NodalSystem& system, const TransferSpec& spec)
    : system_(&system), spec_(spec) {
  if (spec_.kind == TransferSpec::Kind::VoltageGain) {
    // Typical element magnitudes keep the drive admittance in the same
    // range as the rest of the (scaled) matrix. Chosen once: rebind() keeps
    // these values so every parameter sample sees the identical drive (any
    // value is exact — see the Sherman-Morrison note in the header).
    const auto conductances = system.circuit().conductance_values();
    const auto capacitances = system.circuit().capacitor_values();
    drive_conductance_ = numeric::geometric_mean(conductances);
    if (drive_conductance_ <= 0.0) drive_conductance_ = 1.0;
    drive_capacitance_ = numeric::geometric_mean(capacitances);
  }
  bind_system();
}

void CofactorEvaluator::bind_system() {
  auto resolve = [&](const std::string& name, const char* what) -> int {
    const auto node = system_->circuit().find_node(name);
    if (!node) {
      throw SpecError("CofactorEvaluator: unknown " + std::string(what) + " node '" + name +
                      "'");
    }
    if (*node == 0) return -1;
    const auto row = system_->row_of_node(name);
    if (!row) {
      throw SpecError("CofactorEvaluator: " + std::string(what) + " node '" + name +
                      "' is floating");
    }
    return *row;
  };
  in_pos_ = resolve(spec_.in_pos, "input+");
  in_neg_ = resolve(spec_.in_neg, "input-");
  out_pos_ = resolve(spec_.out_pos, "output+");
  out_neg_ = resolve(spec_.out_neg, "output-");
  if (in_pos_ == in_neg_) {
    throw SpecError("CofactorEvaluator: input pair is degenerate");
  }
  std::vector<PatternStamp> stamps = system_->stamps();
  if (spec_.kind == TransferSpec::Kind::VoltageGain) {
    // Drive admittance across the input pair (see header), merged into the
    // structural pattern once: it scales exactly like any other element, so
    // per-sample assembly needs no special-casing.
    if (in_pos_ >= 0) stamps.push_back({in_pos_, in_pos_, drive_conductance_, drive_capacitance_});
    if (in_neg_ >= 0) stamps.push_back({in_neg_, in_neg_, drive_conductance_, drive_capacitance_});
    if (in_pos_ >= 0 && in_neg_ >= 0) {
      stamps.push_back({in_pos_, in_neg_, -drive_conductance_, -drive_capacitance_});
      stamps.push_back({in_neg_, in_pos_, -drive_conductance_, -drive_capacitance_});
    }
  }
  // Same merged structure (the parameter-sweep fast path): rewrite the base
  // values in place and keep the cached pattern AND the LU plan. A changed
  // structure rebuilds the pattern; the next replay then refuses and the
  // caller's factorization fallback repivots.
  if (!assembly_.rebind(system_->dim(), stamps)) {
    assembly_ = PatternedMatrix(system_->dim(), std::move(stamps));
  }
}

void CofactorEvaluator::rebind(const NodalSystem& system) {
  system_ = &system;
  bind_system();
}

CofactorEvaluator::Sample CofactorEvaluator::evaluate(std::complex<double> s_hat,
                                                      double f_scale, double g_scale) const {
  // Pattern-cached assembly (values rewritten in place), then static-pivot
  // refactorization (same pattern across points); fall back to a full
  // Markowitz factorization when the reused pivots degrade. The fallback
  // persists its plan in lu_, so later points (and batches) replay it.
  const sparse::CompressedMatrix& compressed = assembly_.assemble(s_hat, f_scale, g_scale);
  if (!lu_.refactor(compressed)) {
    ++fresh_factor_count_;
    bool degraded = false;
    if (!factor_with_ladder(lu_, compressed, &degraded)) {
      return Sample{};  // singular at this point; caller will retry/adjust
    }
    if (degraded) ++pivot_escalation_count_;
    // The persisted plan inherits the escalation: replays of a degraded
    // plan are flagged too (plan_degraded_ clears when a default-threshold
    // factorization re-establishes a healthy plan).
    plan_degraded_ = degraded;
  }
  std::vector<std::complex<double>> rhs;
  Sample sample = finish_sample(lu_, rhs);
  sample.degraded = plan_degraded_;
  return sample;
}

CofactorEvaluator::Sample CofactorEvaluator::evaluate_pinned(std::complex<double> s_hat,
                                                             double f_scale,
                                                             double g_scale) const {
  const sparse::CompressedMatrix& compressed = assembly_.assemble(s_hat, f_scale, g_scale);
  std::vector<std::complex<double>> rhs;
  if (lu_.refactor(compressed)) {
    Sample sample = finish_sample(lu_, rhs);
    sample.degraded = plan_degraded_;
    return sample;
  }
  // Refused replay: fresh Markowitz factorization on a throwaway instance,
  // leaving the member plan pinned for the next point/sample.
  ++fresh_factor_count_;
  sparse::SparseLu fresh;
  bool degraded = false;
  if (!factor_with_ladder(fresh, compressed, &degraded)) return Sample{};
  if (degraded) ++pivot_escalation_count_;
  Sample sample = finish_sample(fresh, rhs);
  sample.degraded = degraded;
  return sample;
}

CofactorEvaluator::Sample CofactorEvaluator::evaluate_in(EvalContext& context,
                                                         std::complex<double> s_hat,
                                                         double f_scale, double g_scale) const {
  const sparse::CompressedMatrix& compressed =
      context.assembly.assemble(s_hat, f_scale, g_scale);
  if (context.lu.refactor(compressed)) {
    // The context's lu shares the member's symbolic plan, so the member's
    // degraded flag applies to this replay too (it is stable for the
    // duration of a batch — only evaluate() on the caller thread writes it).
    Sample sample = finish_sample(context.lu, context.rhs);
    sample.degraded = plan_degraded_;
    return sample;
  }
  // Degraded replay: fresh Markowitz factorization for this point only. The
  // throwaway instance keeps the context's baseline plan untouched, so the
  // next point in the chunk sees exactly what it would see in any other
  // evaluation order. (The escalation counter is NOT bumped here — lanes
  // share this const instance — but the sample still carries the flag.)
  sparse::SparseLu fresh;
  bool degraded = false;
  if (!factor_with_ladder(fresh, compressed, &degraded)) return Sample{};
  Sample sample = finish_sample(fresh, context.rhs);
  sample.degraded = degraded;
  return sample;
}

bool CofactorEvaluator::factor_with_ladder(sparse::SparseLu& lu,
                                           const sparse::CompressedMatrix& matrix,
                                           bool* degraded) {
  *degraded = false;
  if (lu.factor(matrix)) return true;
  // Escalation: each level trades pivot quality for factorability. The
  // levels are fixed (not adaptive), so a given matrix always lands on the
  // same level — escalated results stay deterministic.
  static constexpr double kEscalationThresholds[] = {1e-6, 0.0};
  for (const double threshold : kEscalationThresholds) {
    sparse::SparseLuOptions relaxed;
    relaxed.pivot_threshold = threshold;
    relaxed.singularity_tolerance = 0.0;
    if (lu.factor(matrix, relaxed)) {
      *degraded = true;
      return true;
    }
  }
  return false;  // no nonzero pivot at any threshold: truly singular
}

bool CofactorEvaluator::plan_replayable() const {
  const auto plan = lu_.plan();
  const sparse::CompressedMatrix& matrix = assembly_.matrix();
  return plan != nullptr && matrix.dim == plan->dim &&
         matrix.row_start == plan->pattern_row_start && matrix.cols == plan->pattern_cols;
}

void CofactorEvaluator::evaluate_group_batched(BatchContext& context,
                                               const std::complex<double>* s_hats, int count,
                                               double f_scale, double g_scale,
                                               bool count_fallbacks, Sample* out) const {
  const int width = context.replay.width();
  const std::size_t stride = static_cast<std::size_t>(width);
  context.replay.replay(count, context.assembly.lane_assembly(s_hats, f_scale, g_scale));

  // Batched cofactor solve: the unit injection at the input pair is the
  // same for every lane.
  const int n = system_->dim();
  context.soa_rhs.assign(static_cast<std::size_t>(n) * stride, std::complex<double>());
  for (int l = 0; l < count; ++l) {
    if (in_pos_ >= 0) {
      context.soa_rhs[static_cast<std::size_t>(in_pos_) * stride + static_cast<std::size_t>(l)] +=
          1.0;
    }
    if (in_neg_ >= 0) {
      context.soa_rhs[static_cast<std::size_t>(in_neg_) * stride + static_cast<std::size_t>(l)] -=
          1.0;
    }
  }
  context.replay.solve(context.soa_rhs, count);

  // Per-lane solution reductions in lane-inner passes over the SoA
  // solution: max |V_r|^2 (rooted once per lane — bitwise equal to the
  // scalar max-of-replay_abs scan since sqrt is monotone) and the smallest
  // pivot magnitude. Port voltages are direct SoA lookups; nothing is
  // gathered into a per-lane scratch vector.
  context.max_norm.assign(stride, 0.0);
  for (int r = 0; r < n; ++r) {
    const std::complex<double>* row = context.soa_rhs.data() + static_cast<std::size_t>(r) * stride;
    for (int l = 0; l < count; ++l) {
      const double re = row[static_cast<std::size_t>(l)].real();
      const double im = row[static_cast<std::size_t>(l)].imag();
      context.max_norm[static_cast<std::size_t>(l)] =
          std::max(context.max_norm[static_cast<std::size_t>(l)], re * re + im * im);
    }
  }
  context.min_pivots.resize(stride);
  context.replay.min_abs_pivots(context.min_pivots.data(), count);
  context.dets.resize(stride);
  context.replay.determinants(context.dets.data(), count);
  auto lane_voltage = [&](int row, int lane) -> std::complex<double> {
    return row < 0 ? std::complex<double>(0.0, 0.0)
                   : context.soa_rhs[static_cast<std::size_t>(row) * stride +
                                     static_cast<std::size_t>(lane)];
  };

  for (int l = 0; l < count; ++l) {
    if (context.replay.lane_ok(l)) {
      const std::complex<double> v_out = lane_voltage(out_pos_, l) - lane_voltage(out_neg_, l);
      const std::complex<double> v_in = lane_voltage(in_pos_, l) - lane_voltage(in_neg_, l);
      out[l] = sample_from_ports(context.dets[static_cast<std::size_t>(l)],
                                 context.min_pivots[static_cast<std::size_t>(l)],
                                 context.replay.max_abs_entry(l), v_out, v_in,
                                 std::sqrt(context.max_norm[static_cast<std::size_t>(l)]));
      out[l].degraded = plan_degraded_;
      continue;
    }
    // Refused lane: the batched mirror of the scalar replay-refusal branch —
    // a throwaway fresh factorization of this point alone, leaving the
    // baseline plan (and the other lanes) untouched.
    const sparse::CompressedMatrix& compressed =
        context.assembly.assemble(s_hats[l], f_scale, g_scale);
    if (count_fallbacks) ++fresh_factor_count_;
    sparse::SparseLu fresh;
    bool degraded = false;
    if (!factor_with_ladder(fresh, compressed, &degraded)) {
      out[l] = Sample{};
      continue;
    }
    if (count_fallbacks && degraded) ++pivot_escalation_count_;
    out[l] = finish_sample(fresh, context.rhs);
    out[l].degraded = degraded;
  }
}

std::vector<CofactorEvaluator::Sample> CofactorEvaluator::evaluate_batch(
    const std::vector<std::complex<double>>& s_hats, double f_scale, double g_scale,
    support::ThreadPool* pool, sparse::ReplayKernel kernel, int batch_width) const {
  std::vector<Sample> samples(s_hats.size());
  if (s_hats.empty()) return samples;

  // Point 0 on the caller, with the member state: identical plan evolution
  // to a serial evaluate() loop at iteration granularity (a degraded or
  // missing plan is refreshed here, once, for the whole batch).
  samples[0] = evaluate(s_hats[0], f_scale, g_scale);
  if (s_hats.size() == 1) return samples;

  const int lanes = pool != nullptr ? pool->size() : 1;

  // The batched kernel needs a structurally replayable baseline plan; when
  // point 0 left none (singular, or the pattern changed), the whole batch
  // degrades to the scalar path below — which is bit-identical anyway.
  if (kernel == sparse::ReplayKernel::kBatched && batch_width >= 1 && plan_replayable()) {
    const auto plan = lu_.plan();
    const int width = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(batch_width), s_hats.size() - 1));
    std::vector<std::unique_ptr<BatchContext>> contexts(static_cast<std::size_t>(lanes));
    auto body = [&](std::size_t begin, std::size_t end, int lane) {
      std::unique_ptr<BatchContext>& slot = contexts[static_cast<std::size_t>(lane)];
      if (!slot) {
        slot = std::make_unique<BatchContext>();
        slot->assembly = assembly_;
        slot->replay.bind(plan, width);
      }
      // SoA groups of at most `width` points. Each lane's per-point
      // operation sequence is independent of the grouping, so the chunk
      // boundaries (and hence the thread count) never change the results.
      for (std::size_t at = begin; at < end; at += static_cast<std::size_t>(width)) {
        const int count = static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(width), end - at));
        evaluate_group_batched(*slot, s_hats.data() + at + 1, count, f_scale, g_scale,
                               /*count_fallbacks=*/false, samples.data() + at + 1);
      }
    };
    if (pool != nullptr) {
      pool->parallel_for(s_hats.size() - 1, body);
    } else {
      body(0, s_hats.size() - 1, 0);
    }
    batched_lane_count_ += s_hats.size() - 1;
    return samples;
  }

  // One context slot per pool lane, cloned lazily on the lane's first chunk
  // (a slot is only ever touched by its own lane): a wide pool driving a
  // short batch does not pay for clones that never receive work. Each clone
  // copies the value arrays and the numeric LU workspace; the symbolic plan
  // inside lu_ is shared read-only across all lanes.
  std::vector<std::unique_ptr<EvalContext>> contexts(static_cast<std::size_t>(lanes));

  // Per-point contract even when point 0 was singular (no baseline plan):
  // evaluate_in then skips the replay and runs a fresh throwaway
  // factorization per point, which depends only on the point's values —
  // still deterministic at any thread count, and healthy points succeed.
  auto body = [&](std::size_t begin, std::size_t end, int lane) {
    std::unique_ptr<EvalContext>& slot = contexts[static_cast<std::size_t>(lane)];
    if (!slot) slot = std::make_unique<EvalContext>(EvalContext{assembly_, lu_, {}});
    for (std::size_t i = begin; i < end; ++i) {
      samples[i + 1] = evaluate_in(*slot, s_hats[i + 1], f_scale, g_scale);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(s_hats.size() - 1, body);
  } else {
    body(0, s_hats.size() - 1, 0);
  }
  return samples;
}

std::vector<CofactorEvaluator::Sample> CofactorEvaluator::evaluate_pinned_batch(
    const std::vector<std::complex<double>>& s_hats, double f_scale, double g_scale,
    sparse::ReplayKernel kernel, int batch_width) const {
  std::vector<Sample> samples(s_hats.size());
  if (s_hats.empty()) return samples;

  // The scalar loop doubles as the fallback when the pinned plan is missing
  // or structurally stale: evaluate_pinned's refusal branch then reproduces
  // the exact counter increments the batched path would have produced.
  if (kernel != sparse::ReplayKernel::kBatched || batch_width < 1 || !plan_replayable()) {
    for (std::size_t i = 0; i < s_hats.size(); ++i) {
      samples[i] = evaluate_pinned(s_hats[i], f_scale, g_scale);
    }
    return samples;
  }

  BatchContext context;
  context.assembly = assembly_;
  const int width = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(batch_width), s_hats.size()));
  context.replay.bind(lu_.plan(), width);
  for (std::size_t at = 0; at < s_hats.size(); at += static_cast<std::size_t>(width)) {
    const int count = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(width), s_hats.size() - at));
    evaluate_group_batched(context, s_hats.data() + at, count, f_scale, g_scale,
                           /*count_fallbacks=*/true, samples.data() + at);
  }
  batched_lane_count_ += s_hats.size();
  return samples;
}

CofactorEvaluator::Sample CofactorEvaluator::finish_sample(
    const sparse::SparseLu& lu, std::vector<std::complex<double>>& rhs) const {
  rhs.assign(static_cast<std::size_t>(system_->dim()), std::complex<double>());
  if (in_pos_ >= 0) rhs[static_cast<std::size_t>(in_pos_)] += 1.0;
  if (in_neg_ >= 0) rhs[static_cast<std::size_t>(in_neg_)] -= 1.0;
  lu.solve(rhs);
  return sample_from_solution(lu.determinant(), lu.min_abs_pivot(), lu.max_abs_entry(), rhs);
}

CofactorEvaluator::Sample CofactorEvaluator::sample_from_solution(
    const numeric::ScaledComplex& det, double min_pivot, double max_entry,
    const std::vector<std::complex<double>>& rhs) const {
  auto voltage = [&](int row) -> std::complex<double> {
    return row < 0 ? std::complex<double>(0.0, 0.0) : rhs[static_cast<std::size_t>(row)];
  };
  const std::complex<double> v_out = voltage(out_pos_) - voltage(out_neg_);
  const std::complex<double> v_in = voltage(in_pos_) - voltage(in_neg_);

  // Scanning squared magnitudes and taking one sqrt at the end is bitwise
  // equal to max over sparse::replay_abs (sqrt is monotone), and keeps the
  // per-sample cost off the replay kernels' critical path.
  double max_norm_v = 0.0;
  for (const std::complex<double>& value : rhs) {
    const double norm = value.real() * value.real() + value.imag() * value.imag();
    max_norm_v = std::max(max_norm_v, norm);
  }
  return sample_from_ports(det, min_pivot, max_entry, v_out, v_in, std::sqrt(max_norm_v));
}

CofactorEvaluator::Sample CofactorEvaluator::sample_from_ports(
    const numeric::ScaledComplex& det, double min_pivot, double max_entry,
    std::complex<double> v_out, std::complex<double> v_in, double max_abs_v) const {
  Sample sample;
  constexpr double kMachineEpsilon = 2.220446049250313e-16;
  const double det_error =
      std::max(min_pivot > 0.0 ? kMachineEpsilon * max_entry / min_pivot : kMachineEpsilon,
               kMachineEpsilon);

  sample.numerator = numeric::ScaledComplex(v_out) * det;
  sample.denominator = spec_.kind == TransferSpec::Kind::VoltageGain
                           ? numeric::ScaledComplex(v_in) * det
                           : det;

  // Solve error of a port voltage relative to the solution's largest entry:
  // the triangular solves carry absolute round-off ~ eps * max|V|, so a port
  // voltage far below that level has a large RELATIVE error even when the
  // determinant is accurate.
  auto port_error = [&](const std::complex<double>& port) {
    const double magnitude = sparse::replay_abs(port);
    if (magnitude == 0.0 || max_abs_v == 0.0) return det_error;
    return det_error + kMachineEpsilon * max_abs_v / magnitude;
  };
  sample.numerator_error = port_error(v_out);
  sample.denominator_error = spec_.kind == TransferSpec::Kind::VoltageGain
                                 ? port_error(v_in)
                                 : det_error;
  sample.ok = true;
  return sample;
}

}  // namespace symref::mna
