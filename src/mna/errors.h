// Typed MNA-layer exceptions, so the api boundary can map failure classes to
// distinct Status codes instead of string-matching exception text.
#pragma once

#include <stdexcept>
#include <string>

namespace symref::mna {

/// A TransferSpec references unknown, floating, or degenerate nodes.
class SpecError : public std::invalid_argument {
 public:
  explicit SpecError(const std::string& message) : std::invalid_argument(message) {}
};

/// The assembled system admitted no acceptable pivot (structurally or
/// numerically singular at the requested point).
class SingularSystemError : public std::runtime_error {
 public:
  explicit SingularSystemError(const std::string& message) : std::runtime_error(message) {}
};

}  // namespace symref::mna
