#include "mna/ac.h"

#include <cmath>
#include <stdexcept>

namespace symref::mna {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

bool same_spec(const TransferSpec& a, const TransferSpec& b) {
  return a.kind == b.kind && a.in_pos == b.in_pos && a.in_neg == b.in_neg &&
         a.out_pos == b.out_pos && a.out_neg == b.out_neg;
}

}  // namespace

double magnitude_db(std::complex<double> value) noexcept {
  const double magnitude = std::abs(value);
  if (magnitude <= 0.0) return -400.0;
  return std::max(-400.0, 20.0 * std::log10(magnitude));
}

double phase_deg(std::complex<double> value) noexcept {
  return std::arg(value) * 180.0 / M_PI;
}

AcSimulator::AcSimulator(const netlist::Circuit& circuit) : circuit_(circuit) {}

AcSimulator::SpecCache& AcSimulator::prepare(const TransferSpec& spec) const {
  if (cache_ && same_spec(cache_->spec, spec)) return *cache_;
  cache_.reset();

  // Work on a copy with the drive attached. Existing independent V sources
  // stay as 0 V constraints (their magnitudes live only in the excitation,
  // which we rebuild per point), existing I sources are simply not excited —
  // i.e. standard superposition with only the drive active.
  auto cache = std::make_unique<SpecCache>();
  cache->spec = spec;
  cache->work = circuit_;
  const bool voltage_drive = spec.kind == TransferSpec::Kind::VoltageGain;
  if (voltage_drive) {
    cache->work.add_vsource("__drive", spec.in_pos, spec.in_neg, 1.0);
  } else {
    cache->work.add_isource("__drive", spec.in_pos, spec.in_neg, 1.0);
  }
  cache->assembler = std::make_unique<MnaAssembler>(cache->work);
  if (voltage_drive) {
    cache->drive_branch = *cache->assembler->branch_index("__drive");
  } else {
    // Transimpedance convention: 1 A injected INTO in+ and drawn from in-
    // (matches CofactorEvaluator, so signs agree across both paths).
    cache->in_pos_row = cache->assembler->node_index(spec.in_pos).value_or(-1);
    cache->in_neg_row = cache->assembler->node_index(spec.in_neg).value_or(-1);
  }
  cache_ = std::move(cache);
  return *cache_;
}

std::complex<double> AcSimulator::transfer_s(const TransferSpec& spec,
                                             std::complex<double> s) const {
  SpecCache& cache = prepare(spec);

  std::vector<std::complex<double>> rhs(static_cast<std::size_t>(cache.assembler->dim()));
  if (cache.drive_branch >= 0) {
    rhs[static_cast<std::size_t>(cache.drive_branch)] = 1.0;
  } else {
    if (cache.in_pos_row >= 0) rhs[static_cast<std::size_t>(cache.in_pos_row)] += 1.0;
    if (cache.in_neg_row >= 0) rhs[static_cast<std::size_t>(cache.in_neg_row)] -= 1.0;
  }

  // Pattern-cached assembly, then the plan replay; a fresh Markowitz
  // factorization only on the first point of a sweep (or degraded pivots).
  const sparse::CompressedMatrix& matrix = cache.assembler->assemble(s);
  if (!cache.lu.refactor(matrix) && !cache.lu.factor(matrix)) {
    throw std::runtime_error("AcSimulator: singular MNA system");
  }
  cache.lu.solve(rhs);

  auto voltage = [&](const std::string& name) -> std::complex<double> {
    if (cache.work.find_node(name) == std::nullopt) {
      throw std::runtime_error("AcSimulator: unknown node '" + name + "'");
    }
    const auto row = cache.assembler->node_index(name);
    return row ? rhs[static_cast<std::size_t>(*row)] : std::complex<double>(0.0, 0.0);
  };
  return voltage(spec.out_pos) - voltage(spec.out_neg);
}

std::complex<double> AcSimulator::transfer(const TransferSpec& spec, double frequency_hz) const {
  return transfer_s(spec, std::complex<double>(0.0, kTwoPi * frequency_hz));
}

std::vector<double> log_frequency_grid(double f_start_hz, double f_stop_hz,
                                       int points_per_decade) {
  if (f_start_hz <= 0.0 || f_stop_hz <= f_start_hz || points_per_decade < 1) {
    throw std::invalid_argument("log_frequency_grid: bad range");
  }
  const double decades = std::log10(f_stop_hz / f_start_hz);
  const int count = std::max(2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  std::vector<double> grid(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    grid[static_cast<std::size_t>(i)] =
        f_start_hz * std::pow(10.0, decades * i / (count - 1));
  }
  return grid;
}

std::vector<BodePoint> AcSimulator::bode(const TransferSpec& spec, double f_start_hz,
                                         double f_stop_hz, int points_per_decade) const {
  const std::vector<double> grid = log_frequency_grid(f_start_hz, f_stop_hz, points_per_decade);
  std::vector<BodePoint> points;
  points.reserve(grid.size());
  double previous_phase = 0.0;
  bool first = true;
  for (const double f : grid) {
    BodePoint p;
    p.frequency_hz = f;
    p.value = transfer(spec, f);
    p.magnitude_db = magnitude_db(p.value);
    double phase = phase_deg(p.value);
    if (!first) {
      while (phase - previous_phase > 180.0) phase -= 360.0;
      while (phase - previous_phase < -180.0) phase += 360.0;
    }
    p.phase_deg = phase;
    previous_phase = phase;
    first = false;
    points.push_back(p);
  }
  return points;
}

}  // namespace symref::mna
