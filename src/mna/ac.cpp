#include "mna/ac.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mna/errors.h"
#include "support/thread_pool.h"

namespace symref::mna {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

bool same_spec(const TransferSpec& a, const TransferSpec& b) {
  return a.kind == b.kind && a.in_pos == b.in_pos && a.in_neg == b.in_neg &&
         a.out_pos == b.out_pos && a.out_neg == b.out_neg;
}

}  // namespace

double magnitude_db(std::complex<double> value) noexcept {
  const double magnitude = std::abs(value);
  if (magnitude <= 0.0) return -400.0;
  return std::max(-400.0, 20.0 * std::log10(magnitude));
}

double phase_deg(std::complex<double> value) noexcept {
  return std::arg(value) * 180.0 / M_PI;
}

AcSimulator::AcSimulator(const netlist::Circuit& circuit) : circuit_(circuit) {}

AcSimulator::SpecCache& AcSimulator::prepare(const TransferSpec& spec) const {
  if (cache_ && same_spec(cache_->spec, spec)) return *cache_;
  cache_.reset();

  // Work on a copy with the drive attached. Existing independent V sources
  // stay as 0 V constraints (their magnitudes live only in the excitation,
  // which we rebuild per point), existing I sources are simply not excited —
  // i.e. standard superposition with only the drive active.
  auto cache = std::make_unique<SpecCache>();
  cache->spec = spec;
  cache->work = circuit_;
  const bool voltage_drive = spec.kind == TransferSpec::Kind::VoltageGain;
  if (voltage_drive) {
    cache->work.add_vsource("__drive", spec.in_pos, spec.in_neg, 1.0);
  } else {
    cache->work.add_isource("__drive", spec.in_pos, spec.in_neg, 1.0);
  }
  cache->assembler = std::make_unique<MnaAssembler>(cache->work);
  if (voltage_drive) {
    cache->drive_branch = *cache->assembler->branch_index("__drive");
  } else {
    // Transimpedance convention: 1 A injected INTO in+ and drawn from in-
    // (matches CofactorEvaluator, so signs agree across both paths).
    cache->in_pos_row = cache->assembler->node_index(spec.in_pos).value_or(-1);
    cache->in_neg_row = cache->assembler->node_index(spec.in_neg).value_or(-1);
  }
  // Resolve the output pair once; a row of -1 reads as 0 V (ground or a node
  // no element touches).
  auto out_row = [&](const std::string& name) -> int {
    if (cache->work.find_node(name) == std::nullopt) {
      throw SpecError("AcSimulator: unknown node '" + name + "'");
    }
    return cache->assembler->node_index(name).value_or(-1);
  };
  cache->out_pos_row = out_row(spec.out_pos);
  cache->out_neg_row = out_row(spec.out_neg);
  cache_ = std::move(cache);
  return *cache_;
}

std::complex<double> AcSimulator::solve_point(const SpecCache& cache, MnaAssembler& assembler,
                                              sparse::SparseLu& lu,
                                              std::vector<std::complex<double>>& rhs,
                                              bool persist_plan, std::complex<double> s) const {
  rhs.assign(static_cast<std::size_t>(assembler.dim()), std::complex<double>());
  if (cache.drive_branch >= 0) {
    rhs[static_cast<std::size_t>(cache.drive_branch)] = 1.0;
  } else {
    if (cache.in_pos_row >= 0) rhs[static_cast<std::size_t>(cache.in_pos_row)] += 1.0;
    if (cache.in_neg_row >= 0) rhs[static_cast<std::size_t>(cache.in_neg_row)] -= 1.0;
  }

  // Pattern-cached assembly, then the plan replay; a fresh Markowitz
  // factorization only when there is no plan yet or the reused pivots
  // degraded at this point.
  const sparse::CompressedMatrix& matrix = assembler.assemble(s);
  const sparse::SparseLu* solver = &lu;
  sparse::SparseLu throwaway;
  if (!lu.refactor(matrix)) {
    sparse::SparseLu& fresh = persist_plan ? lu : throwaway;
    if (!fresh.factor(matrix)) {
      throw SingularSystemError("AcSimulator: singular MNA system");
    }
    solver = &fresh;
  }
  solver->solve(rhs);

  auto voltage = [&](int row) -> std::complex<double> {
    return row < 0 ? std::complex<double>(0.0, 0.0) : rhs[static_cast<std::size_t>(row)];
  };
  return voltage(cache.out_pos_row) - voltage(cache.out_neg_row);
}

std::complex<double> AcSimulator::transfer_s(const TransferSpec& spec,
                                             std::complex<double> s) const {
  SpecCache& cache = prepare(spec);
  std::vector<std::complex<double>> rhs;
  return solve_point(cache, *cache.assembler, cache.lu, rhs, /*persist_plan=*/true, s);
}

std::complex<double> AcSimulator::transfer(const TransferSpec& spec, double frequency_hz) const {
  return transfer_s(spec, std::complex<double>(0.0, kTwoPi * frequency_hz));
}

std::vector<double> log_frequency_grid(double f_start_hz, double f_stop_hz,
                                       int points_per_decade) {
  if (f_start_hz <= 0.0 || f_stop_hz <= f_start_hz || points_per_decade < 1) {
    throw std::invalid_argument("log_frequency_grid: bad range");
  }
  const double decades = std::log10(f_stop_hz / f_start_hz);
  const int count = std::max(2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  std::vector<double> grid(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    grid[static_cast<std::size_t>(i)] =
        f_start_hz * std::pow(10.0, decades * i / (count - 1));
  }
  return grid;
}

std::vector<BodePoint> AcSimulator::bode(const TransferSpec& spec, double f_start_hz,
                                         double f_stop_hz, int points_per_decade,
                                         int threads, support::CancellationToken cancel,
                                         sparse::ReplayKernel kernel) const {
  const std::vector<double> grid = log_frequency_grid(f_start_hz, f_stop_hz, points_per_decade);
  SpecCache& cache = prepare(spec);
  auto s_of = [](double f) { return std::complex<double>(0.0, kTwoPi * f); };
  if (cancel.cancelled()) throw support::CancelledError();

  // The first point runs on the caller with the cache's own state, creating
  // (or refreshing) the factorization plan every other point replays.
  std::vector<std::complex<double>> values(grid.size());
  std::vector<std::complex<double>> rhs;
  values[0] = solve_point(cache, *cache.assembler, cache.lu, rhs, /*persist_plan=*/true,
                          s_of(grid[0]));

  if (grid.size() > 1) {
    // Per-lane clones: pattern-cached assembler values + SparseLu numeric
    // workspace, sharing the immutable symbolic plan. Non-persisting
    // fallback keeps every point a pure function of (plan, frequency), so
    // the sweep is bit-identical at any thread count — the single-lane path
    // below is the same code with one clone.
    struct Lane {
      MnaAssembler assembler;
      sparse::SparseLu lu;
      std::vector<std::complex<double>> rhs;
      // Batched-kernel state (unused under kScalar): the SoA replay bound
      // to the cache's plan, its solve buffer and the group's s values.
      sparse::BatchedReplay replay;
      std::vector<std::complex<double>> soa_rhs;
      std::vector<std::complex<double>> s_values;
    };
    // <= 0 picks the hardware thread count (same convention as
    // AdaptiveOptions::threads and ThreadPool); never more lanes than
    // remaining points.
    const int requested = threads <= 0 ? support::ThreadPool::hardware_threads() : threads;
    const int lane_count =
        static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(requested),
                                               grid.size() - 1));
    std::vector<Lane> lanes;
    lanes.reserve(static_cast<std::size_t>(lane_count));
    for (int i = 0; i < lane_count; ++i) {
      lanes.push_back(Lane{*cache.assembler, cache.lu, {}, {}, {}, {}});
    }
    auto body = [&](std::size_t begin, std::size_t end, int lane) {
      Lane& state = lanes[static_cast<std::size_t>(lane)];
      for (std::size_t i = begin; i < end; ++i) {
        // Cooperative checkpoint: the pool rethrows the first lane's
        // CancelledError and abandons the remaining chunks.
        if (cancel.cancelled()) throw support::CancelledError();
        values[i + 1] = solve_point(cache, state.assembler, state.lu, state.rhs,
                                    /*persist_plan=*/false, s_of(grid[i + 1]));
      }
    };

    // Batched kernel: SoA groups against the first point's plan. Requires a
    // structurally replayable plan — otherwise (first point singular or
    // re-factored onto a different pattern, which cannot happen for a fixed
    // assembler but costs nothing to check) the sweep falls back to the
    // scalar body, which is bit-identical anyway.
    const auto plan = cache.lu.plan();
    const sparse::CompressedMatrix& pattern = cache.assembler->pattern();
    const bool batched = kernel == sparse::ReplayKernel::kBatched && plan != nullptr &&
                         pattern.dim == plan->dim &&
                         pattern.row_start == plan->pattern_row_start &&
                         pattern.cols == plan->pattern_cols;
    const int width = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(sparse::kDefaultBatchWidth), grid.size() - 1));
    auto batched_body = [&](std::size_t begin, std::size_t end, int lane) {
      Lane& state = lanes[static_cast<std::size_t>(lane)];
      state.replay.bind(plan, width);
      const std::size_t stride = static_cast<std::size_t>(width);
      const int dim = state.assembler.dim();
      state.s_values.resize(stride);
      for (std::size_t at = begin; at < end; at += stride) {
        if (cancel.cancelled()) throw support::CancelledError();
        const int count =
            static_cast<int>(std::min<std::size_t>(stride, end - at));
        for (int t = 0; t < count; ++t) {
          state.s_values[static_cast<std::size_t>(t)] = s_of(grid[at + 1 + static_cast<std::size_t>(t)]);
        }
        state.replay.replay(count, state.assembler.lane_assembly(state.s_values.data()));

        // Batched solves: the drive injection is the same in every lane.
        state.soa_rhs.assign(static_cast<std::size_t>(dim) * stride, std::complex<double>());
        for (int l = 0; l < count; ++l) {
          if (cache.drive_branch >= 0) {
            state.soa_rhs[static_cast<std::size_t>(cache.drive_branch) * stride +
                          static_cast<std::size_t>(l)] = 1.0;
          } else {
            if (cache.in_pos_row >= 0) {
              state.soa_rhs[static_cast<std::size_t>(cache.in_pos_row) * stride +
                            static_cast<std::size_t>(l)] += 1.0;
            }
            if (cache.in_neg_row >= 0) {
              state.soa_rhs[static_cast<std::size_t>(cache.in_neg_row) * stride +
                            static_cast<std::size_t>(l)] -= 1.0;
            }
          }
        }
        state.replay.solve(state.soa_rhs, count);

        for (int l = 0; l < count; ++l) {
          if (state.replay.lane_ok(l)) {
            auto voltage = [&](int row) -> std::complex<double> {
              return row < 0 ? std::complex<double>(0.0, 0.0)
                             : state.soa_rhs[static_cast<std::size_t>(row) * stride +
                                             static_cast<std::size_t>(l)];
            };
            values[at + 1 + static_cast<std::size_t>(l)] =
                voltage(cache.out_pos_row) - voltage(cache.out_neg_row);
            continue;
          }
          // Refused lane: the exact scalar refusal branch of solve_point
          // with persist_plan == false — a throwaway fresh factorization of
          // this point alone (no second replay attempt: the lane's refusal
          // IS the refactor refusal).
          const sparse::CompressedMatrix& matrix =
              state.assembler.assemble(state.s_values[static_cast<std::size_t>(l)]);
          state.rhs.assign(static_cast<std::size_t>(dim), std::complex<double>());
          if (cache.drive_branch >= 0) {
            state.rhs[static_cast<std::size_t>(cache.drive_branch)] = 1.0;
          } else {
            if (cache.in_pos_row >= 0) state.rhs[static_cast<std::size_t>(cache.in_pos_row)] += 1.0;
            if (cache.in_neg_row >= 0) state.rhs[static_cast<std::size_t>(cache.in_neg_row)] -= 1.0;
          }
          sparse::SparseLu throwaway;
          if (!throwaway.factor(matrix)) {
            throw SingularSystemError("AcSimulator: singular MNA system");
          }
          throwaway.solve(state.rhs);
          auto voltage = [&](int row) -> std::complex<double> {
            return row < 0 ? std::complex<double>(0.0, 0.0)
                           : state.rhs[static_cast<std::size_t>(row)];
          };
          values[at + 1 + static_cast<std::size_t>(l)] =
              voltage(cache.out_pos_row) - voltage(cache.out_neg_row);
        }
      }
    };

    auto run = batched ? std::function<void(std::size_t, std::size_t, int)>(batched_body)
                       : std::function<void(std::size_t, std::size_t, int)>(body);
    if (lane_count == 1) {
      run(0, grid.size() - 1, 0);
    } else {
      support::ThreadPool pool(lane_count);
      pool.parallel_for(grid.size() - 1, run);
    }
  }

  // Ordered reduction on the caller: dB conversion and phase unwrapping walk
  // the values in frequency order regardless of which lane produced them.
  std::vector<BodePoint> points;
  points.reserve(grid.size());
  double previous_phase = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    BodePoint p;
    p.frequency_hz = grid[i];
    p.value = values[i];
    p.magnitude_db = magnitude_db(p.value);
    double phase = phase_deg(p.value);
    if (!first) {
      while (phase - previous_phase > 180.0) phase -= 360.0;
      while (phase - previous_phase < -180.0) phase += 360.0;
    }
    p.phase_deg = phase;
    previous_phase = phase;
    first = false;
    points.push_back(p);
  }
  return points;
}

}  // namespace symref::mna
