#include "mna/param_sweep.h"

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>

#include "dc/linearize.h"
#include "mna/ac.h"
#include "mna/nodal.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace symref::mna {

namespace {

constexpr double kPi = 3.14159265358979323846;

void check_names(const std::vector<std::string>& names, const char* what) {
  if (names.empty()) {
    throw std::invalid_argument(std::string(what) + ": at least one parameter is required");
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i].empty()) {
      throw std::invalid_argument(std::string(what) + ": empty parameter name");
    }
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        throw std::invalid_argument(std::string(what) + ": duplicate parameter '" +
                                    names[i] + "'");
      }
    }
  }
}

/// splitmix64 finalizer — the counter-based hash behind the Monte-Carlo
/// draws (every (seed, sample, parameter) triple names one fixed value).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in (0, 1] — never 0, so log() below stays finite.
double to_unit(std::uint64_t bits) noexcept {
  return static_cast<double>((bits >> 11) + 1) * 0x1.0p-53;
}

}  // namespace

ParamSamplePlan grid_samples(const std::vector<ParamAxis>& axes) {
  ParamSamplePlan plan;
  for (const ParamAxis& axis : axes) plan.names.push_back(axis.name);
  check_names(plan.names, "grid_samples");

  std::size_t total = 1;
  for (const ParamAxis& axis : axes) {
    if (axis.count < 1) {
      throw std::invalid_argument("grid_samples: '" + axis.name + "': count must be >= 1");
    }
    if (axis.log_scale && (axis.from <= 0.0 || axis.to <= 0.0)) {
      throw std::invalid_argument("grid_samples: '" + axis.name +
                                  "': log spacing needs a positive range");
    }
    if (!std::isfinite(axis.from) || !std::isfinite(axis.to)) {
      throw std::invalid_argument("grid_samples: '" + axis.name + "': non-finite range");
    }
    total *= static_cast<std::size_t>(axis.count);
    if (total > (1u << 20)) {
      throw std::invalid_argument("grid_samples: more than 2^20 grid points");
    }
  }

  auto axis_value = [](const ParamAxis& axis, int step) {
    if (axis.count == 1) return axis.from;
    const double t = static_cast<double>(step) / static_cast<double>(axis.count - 1);
    if (axis.log_scale) {
      return std::exp(std::log(axis.from) + t * (std::log(axis.to) - std::log(axis.from)));
    }
    return axis.from + t * (axis.to - axis.from);
  };

  // Odometer over the axes, first axis slowest.
  std::vector<int> step(axes.size(), 0);
  plan.values.reserve(total * axes.size());
  for (std::size_t i = 0; i < total; ++i) {
    for (std::size_t j = 0; j < axes.size(); ++j) {
      plan.values.push_back(axis_value(axes[j], step[j]));
    }
    for (std::size_t j = axes.size(); j-- > 0;) {
      if (++step[j] < axes[j].count) break;
      step[j] = 0;
    }
  }
  return plan;
}

ParamSamplePlan monte_carlo_samples(const std::vector<ParamDist>& dists, int samples,
                                    std::uint64_t seed) {
  ParamSamplePlan plan;
  for (const ParamDist& dist : dists) plan.names.push_back(dist.name);
  check_names(plan.names, "monte_carlo_samples");
  if (samples < 1) {
    throw std::invalid_argument("monte_carlo_samples: samples must be >= 1");
  }
  if (static_cast<std::size_t>(samples) > (1u << 20)) {
    throw std::invalid_argument("monte_carlo_samples: more than 2^20 samples");
  }
  for (const ParamDist& dist : dists) {
    if (!(dist.rel_sigma >= 0.0) || !std::isfinite(dist.rel_sigma) ||
        !std::isfinite(dist.nominal)) {
      throw std::invalid_argument("monte_carlo_samples: '" + dist.name +
                                  "': bad nominal/rel_sigma");
    }
  }

  plan.values.reserve(static_cast<std::size_t>(samples) * dists.size());
  for (int i = 0; i < samples; ++i) {
    for (std::size_t j = 0; j < dists.size(); ++j) {
      const ParamDist& dist = dists[j];
      std::uint64_t h = mix(seed + 0x51'7C'C1'B7'27'22'0A'95ull);
      h = mix(h ^ (static_cast<std::uint64_t>(i) * 0xC2B2AE3D27D4EB4Full));
      h = mix(h ^ ((j + 1) * 0x165667B19E3779F9ull));
      const double u1 = to_unit(h);
      const double u2 = to_unit(mix(h ^ 0xD6E8FEB86659FD93ull));
      double draw = 0.0;
      if (dist.kind == ParamDist::Kind::kGaussian) {
        draw = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
      } else {
        draw = 2.0 * u1 - 1.0;
      }
      plan.values.push_back(dist.nominal * (1.0 + dist.rel_sigma * draw));
    }
  }
  return plan;
}

ParamSweepResult run_param_sweep(const netlist::NetlistTemplate& netlist,
                                 const ParamSamplePlan& plan,
                                 const ParamSweepOptions& options) {
  support::Timer timer;
  if (!netlist.valid()) {
    throw std::invalid_argument("run_param_sweep: empty netlist template");
  }
  check_names(plan.names, "run_param_sweep");
  for (const std::string& name : plan.names) {
    if (!netlist.has_parameter(name)) {
      throw std::invalid_argument("run_param_sweep: netlist has no top-level parameter '" +
                                  name + "' (add a .param card to sweep it)");
    }
  }
  const std::size_t width = plan.names.size();
  if (plan.values.size() % width != 0) {
    throw std::invalid_argument("run_param_sweep: ragged sample plan");
  }

  ParamSweepResult result;
  result.names = plan.names;
  result.frequencies_hz =
      log_frequency_grid(options.f_start_hz, options.f_stop_hz, options.points_per_decade);
  result.values = plan.values;

  const std::size_t samples = plan.sample_count();
  const std::size_t points = result.frequencies_hz.size();
  result.response.assign(samples * points,
                         std::complex<double>(std::numeric_limits<double>::quiet_NaN(),
                                              std::numeric_limits<double>::quiet_NaN()));
  result.ok.assign(samples, 0);
  if (samples == 0) {
    result.seconds = timer.seconds();
    return result;
  }

  // Baseline on the caller: nominal elaboration, plan factored at the first
  // probe frequency. Every lane clones this evaluator — the clones share
  // the immutable symbolic plan and replay it per (sample, point).
  //
  // Device-bearing netlists get a second baseline: the nominal DC bias is
  // solved once here, recording the Newton Jacobian plan, and the lanes
  // clone THAT solver too — so every per-sample re-bias replays one shared
  // plan, exactly like the AC points replay the evaluator's.
  const netlist::Circuit base_circuit = netlist.elaborate();
  const bool has_devices = base_circuit.has_devices();
  dc::OpOptions op_options = options.op;
  op_options.cancel = options.cancel;
  dc::OpSolver base_op_solver(op_options);
  netlist::Circuit base_linear = base_circuit;
  if (has_devices) {
    const dc::OpResult base_op = base_op_solver.solve(base_circuit);
    result.op_solves = 1;
    result.newton_iterations = static_cast<std::uint64_t>(base_op.newton_iterations);
    base_linear = dc::linearize_at(base_circuit, base_op);
  }
  const netlist::Circuit base_canonical = netlist::canonicalize(base_linear, options.canonical);
  const NodalSystem base_system(base_canonical);
  CofactorEvaluator baseline(base_system, options.spec);
  const std::complex<double> s0(0.0, 2.0 * kPi * result.frequencies_hz.front());
  (void)baseline.evaluate(s0, 1.0, 1.0);  // one fresh factorization, counted below

  // Probe grid in s, shared by every sample's evaluate_pinned_batch call.
  std::vector<std::complex<double>> probe_points;
  probe_points.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    probe_points.emplace_back(0.0, 2.0 * kPi * result.frequencies_hz[k]);
  }

  // Per-lane state, cloned lazily on the lane's first chunk. `start` makes
  // the fresh-factor tally a delta, so the baseline's own factorization is
  // not double counted through the clones.
  struct Lane {
    CofactorEvaluator eval;
    dc::OpSolver op_solver;
    std::uint64_t start = 0;
    std::uint64_t op_start = 0;
    std::uint64_t op_solves = 0;
    std::uint64_t newton_iterations = 0;
  };
  support::ThreadPool pool(options.threads);
  std::vector<std::unique_ptr<Lane>> lanes(static_cast<std::size_t>(pool.size()));

  auto body = [&](std::size_t begin, std::size_t end, int lane_index) {
    std::unique_ptr<Lane>& slot = lanes[static_cast<std::size_t>(lane_index)];
    if (!slot) {
      slot = std::make_unique<Lane>(Lane{baseline, base_op_solver});
      slot->start = slot->eval.fresh_factor_count();
      slot->op_start = slot->op_solver.fresh_factor_count();
    }
    std::map<std::string, double> overrides;
    for (std::size_t i = begin; i < end; ++i) {
      if (options.cancel.cancelled()) throw support::CancelledError();
      overrides.clear();
      for (std::size_t j = 0; j < width; ++j) {
        overrides[plan.names[j]] = plan.values[i * width + j];
      }
      // Same topology, new values: re-elaborate, rebind the pattern in
      // place, replay the pinned plan per probe point. Device-bearing
      // samples are re-biased first (replaying the cloned Newton plan) and
      // analyzed through their own linearization.
      const netlist::Circuit circuit = netlist.elaborate(overrides);
      netlist::Circuit linear_storage;
      const netlist::Circuit* linear = &circuit;
      if (has_devices) {
        const dc::OpResult op = slot->op_solver.solve(circuit);
        slot->op_solves += 1;
        slot->newton_iterations += static_cast<std::uint64_t>(op.newton_iterations);
        linear_storage = dc::linearize_at(circuit, op);
        linear = &linear_storage;
      }
      const netlist::Circuit canonical = netlist::canonicalize(*linear, options.canonical);
      const NodalSystem system(canonical);
      slot->eval.rebind(system);
      std::uint8_t all_ok = 1;
      const std::vector<CofactorEvaluator::Sample> point_samples =
          slot->eval.evaluate_pinned_batch(probe_points, 1.0, 1.0, options.kernel);
      for (std::size_t k = 0; k < points; ++k) {
        const CofactorEvaluator::Sample& sample = point_samples[k];
        if (!sample.ok || sample.denominator.is_zero()) {
          all_ok = 0;
          continue;  // the slot keeps its NaN marker
        }
        result.response[i * points + k] = (sample.numerator / sample.denominator).to_complex();
      }
      result.ok[i] = all_ok;
    }
  };
  pool.parallel_for(samples, body);

  result.fresh_factorizations = baseline.fresh_factor_count() +
                                (has_devices ? base_op_solver.fresh_factor_count() : 0);
  for (const std::unique_ptr<Lane>& lane : lanes) {
    if (!lane) continue;
    result.fresh_factorizations += lane->eval.fresh_factor_count() - lane->start;
    result.fresh_factorizations += lane->op_solver.fresh_factor_count() - lane->op_start;
    result.op_solves += lane->op_solves;
    result.newton_iterations += lane->newton_iterations;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace symref::mna
