// Plan-reusing parameter sweeps: corners, tolerance grids and Monte-Carlo
// studies over the `.param` symbols of a hierarchical netlist.
//
// This is exactly the workload the symbolic/numeric LU split was built for:
// every sample changes element VALUES but never the matrix STRUCTURE, so
// the whole study replays ONE symbolic factorization plan instead of
// recompiling the circuit per sample. The per-sample pipeline is
//
//   NetlistTemplate::elaborate(overrides)   — re-expand with new parameters
//   -> canonicalize -> NodalSystem          — same topology, new values
//   -> CofactorEvaluator::rebind()          — rewrite assembly values in
//                                             place, keep pattern + LU plan
//   -> evaluate_pinned() per probe point    — SparseLu::refactor() replay;
//                                             a refused replay factors a
//                                             throwaway instance for that
//                                             point only (fresh_factor_count
//                                             is the probe for "did the plan
//                                             hold")
//
// and the transfer value at each probe frequency is H = N/D from the
// cofactor samples (extended-range division, so deep-stopband samples do
// not underflow).
//
// Parallelism and determinism: samples fan out shared-nothing over
// support::ThreadPool lanes. The baseline plan is established once on the
// caller (nominal parameters, first probe frequency); every lane clones the
// evaluator (sharing the immutable plan) and each (sample, frequency)
// result is a pure function of (plan, sample values, frequency) — never of
// evaluation order. Monte-Carlo draws are counter-based (a splitmix64 hash
// of seed/sample/parameter indices, not a shared stream), so the sampled
// values do not depend on lane scheduling either. Results are therefore
// bit-identical at every thread count, and a given (seed, sample count)
// always names the same study.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "dc/newton.h"
#include "mna/transfer.h"
#include "netlist/canonical.h"
#include "netlist/parser.h"
#include "sparse/batched.h"
#include "support/cancellation.h"

namespace symref::mna {

/// One grid axis: `count` values from `from` to `to`, linearly or
/// log-spaced. Axes combine as a Cartesian product, first axis slowest.
struct ParamAxis {
  std::string name;
  double from = 0.0;
  double to = 0.0;
  int count = 1;
  bool log_scale = false;
};

/// One Monte-Carlo dimension: value = nominal * (1 + rel_sigma * draw),
/// with `draw` a standard normal (kGaussian) or uniform in [-1, 1]
/// (kUniform).
struct ParamDist {
  enum class Kind { kGaussian, kUniform };
  std::string name;
  double nominal = 0.0;
  double rel_sigma = 0.0;
  Kind kind = Kind::kGaussian;
};

/// A resolved sample list: `values` is sample-major
/// (values[i * names.size() + j] is parameter j of sample i).
struct ParamSamplePlan {
  std::vector<std::string> names;
  std::vector<double> values;

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return names.empty() ? 0 : values.size() / names.size();
  }
};

/// Cartesian product of the axes. Throws std::invalid_argument on empty or
/// duplicate names, count < 1, a non-positive log range, or a product over
/// 1<<20 samples (a sweep that large is a request bug, not a workload).
[[nodiscard]] ParamSamplePlan grid_samples(const std::vector<ParamAxis>& axes);

/// `samples` seeded Monte-Carlo draws. Deterministic in (dists, samples,
/// seed) alone. Throws std::invalid_argument on bad counts, empty/duplicate
/// names, or negative rel_sigma.
[[nodiscard]] ParamSamplePlan monte_carlo_samples(const std::vector<ParamDist>& dists,
                                                  int samples, std::uint64_t seed);

struct ParamSweepOptions {
  TransferSpec spec;
  /// Probe frequency grid the transfer function is evaluated on per sample
  /// (log-spaced, like AcSimulator::bode).
  double f_start_hz = 1.0;
  double f_stop_hz = 1e9;
  int points_per_decade = 10;
  /// Worker lanes; <= 0 picks the hardware thread count. Results are
  /// bit-identical at every setting.
  int threads = 1;
  /// Replay kernel for the per-point plan replays: kBatched runs each
  /// sample's probe grid as SoA lanes (CofactorEvaluator::
  /// evaluate_pinned_batch). Results and fresh_factorizations are identical
  /// under either kernel — like threads, never part of a request
  /// fingerprint.
  sparse::ReplayKernel kernel = sparse::ReplayKernel::kScalar;
  /// Cooperative checkpoint, polled once per sample on every lane.
  support::CancellationToken cancel;
  netlist::CanonicalOptions canonical;
  /// Newton options of the per-sample DC bias solves a device-bearing
  /// netlist needs before linearization (ignored when the elaborated
  /// circuit has no D/Q/M cards). Its own cancel token is replaced by
  /// `cancel` so one token trips the whole sweep.
  dc::OpOptions op;
};

struct ParamSweepResult {
  std::vector<std::string> names;
  std::vector<double> frequencies_hz;
  /// Sample-major parameter values actually applied (grid coordinates or
  /// Monte-Carlo draws): values[i * names.size() + j].
  std::vector<double> values;
  /// Sample-major transfer values: response[i * frequencies_hz.size() + k]
  /// is H(j 2π f_k) of sample i. Points of a failed sample are (NaN, NaN).
  std::vector<std::complex<double>> response;
  /// Per sample: 1 when every probe point evaluated (non-singular system
  /// and non-zero denominator), else 0.
  std::vector<std::uint8_t> ok;
  /// Fresh (non-replay) factorizations across the whole sweep: 1 means the
  /// baseline symbolic plan served every sample and point — the headline
  /// economics this engine exists for (2 for a device-bearing netlist: the
  /// AC plan plus the one Newton Jacobian plan every bias solve replays).
  /// Independent of the thread count while every replay is accepted.
  std::uint64_t fresh_factorizations = 0;
  /// DC operating-point solves performed: 0 for a linear netlist, else the
  /// nominal baseline bias plus one re-bias per sample — `.param` symbols
  /// reaching device cards vary the operating point, so every sample is
  /// linearized at ITS OWN bias.
  std::uint64_t op_solves = 0;
  /// Damped-Newton iterations across all bias solves. 0 for linear netlists.
  std::uint64_t newton_iterations = 0;
  double seconds = 0.0;
};

/// Run the sweep. Throws std::invalid_argument for plan/grid problems or
/// parameters the template does not define, netlist::ParseError when a
/// sample's elaboration fails (e.g. an override drives an expression into a
/// division by zero), dc::NoConvergenceError when a sample's bias solve
/// exhausts its homotopy ladder, and support::CancelledError on
/// cancellation.
[[nodiscard]] ParamSweepResult run_param_sweep(const netlist::NetlistTemplate& netlist,
                                               const ParamSamplePlan& plan,
                                               const ParamSweepOptions& options);

}  // namespace symref::mna
