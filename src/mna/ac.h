// AC small-signal simulator: one complex MNA solve per frequency point.
//
// This is the repo's stand-in for the "commercial electrical simulator" the
// paper compares against in Fig. 2 — a SPICE AC analysis is exactly this
// computation. It is also the SBG pass's error oracle.
#pragma once

#include <complex>
#include <vector>

#include "mna/transfer.h"
#include "netlist/circuit.h"

namespace symref::mna {

struct BodePoint {
  double frequency_hz = 0.0;
  std::complex<double> value;
  double magnitude_db = 0.0;
  /// Unwrapped across the sweep (no +/-360 jumps between adjacent points).
  double phase_deg = 0.0;
};

/// 20*log10|value|; -inf dB saturates at -400.
double magnitude_db(std::complex<double> value) noexcept;

/// Principal phase in degrees, (-180, 180].
double phase_deg(std::complex<double> value) noexcept;

class AcSimulator {
 public:
  /// The circuit must outlive the simulator.
  explicit AcSimulator(const netlist::Circuit& circuit);

  /// Complex transfer value at a frequency. A VoltageGain spec drives the
  /// input pair with an ideal 1 V source; Transimpedance injects 1 A.
  /// Throws std::runtime_error when the MNA system is singular or the spec
  /// names unknown nodes.
  [[nodiscard]] std::complex<double> transfer(const TransferSpec& spec, double frequency_hz) const;

  /// Transfer at a complex frequency s (rad/s), for cross-checks against
  /// interpolated polynomials at arbitrary points.
  [[nodiscard]] std::complex<double> transfer_s(const TransferSpec& spec,
                                                std::complex<double> s) const;

  /// Sweep with log-spaced points; magnitude_db and unwrapped phase_deg are
  /// filled in.
  [[nodiscard]] std::vector<BodePoint> bode(const TransferSpec& spec, double f_start_hz,
                                            double f_stop_hz, int points_per_decade = 10) const;

 private:
  const netlist::Circuit& circuit_;
};

/// Log-spaced frequency grid [f_start, f_stop], >= 2 points.
std::vector<double> log_frequency_grid(double f_start_hz, double f_stop_hz,
                                       int points_per_decade);

}  // namespace symref::mna
