// AC small-signal simulator: one complex MNA solve per frequency point.
//
// This is the repo's stand-in for the "commercial electrical simulator" the
// paper compares against in Fig. 2 — a SPICE AC analysis is exactly this
// computation. It is also the SBG pass's error oracle.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "mna/assembler.h"
#include "mna/transfer.h"
#include "netlist/circuit.h"
#include "sparse/batched.h"
#include "sparse/lu.h"
#include "support/cancellation.h"

namespace symref::mna {

struct BodePoint {
  double frequency_hz = 0.0;
  std::complex<double> value;
  double magnitude_db = 0.0;
  /// Unwrapped across the sweep (no +/-360 jumps between adjacent points).
  double phase_deg = 0.0;
};

/// 20*log10|value|; -inf dB saturates at -400.
double magnitude_db(std::complex<double> value) noexcept;

/// Principal phase in degrees, (-180, 180].
double phase_deg(std::complex<double> value) noexcept;

class AcSimulator {
 public:
  /// The circuit must outlive the simulator.
  explicit AcSimulator(const netlist::Circuit& circuit);

  /// Complex transfer value at a frequency. A VoltageGain spec drives the
  /// input pair with an ideal 1 V source; Transimpedance injects 1 A.
  /// Throws mna::SingularSystemError when the MNA system is singular and
  /// mna::SpecError when the spec names unknown nodes (see mna/errors.h).
  ///
  /// The driven circuit and its assembler are built once per TransferSpec
  /// and cached; subsequent points of the same spec reuse the structural
  /// pattern and sweep via SparseLu::refactor() instead of re-assembling
  /// and re-pivoting. The cache makes the simulator non-reentrant (do not
  /// share one instance across threads) and snapshots the circuit at the
  /// first query per spec: mutate the circuit only through a fresh
  /// simulator, or results keep reflecting the old values.
  [[nodiscard]] std::complex<double> transfer(const TransferSpec& spec, double frequency_hz) const;

  /// Transfer at a complex frequency s (rad/s), for cross-checks against
  /// interpolated polynomials at arbitrary points.
  [[nodiscard]] std::complex<double> transfer_s(const TransferSpec& spec,
                                                std::complex<double> s) const;

  /// Sweep with log-spaced points; magnitude_db and unwrapped phase_deg are
  /// filled in. One factorization for the whole sweep (plus refactors).
  ///
  /// `threads` > 1 distributes the per-point solves over a thread pool: the
  /// first point establishes the factorization plan on the caller, then each
  /// lane clones the pattern-cached assembler values and the SparseLu
  /// numeric workspace (sharing the immutable plan) and sweeps its chunk. A
  /// point whose replayed pivots degrade re-factors on a throwaway instance,
  /// so per-point values depend only on (plan, frequency) — the sweep is
  /// bit-identical at every thread count. Phase unwrapping runs afterwards
  /// on the caller in frequency order (deterministic ordered reduction).
  /// `threads` <= 0 picks the hardware thread count (the ThreadPool
  /// convention); 1 is the serial path.
  ///
  /// `cancel` is a cooperative checkpoint polled before every point solve
  /// (before every SoA group under the batched kernel); a tripped token
  /// makes bode throw support::CancelledError promptly. The spec cache and
  /// its factorization plan stay valid — a later sweep on the same
  /// simulator just resumes replaying the plan.
  ///
  /// `kernel` selects the replay implementation for the per-point solves:
  /// kBatched sweeps SoA groups through sparse::BatchedReplay against the
  /// first point's plan, falling back per refused lane (and wholesale when
  /// no replayable plan exists) to the scalar path. Values are bit-identical
  /// under either kernel, at every thread count.
  [[nodiscard]] std::vector<BodePoint> bode(const TransferSpec& spec, double f_start_hz,
                                            double f_stop_hz, int points_per_decade = 10,
                                            int threads = 1,
                                            support::CancellationToken cancel = {},
                                            sparse::ReplayKernel kernel =
                                                sparse::ReplayKernel::kScalar) const;

 private:
  /// Per-spec sweep state: the drive-augmented circuit copy, its assembler
  /// (pattern-cached) and the reusable factorization plan.
  struct SpecCache {
    TransferSpec spec;
    netlist::Circuit work;
    std::unique_ptr<MnaAssembler> assembler;  // references `work`
    sparse::SparseLu lu;
    int drive_branch = -1;  // VoltageGain: row of the 1 V drive constraint
    int in_pos_row = -1;    // Transimpedance: injection rows (-1 = ground)
    int in_neg_row = -1;
    int out_pos_row = -1;   // output pair rows (-1 = ground)
    int out_neg_row = -1;
  };

  SpecCache& prepare(const TransferSpec& spec) const;

  /// One point with an explicit assembler + LU (the cache's own, or a
  /// per-lane clone). Refactors against the existing plan; on refusal either
  /// persists a fresh factorization in `lu` (persist_plan — the serial
  /// cache path) or keeps the plan and factors a throwaway instance (the
  /// parallel lanes).
  [[nodiscard]] std::complex<double> solve_point(const SpecCache& cache,
                                                 MnaAssembler& assembler, sparse::SparseLu& lu,
                                                 std::vector<std::complex<double>>& rhs,
                                                 bool persist_plan,
                                                 std::complex<double> s) const;

  const netlist::Circuit& circuit_;
  mutable std::unique_ptr<SpecCache> cache_;
};

/// Log-spaced frequency grid [f_start, f_stop], >= 2 points.
std::vector<double> log_frequency_grid(double f_start_hz, double f_stop_hz,
                                       int points_per_decade);

}  // namespace symref::mna
