// Transfer-function specification shared by the AC simulator and the
// interpolation engine.
//
// Ports are node-name pairs, so the same spec works on the original circuit
// (AC simulation) and on its canonicalized twin (interpolation) — node names
// are preserved by canonicalization.
#pragma once

#include <string>

namespace symref::mna {

struct TransferSpec {
  enum class Kind {
    /// H = (V(out+) - V(out-)) / (V(in+) - V(in-)), ideal voltage drive.
    VoltageGain,
    /// H = (V(out+) - V(out-)) / I(in), unit current injected in+ -> in-.
    Transimpedance,
  };

  Kind kind = Kind::VoltageGain;
  std::string in_pos;
  std::string in_neg = "0";
  std::string out_pos;
  std::string out_neg = "0";

  static TransferSpec voltage_gain(std::string in_pos, std::string out_pos,
                                   std::string in_neg = "0", std::string out_neg = "0") {
    TransferSpec spec;
    spec.kind = Kind::VoltageGain;
    spec.in_pos = std::move(in_pos);
    spec.in_neg = std::move(in_neg);
    spec.out_pos = std::move(out_pos);
    spec.out_neg = std::move(out_neg);
    return spec;
  }

  static TransferSpec transimpedance(std::string in_pos, std::string out_pos,
                                     std::string in_neg = "0", std::string out_neg = "0") {
    TransferSpec spec;
    spec.kind = Kind::Transimpedance;
    spec.in_pos = std::move(in_pos);
    spec.in_neg = std::move(in_neg);
    spec.out_pos = std::move(out_pos);
    spec.out_neg = std::move(out_neg);
    return spec;
  }
};

}  // namespace symref::mna
