#include "mna/assembler.h"

#include <stdexcept>

namespace symref::mna {

using netlist::Element;
using netlist::ElementKind;

MnaAssembler::MnaAssembler(const netlist::Circuit& circuit) : circuit_(circuit) {
  // Active nodes: touched by at least one element (ground excluded).
  std::vector<bool> active(static_cast<std::size_t>(circuit.node_count()), false);
  for (const Element& e : circuit.elements()) {
    active[static_cast<std::size_t>(e.node_pos)] = true;
    active[static_cast<std::size_t>(e.node_neg)] = true;
    if (e.ctrl_pos >= 0) active[static_cast<std::size_t>(e.ctrl_pos)] = true;
    if (e.ctrl_neg >= 0) active[static_cast<std::size_t>(e.ctrl_neg)] = true;
  }
  node_to_row_.assign(static_cast<std::size_t>(circuit.node_count()), -1);
  int next = 0;
  for (int n = 1; n < circuit.node_count(); ++n) {
    if (active[static_cast<std::size_t>(n)]) node_to_row_[static_cast<std::size_t>(n)] = next++;
  }
  for (const Element& e : circuit.elements()) {
    if (e.needs_branch_current()) {
      branch_rows_.emplace_back(e.name, next++);
    }
  }
  dim_ = next;
}

std::optional<int> MnaAssembler::node_index(int node) const {
  if (node < 0 || node >= static_cast<int>(node_to_row_.size())) return std::nullopt;
  const int row = node_to_row_[static_cast<std::size_t>(node)];
  return row < 0 ? std::nullopt : std::optional<int>(row);
}

std::optional<int> MnaAssembler::node_index(std::string_view name) const {
  const auto node = circuit_.find_node(name);
  if (!node) return std::nullopt;
  return node_index(*node);
}

std::optional<int> MnaAssembler::branch_index(std::string_view element_name) const {
  for (const auto& [name, row] : branch_rows_) {
    if (name == element_name) return row;
  }
  return std::nullopt;
}

sparse::TripletMatrix MnaAssembler::matrix(std::complex<double> s) const {
  sparse::TripletMatrix mat(dim_);
  auto row_of = [&](int node) { return node_to_row_[static_cast<std::size_t>(node)]; };
  auto add = [&](int r, int c, std::complex<double> v) {
    if (r >= 0 && c >= 0) mat.add(r, c, v);
  };
  // Two-terminal admittance stamp.
  auto stamp_admittance = [&](int a, int b, std::complex<double> y) {
    const int ra = row_of(a);
    const int rb = row_of(b);
    add(ra, ra, y);
    add(rb, rb, y);
    add(ra, rb, -y);
    add(rb, ra, -y);
  };
  // VCCS: i(a->b) = gm * v(c, d); SPICE sign convention.
  auto stamp_vccs = [&](int a, int b, int c, int d, std::complex<double> gm) {
    const int ra = row_of(a);
    const int rb = row_of(b);
    const int rc = row_of(c);
    const int rd = row_of(d);
    add(ra, rc, gm);
    add(ra, rd, -gm);
    add(rb, rc, -gm);
    add(rb, rd, gm);
  };

  for (const Element& e : circuit_.elements()) {
    switch (e.kind) {
      case ElementKind::Resistor:
        stamp_admittance(e.node_pos, e.node_neg, 1.0 / e.value);
        break;
      case ElementKind::Conductance:
        stamp_admittance(e.node_pos, e.node_neg, e.value);
        break;
      case ElementKind::Capacitor:
        stamp_admittance(e.node_pos, e.node_neg, s * e.value);
        break;
      case ElementKind::Vccs:
        stamp_vccs(e.node_pos, e.node_neg, e.ctrl_pos, e.ctrl_neg, e.value);
        break;
      case ElementKind::CurrentSource:
        break;  // excitation only
      case ElementKind::VoltageSource: {
        const int k = *branch_index(e.name);
        add(row_of(e.node_pos), k, 1.0);
        add(row_of(e.node_neg), k, -1.0);
        add(k, row_of(e.node_pos), 1.0);
        add(k, row_of(e.node_neg), -1.0);
        break;
      }
      case ElementKind::Inductor: {
        const int k = *branch_index(e.name);
        add(row_of(e.node_pos), k, 1.0);
        add(row_of(e.node_neg), k, -1.0);
        add(k, row_of(e.node_pos), 1.0);
        add(k, row_of(e.node_neg), -1.0);
        add(k, k, -s * e.value);
        break;
      }
      case ElementKind::Vcvs: {
        const int k = *branch_index(e.name);
        add(row_of(e.node_pos), k, 1.0);
        add(row_of(e.node_neg), k, -1.0);
        add(k, row_of(e.node_pos), 1.0);
        add(k, row_of(e.node_neg), -1.0);
        add(k, row_of(e.ctrl_pos), -e.value);
        add(k, row_of(e.ctrl_neg), e.value);
        break;
      }
      case ElementKind::Cccs: {
        const auto kc = branch_index(e.ctrl_branch);
        if (!kc) {
          throw std::invalid_argument("CCCS '" + e.name + "': controlling element '" +
                                      e.ctrl_branch + "' has no branch current");
        }
        add(row_of(e.node_pos), *kc, e.value);
        add(row_of(e.node_neg), *kc, -e.value);
        break;
      }
      case ElementKind::Ccvs: {
        const auto kc = branch_index(e.ctrl_branch);
        if (!kc) {
          throw std::invalid_argument("CCVS '" + e.name + "': controlling element '" +
                                      e.ctrl_branch + "' has no branch current");
        }
        const int k = *branch_index(e.name);
        add(row_of(e.node_pos), k, 1.0);
        add(row_of(e.node_neg), k, -1.0);
        add(k, row_of(e.node_pos), 1.0);
        add(k, row_of(e.node_neg), -1.0);
        add(k, *kc, -e.value);
        break;
      }
      case ElementKind::IdealOpAmp: {
        // Nullor: output branch current is whatever keeps v(ctrl+)==v(ctrl-).
        const int k = *branch_index(e.name);
        add(row_of(e.node_pos), k, 1.0);
        add(row_of(e.node_neg), k, -1.0);
        add(k, row_of(e.ctrl_pos), 1.0);
        add(k, row_of(e.ctrl_neg), -1.0);
        break;
      }
    }
  }
  return mat;
}

std::vector<std::complex<double>> MnaAssembler::excitation() const {
  std::vector<std::complex<double>> rhs(static_cast<std::size_t>(dim_));
  auto row_of = [&](int node) { return node_to_row_[static_cast<std::size_t>(node)]; };
  for (const Element& e : circuit_.elements()) {
    if (e.kind == ElementKind::CurrentSource) {
      // Positive current flows n+ -> n- through the source.
      const int ra = row_of(e.node_pos);
      const int rb = row_of(e.node_neg);
      if (ra >= 0) rhs[static_cast<std::size_t>(ra)] -= e.value;
      if (rb >= 0) rhs[static_cast<std::size_t>(rb)] += e.value;
    } else if (e.kind == ElementKind::VoltageSource) {
      const int k = *branch_index(e.name);
      rhs[static_cast<std::size_t>(k)] += e.value;
    }
  }
  return rhs;
}

}  // namespace symref::mna
