#include "mna/assembler.h"

#include <stdexcept>
#include <utility>

namespace symref::mna {

using netlist::Element;
using netlist::ElementKind;

MnaAssembler::MnaAssembler(const netlist::Circuit& circuit) : circuit_(circuit) {
  // Active nodes: touched by at least one element (ground excluded).
  std::vector<bool> active(static_cast<std::size_t>(circuit.node_count()), false);
  for (const Element& e : circuit.elements()) {
    active[static_cast<std::size_t>(e.node_pos)] = true;
    active[static_cast<std::size_t>(e.node_neg)] = true;
    if (e.ctrl_pos >= 0) active[static_cast<std::size_t>(e.ctrl_pos)] = true;
    if (e.ctrl_neg >= 0) active[static_cast<std::size_t>(e.ctrl_neg)] = true;
  }
  node_to_row_.assign(static_cast<std::size_t>(circuit.node_count()), -1);
  int next = 0;
  for (int n = 1; n < circuit.node_count(); ++n) {
    if (active[static_cast<std::size_t>(n)]) node_to_row_[static_cast<std::size_t>(n)] = next++;
  }
  for (const Element& e : circuit.elements()) {
    if (e.needs_branch_current()) {
      branch_rows_.emplace(e.name, next++);
    }
  }
  dim_ = next;

  // Name -> row cache for the sweep loops (find_node resolves aliases from
  // short_element merges, so go through it once per name here).
  for (int n = 0; n < circuit.node_count(); ++n) {
    const auto resolved = circuit.find_node(circuit.node_name(n));
    const int row =
        resolved ? node_to_row_[static_cast<std::size_t>(*resolved)] : -1;
    node_rows_by_name_.emplace(circuit.node_name(n), row);
  }

  // Merge every element stamp into the fixed structural layout. MNA values
  // are affine in s; PatternStamp.conductance carries the s^0 part and
  // .capacitance the s^1 part (C and -L).
  auto row_of = [&](int node) { return node_to_row_[static_cast<std::size_t>(node)]; };
  auto add = [&](int r, int c, double base, double reactive) {
    if (r >= 0 && c >= 0) stamps_.push_back({r, c, base, reactive});
  };
  auto stamp_admittance = [&](int a, int b, double g, double cap) {
    const int ra = row_of(a);
    const int rb = row_of(b);
    add(ra, ra, g, cap);
    add(rb, rb, g, cap);
    add(ra, rb, -g, -cap);
    add(rb, ra, -g, -cap);
  };
  // VCCS: i(a->b) = gm * v(c, d); SPICE sign convention.
  auto stamp_vccs = [&](int a, int b, int c, int d, double gm) {
    const int ra = row_of(a);
    const int rb = row_of(b);
    const int rc = row_of(c);
    const int rd = row_of(d);
    add(ra, rc, gm, 0.0);
    add(ra, rd, -gm, 0.0);
    add(rb, rc, -gm, 0.0);
    add(rb, rd, gm, 0.0);
  };
  auto stamp_branch = [&](const Element& e, int k) {
    add(row_of(e.node_pos), k, 1.0, 0.0);
    add(row_of(e.node_neg), k, -1.0, 0.0);
    add(k, row_of(e.node_pos), 1.0, 0.0);
    add(k, row_of(e.node_neg), -1.0, 0.0);
  };

  for (const Element& e : circuit.elements()) {
    switch (e.kind) {
      case ElementKind::Resistor:
        stamp_admittance(e.node_pos, e.node_neg, 1.0 / e.value, 0.0);
        break;
      case ElementKind::Conductance:
        stamp_admittance(e.node_pos, e.node_neg, e.value, 0.0);
        break;
      case ElementKind::Capacitor:
        stamp_admittance(e.node_pos, e.node_neg, 0.0, e.value);
        break;
      case ElementKind::Vccs:
        stamp_vccs(e.node_pos, e.node_neg, e.ctrl_pos, e.ctrl_neg, e.value);
        break;
      case ElementKind::CurrentSource:
        break;  // excitation only
      case ElementKind::VoltageSource:
        stamp_branch(e, *branch_index(e.name));
        break;
      case ElementKind::Inductor: {
        const int k = *branch_index(e.name);
        stamp_branch(e, k);
        add(k, k, 0.0, -e.value);
        break;
      }
      case ElementKind::Vcvs: {
        const int k = *branch_index(e.name);
        stamp_branch(e, k);
        add(k, row_of(e.ctrl_pos), -e.value, 0.0);
        add(k, row_of(e.ctrl_neg), e.value, 0.0);
        break;
      }
      case ElementKind::Cccs: {
        const auto kc = branch_index(e.ctrl_branch);
        if (!kc) {
          stamp_error_ = "CCCS '" + e.name + "': controlling element '" + e.ctrl_branch +
                         "' has no branch current";
          break;
        }
        add(row_of(e.node_pos), *kc, e.value, 0.0);
        add(row_of(e.node_neg), *kc, -e.value, 0.0);
        break;
      }
      case ElementKind::Ccvs: {
        const auto kc = branch_index(e.ctrl_branch);
        if (!kc) {
          stamp_error_ = "CCVS '" + e.name + "': controlling element '" + e.ctrl_branch +
                         "' has no branch current";
          break;
        }
        const int k = *branch_index(e.name);
        stamp_branch(e, k);
        add(k, *kc, -e.value, 0.0);
        break;
      }
      case ElementKind::IdealOpAmp: {
        // Nullor: output branch current is whatever keeps v(ctrl+)==v(ctrl-).
        const int k = *branch_index(e.name);
        add(row_of(e.node_pos), k, 1.0, 0.0);
        add(row_of(e.node_neg), k, -1.0, 0.0);
        add(k, row_of(e.ctrl_pos), 1.0, 0.0);
        add(k, row_of(e.ctrl_neg), -1.0, 0.0);
        break;
      }
    }
    if (!stamp_error_.empty()) break;
  }
  if (stamp_error_.empty()) {
    assembly_ = sparse::PatternedMatrix(dim_, stamps_);
  }
}

std::optional<int> MnaAssembler::node_index(int node) const {
  if (node < 0 || node >= static_cast<int>(node_to_row_.size())) return std::nullopt;
  const int row = node_to_row_[static_cast<std::size_t>(node)];
  return row < 0 ? std::nullopt : std::optional<int>(row);
}

std::optional<int> MnaAssembler::node_index(std::string_view name) const {
  const auto it = node_rows_by_name_.find(name);
  if (it != node_rows_by_name_.end()) {
    return it->second < 0 ? std::nullopt : std::optional<int>(it->second);
  }
  // Ground aliases ("gnd", "GND") and merged-node aliases are not circuit
  // node names; resolve the slow way.
  const auto node = circuit_.find_node(name);
  if (!node) return std::nullopt;
  return node_index(*node);
}

std::optional<int> MnaAssembler::branch_index(std::string_view element_name) const {
  const auto it = branch_rows_.find(element_name);
  if (it == branch_rows_.end()) return std::nullopt;
  return it->second;
}

void MnaAssembler::require_stamps() const {
  if (!stamp_error_.empty()) throw std::invalid_argument(stamp_error_);
}

sparse::TripletMatrix MnaAssembler::matrix(std::complex<double> s) const {
  require_stamps();
  sparse::TripletMatrix mat(dim_);
  for (const sparse::PatternStamp& stamp : stamps_) {
    const std::complex<double> value = stamp.conductance + s * stamp.capacitance;
    if (value != std::complex<double>()) mat.add(stamp.row, stamp.col, value);
  }
  return mat;
}

const sparse::CompressedMatrix& MnaAssembler::assemble(std::complex<double> s) {
  require_stamps();
  return assembly_.assemble(s);
}

void MnaAssembler::assemble_batch(std::complex<double>* dest, std::size_t stride,
                                  const std::complex<double>* s, int lanes) const {
  require_stamps();
  assembly_.assemble_batch(dest, stride, s, lanes);
}

std::vector<std::complex<double>> MnaAssembler::excitation() const {
  std::vector<std::complex<double>> rhs(static_cast<std::size_t>(dim_));
  auto row_of = [&](int node) { return node_to_row_[static_cast<std::size_t>(node)]; };
  for (const Element& e : circuit_.elements()) {
    if (e.kind == ElementKind::CurrentSource) {
      // Positive current flows n+ -> n- through the source.
      const int ra = row_of(e.node_pos);
      const int rb = row_of(e.node_neg);
      if (ra >= 0) rhs[static_cast<std::size_t>(ra)] -= e.value;
      if (rb >= 0) rhs[static_cast<std::size_t>(rb)] += e.value;
    } else if (e.kind == ElementKind::VoltageSource) {
      const int k = *branch_index(e.name);
      rhs[static_cast<std::size_t>(k)] += e.value;
    }
  }
  return rhs;
}

}  // namespace symref::mna
