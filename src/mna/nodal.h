// Homogeneous node-admittance formulation for the interpolation engine.
//
// Over a canonical circuit ({G, C, VCCS}, see netlist/canonical.h) every
// matrix entry is a sum of admittances, so every determinant term is a
// product of exactly M admittance factors (M = matrix dimension) and every
// cofactor term a product of M-1. That homogeneity is what makes the
// paper's conductance scaling (eq. (11)) exact:
//
//   p'_j = p_j * f^j * g^(deg - j)
//
// where scale factors multiply element values (c_e -> f*c_e, g_e -> g*g_e)
// and deg is the polynomial's homogeneity degree.
//
// Network functions are evaluated per interpolation point the classical way
// (paper eqs. (7)-(10)): one sparse LU factorization gives the determinant
// from the pivot product, one solve with a unit current injection at the
// input pair gives the cofactor sums:
//
//   voltage gain:   N(s) = (V_out+ - V_out-) * det,  D(s) = (V_in+ - V_in-) * det
//                   (both homogeneous of degree M-1; Lin's cofactor form)
//   transimpedance: N(s) as above (degree M-1),      D(s) = det (degree M)
#pragma once

#include <complex>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "mna/transfer.h"
#include "netlist/circuit.h"
#include "numeric/scaled.h"
#include "sparse/batched.h"
#include "sparse/lu.h"
#include "sparse/matrix.h"

namespace symref::support {
class ThreadPool;
}

namespace symref::mna {

/// Structural stamp and pattern-cached assembly shared with the full MNA
/// assembler (see sparse/matrix.h).
using sparse::PatternStamp;
using sparse::PatternedMatrix;

class NodalSystem {
 public:
  /// Throws std::invalid_argument unless the circuit is canonical.
  explicit NodalSystem(const netlist::Circuit& circuit);

  /// Matrix dimension M (active non-ground nodes).
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Number of capacitor elements stamped (each is a rank-1 determinant
  /// update, so the determinant's s-degree is at most this).
  [[nodiscard]] int capacitor_count() const noexcept { return capacitor_count_; }

  /// Upper bound on the s-degree of the determinant.
  [[nodiscard]] int order_bound() const noexcept {
    return capacitor_count_ < dim_ ? capacitor_count_ : dim_;
  }

  /// Row of a node's unknown; nullopt for ground ("0") and unknown names.
  [[nodiscard]] std::optional<int> row_of_node(std::string_view name) const;

  /// Y(s_hat) with element scaling applied: every conductance multiplied by
  /// g_scale, every capacitance by f_scale.
  [[nodiscard]] sparse::TripletMatrix matrix(std::complex<double> s_hat, double f_scale,
                                             double g_scale) const;

  /// The merged structural stamps (sorted by row, then column). Callers may
  /// append extra stamps (e.g. a drive admittance) and feed the list to a
  /// PatternedMatrix for allocation-free per-sample assembly.
  [[nodiscard]] const std::vector<PatternStamp>& stamps() const noexcept { return entries_; }

  [[nodiscard]] const netlist::Circuit& circuit() const noexcept { return circuit_; }

 private:
  const netlist::Circuit& circuit_;
  int dim_ = 0;
  int capacitor_count_ = 0;
  std::vector<int> node_to_row_;
  std::vector<PatternStamp> entries_;
};

/// One interpolation-point evaluation of the network function's numerator
/// and denominator.
class CofactorEvaluator {
 public:
  /// Throws std::invalid_argument when the spec references unknown or
  /// floating nodes.
  CofactorEvaluator(const NodalSystem& system, const TransferSpec& spec);

  /// Copying clones the pattern-cached assembly values and the LU numeric
  /// workspace while SHARING the immutable symbolic plan — the cheap
  /// per-lane clone parameter sweeps are built on (see rebind()).
  CofactorEvaluator(const CofactorEvaluator&) = default;
  CofactorEvaluator& operator=(const CofactorEvaluator&) = default;

  /// Homogeneity degrees used for denormalization.
  [[nodiscard]] int numerator_degree() const noexcept { return system_->dim() - 1; }
  [[nodiscard]] int denominator_degree() const noexcept {
    return spec_.kind == TransferSpec::Kind::VoltageGain ? system_->dim() - 1 : system_->dim();
  }

  struct Sample {
    numeric::ScaledComplex numerator;
    numeric::ScaledComplex denominator;
    /// Estimated relative evaluation errors of the two sample values. Two
    /// mechanisms contribute:
    ///  * determinant round-off: eps * max|entry| / min|pivot| (grows when
    ///    the scaling spreads conductance and capacitor entries apart —
    ///    §3.2's warning about overly large scale factors);
    ///  * solve round-off on the port voltage: eps * max_j|V_j| / |V_port|
    ///    (dominates when the output voltage is orders of magnitude below
    ///    the other node voltages, e.g. deep-stopband numerators).
    /// Both feed the engine's acceptance floor.
    double numerator_error = 0.0;
    double denominator_error = 0.0;
    bool ok = false;
    /// True when the value came from the degradation ladder's escalated
    /// pivot thresholds (see evaluate()): numerically usable, but the pivot
    /// quality guarantee of the default threshold no longer holds. Callers
    /// surface this (AdaptiveResult::degraded) instead of failing hard.
    bool degraded = false;
  };

  /// Evaluate N and D at one scaled frequency point.
  ///
  /// Successive evaluations reuse the previous pivot order (static-pivot
  /// refactorization — the pattern is identical across interpolation
  /// points), falling back to a fresh Markowitz factorization whenever the
  /// reused pivots degrade. The cached factorization makes this method
  /// non-reentrant: do not share one evaluator across threads.
  [[nodiscard]] Sample evaluate(std::complex<double> s_hat, double f_scale,
                                double g_scale) const;

  /// Evaluate a whole batch of points at one (f, g) scaling — the inner loop
  /// of one interpolation iteration, and the unit of parallelism.
  ///
  /// The first point runs on the caller exactly like evaluate() (persisting
  /// a fresh factorization when the reused pivots degrade), establishing the
  /// shared baseline plan for the batch. Every remaining point is evaluated
  /// independently against that immutable baseline: each pool lane clones
  /// the PatternedMatrix value arrays and the SparseLu numeric workspace
  /// (the symbolic plan is shared read-only), and a point whose replayed
  /// pivots degrade falls back to a throwaway fresh factorization of that
  /// point alone. Per-point results therefore depend only on (plan, point),
  /// never on evaluation order — the returned samples are bit-identical at
  /// every thread count, including the serial `pool == nullptr` path.
  ///
  /// Results are returned in point order. A singular point yields a sample
  /// with ok == false; other points are unaffected (when the first point
  /// leaves no baseline plan, each remaining point runs its own fresh
  /// factorization — still a pure function of that point alone).
  ///
  /// `kernel` selects the numeric replay implementation. kBatched groups the
  /// remaining points into SoA lanes (at most `batch_width` per group) and
  /// runs them through one sparse::BatchedReplay pass per group; a refused
  /// lane falls back to the same throwaway fresh factorization the scalar
  /// path uses. Results are bit-identical to kScalar by the oracle contract
  /// (and hence across batch widths and thread counts); when the baseline
  /// plan is missing or its pattern no longer matches the assembly, the
  /// batched path degrades to the scalar one wholesale.
  [[nodiscard]] std::vector<Sample> evaluate_batch(
      const std::vector<std::complex<double>>& s_hats, double f_scale, double g_scale,
      support::ThreadPool* pool = nullptr,
      sparse::ReplayKernel kernel = sparse::ReplayKernel::kScalar,
      int batch_width = sparse::kDefaultBatchWidth) const;

  /// Point the evaluator at a NEW NodalSystem with the same structure but
  /// different element values — the per-sample step of a parameter sweep.
  /// Re-resolves the spec rows, keeps the drive admittance chosen at
  /// construction (exactness does not depend on its value — see the drive
  /// note below), and rewrites the assembly values IN PLACE when the stamp
  /// structure matches the cached pattern. The cached LU plan is kept
  /// either way: a matching pattern replays it; a changed one makes the
  /// next replay refuse, falling back to a fresh factorization. `system`
  /// must outlive the evaluator (or the next rebind).
  void rebind(const NodalSystem& system);

  /// One point against the PINNED member plan: replay it, and when the
  /// replay refuses, run a throwaway fresh factorization of this point only
  /// (counted by fresh_factor_count()) — the member plan is never replaced.
  /// Unlike evaluate(), results therefore depend only on (plan, point,
  /// values), never on evaluation history, which is what keeps parameter
  /// sweeps bit-identical at every thread count. Requires a plan (any
  /// successful evaluate() establishes one).
  [[nodiscard]] Sample evaluate_pinned(std::complex<double> s_hat, double f_scale,
                                       double g_scale) const;

  /// evaluate_pinned() over a whole point list, optionally through the
  /// batched kernel: with kBatched (and a replayable pinned plan) the points
  /// run in SoA groups of at most `batch_width` lanes; refused lanes fall
  /// back per point exactly like evaluate_pinned (counted by
  /// fresh_factor_count(), escalations included). With kScalar — or when
  /// the plan is missing / its pattern no longer matches — this is a plain
  /// evaluate_pinned loop. Results and counter increments are identical
  /// under either kernel (the differential suite's engine-stats contract).
  /// Single-threaded, like every other method of one instance.
  [[nodiscard]] std::vector<Sample> evaluate_pinned_batch(
      const std::vector<std::complex<double>>& s_hats, double f_scale, double g_scale,
      sparse::ReplayKernel kernel = sparse::ReplayKernel::kScalar,
      int batch_width = sparse::kDefaultBatchWidth) const;

  /// Fresh (non-replay) factorizations this instance has run — the plan
  /// probe of parameter-sweep tests and benches. Counts evaluate()'s
  /// fallback factorizations and evaluate_pinned()'s throwaway ones; the
  /// per-lane contexts of evaluate_batch() are not counted (they are
  /// throwaway clones shared across lanes). Single-threaded like the rest
  /// of the instance.
  [[nodiscard]] std::uint64_t fresh_factor_count() const noexcept {
    return fresh_factor_count_;
  }

  /// Times the degradation ladder had to relax the pivot threshold beyond
  /// the default to factor a point (evaluate()/evaluate_pinned() only, like
  /// fresh_factor_count()). Every escalated point's Sample carries
  /// degraded == true.
  [[nodiscard]] std::uint64_t pivot_escalation_count() const noexcept {
    return pivot_escalation_count_;
  }

  /// Points this instance has evaluated through batched replay lanes
  /// (evaluate_batch / evaluate_pinned_batch with kBatched on a replayable
  /// plan; points that fell back to the scalar path are not counted).
  /// Purely observational — feeds Service::engine_stats, never results.
  [[nodiscard]] std::uint64_t batched_lane_count() const noexcept { return batched_lane_count_; }

  /// Supernodes of the cached factorization plan (0 before the first
  /// successful evaluation).
  [[nodiscard]] std::size_t supernode_count() const noexcept { return lu_.supernode_count(); }

 private:
  /// Per-lane mutable state of a batch evaluation: pattern-cached assembly
  /// values and the SparseLu numeric payload, both cloned from the members
  /// (sharing the immutable symbolic plan), plus the solve vector.
  struct EvalContext {
    PatternedMatrix assembly;
    sparse::SparseLu lu;
    std::vector<std::complex<double>> rhs;
  };

  /// Per-lane mutable state of a BATCHED batch evaluation: cloned assembly
  /// (base value arrays for assemble_batch and the scalar fallback), the
  /// SoA replay bound to the shared baseline plan, the SoA solve buffer and
  /// a per-lane gather vector.
  struct BatchContext {
    PatternedMatrix assembly;
    sparse::BatchedReplay replay;
    std::vector<std::complex<double>> soa_rhs;
    std::vector<std::complex<double>> rhs;
    std::vector<double> max_norm;       // per-lane max |V_r|^2 over the solution
    std::vector<double> min_pivots;     // per-lane smallest |pivot|
    std::vector<numeric::ScaledComplex> dets;  // per-lane determinants
  };

  /// One point against the context's baseline plan: refactor, with a
  /// throwaway fresh factorization when the replay refuses (the context's
  /// plan is never replaced, keeping later points history-independent).
  [[nodiscard]] Sample evaluate_in(EvalContext& context, std::complex<double> s_hat,
                                   double f_scale, double g_scale) const;

  /// One SoA group of `count` points against the baseline plan bound into
  /// context.replay: batched assembly, batched replay, batched cofactor
  /// solve, then per-lane sample assembly. Refused lanes fall back to a
  /// throwaway fresh factorization of that point alone;
  /// `count_fallbacks` selects whether those bump fresh_factor_count() /
  /// pivot_escalation_count() (true on the pinned caller-thread path,
  /// false on pool lanes — matching the scalar paths' accounting).
  void evaluate_group_batched(BatchContext& context, const std::complex<double>* s_hats,
                              int count, double f_scale, double g_scale, bool count_fallbacks,
                              Sample* out) const;

  /// Shared tail of every evaluation path: determinant, cofactor solve and
  /// the two error proxies from an already factored system.
  [[nodiscard]] Sample finish_sample(const sparse::SparseLu& lu,
                                     std::vector<std::complex<double>>& rhs) const;

  /// Sample assembly from an already-solved system: determinant, error
  /// proxies and port voltages from the solution vector. The arithmetic tail
  /// shared verbatim by the scalar and batched paths (bit-identity).
  [[nodiscard]] Sample sample_from_solution(const numeric::ScaledComplex& det,
                                            double min_pivot, double max_entry,
                                            const std::vector<std::complex<double>>& rhs) const;

  /// Core of sample_from_solution with the solution-vector reductions
  /// (port voltages, max |V|) already performed — the batched path computes
  /// them in one lane-inner pass over the SoA solution instead of gathering
  /// each lane into a scratch vector first. Arithmetic identical to the
  /// scalar tail.
  [[nodiscard]] Sample sample_from_ports(const numeric::ScaledComplex& det, double min_pivot,
                                         double max_entry, std::complex<double> v_out,
                                         std::complex<double> v_in, double max_abs_v) const;

  /// True when the member plan exists and its structural fingerprint matches
  /// the cached assembly — i.e. a (scalar or batched) replay would be
  /// accepted structurally.
  [[nodiscard]] bool plan_replayable() const;

  /// The numeric degradation ladder: a fresh factorization at the default
  /// options, then — instead of giving up — retries with progressively
  /// relaxed pivot thresholds. Returns false only when even a thresholdless
  /// factorization finds no nonzero pivot (truly singular); *degraded is
  /// set when an escalated level produced the factorization.
  [[nodiscard]] static bool factor_with_ladder(sparse::SparseLu& lu,
                                               const sparse::CompressedMatrix& matrix,
                                               bool* degraded);

  /// Resolve the spec rows against *system_ and (re)build the pattern-cached
  /// assembly from its stamps plus the drive admittance.
  void bind_system();

  const NodalSystem* system_;  // pointer so rebind() can reseat it
  TransferSpec spec_;
  int in_pos_ = -1;  // -1 encodes ground
  int in_neg_ = -1;
  int out_pos_ = -1;
  int out_neg_ = -1;
  mutable std::uint64_t fresh_factor_count_ = 0;
  mutable std::uint64_t pivot_escalation_count_ = 0;
  /// Points evaluated through batched lanes; bumped on the caller thread
  /// only (pool lanes never touch it), like the other counters.
  mutable std::uint64_t batched_lane_count_ = 0;
  /// True while lu_ holds a plan produced by an escalated ladder level.
  mutable bool plan_degraded_ = false;
  // Pattern-cached assembly (system stamps + drive admittance, merged once)
  // and the cached factorization plan reused across evaluation points.
  mutable PatternedMatrix assembly_;
  mutable sparse::SparseLu lu_;
  // Drive admittance stamped across the input pair for VoltageGain specs.
  // Needed when the input node carries no admittance of its own (it only
  // controls sources): det(Y) would be structurally zero. By the
  // Sherman-Morrison identity, adding y_d * u * u^T with u = e_in+ - e_in-
  // leaves every component of adj(Y) * u — i.e. both N and D — exactly
  // unchanged, so the recovered polynomials are still those of the original
  // circuit (and still homogeneous in its elements).
  double drive_conductance_ = 0.0;
  double drive_capacitance_ = 0.0;
};

}  // namespace symref::mna
