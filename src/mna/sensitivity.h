// Adjoint (Tellegen) small-signal sensitivity analysis.
//
// The paper's SBG description measures each element's "contribution
// (appropriately measured) to the network function". The brute-force
// measure — re-solve the circuit with the element removed — costs one LU per
// element per frequency. The adjoint method gets the first-order influence
// of EVERY element from just two solves per frequency:
//
//   Y v = b          (direct:  excitation at the input port)
//   Y^T w = -d       (adjoint: selector at the output port)
//
//   dH/dy_e = (w_a - w_b) * (v_c - v_d)
//
// for an element contributing y_e through stamp rows (a, b) and controlling
// voltage (c, d); for two-terminal admittances (c, d) == (a, b). The
// normalized magnitude |y_e * dH/dy_e / H| is the classic sensitivity
// ranking used to pre-screen SBG candidates.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "mna/transfer.h"
#include "netlist/circuit.h"

namespace symref::mna {

struct ElementSensitivity {
  std::string element;
  /// dH/dy * y / H at the analysis frequency: relative change of H per
  /// relative change of the element value (complex; magnitude ranks).
  std::complex<double> normalized;
};

/// First-order sensitivities of a transfer function with respect to every
/// canonical element (conductance, capacitor, VCCS) at one frequency.
/// The circuit must be canonical ({G, C, VCCS}); use netlist::canonicalize
/// first. Throws std::runtime_error on singular systems.
std::vector<ElementSensitivity> ac_sensitivities(const netlist::Circuit& canonical,
                                                 const TransferSpec& spec,
                                                 double frequency_hz);

/// Worst-case |normalized| across a log grid — the band-level influence
/// measure for simplification screening.
std::vector<ElementSensitivity> band_sensitivities(const netlist::Circuit& canonical,
                                                   const TransferSpec& spec,
                                                   double f_start_hz, double f_stop_hz,
                                                   int points_per_decade = 2);

}  // namespace symref::mna
