// Full modified nodal analysis.
//
// Unknowns are the non-ground node voltages that at least one element
// touches, plus one auxiliary branch current per element that needs it
// (V sources, VCVS, CCVS, inductors, ideal opamps). This is the paper's
// eq. (7): Y_MNA * X = E. The assembler is the backbone of the AC simulator;
// the interpolation engine uses the leaner homogeneous NodalAssembler.
//
// Every MNA entry is affine in s (conductances and the ±1 incidence
// constants plus s*C / -s*L reactive parts), so the constructor merges the
// element stamps into a fixed structural layout once and assemble() rewrites
// only the value array per frequency point — the pattern stability that lets
// the AC simulator sweep via SparseLu::refactor().
#pragma once

#include <complex>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netlist/circuit.h"
#include "sparse/matrix.h"

namespace symref::mna {

class MnaAssembler {
 public:
  explicit MnaAssembler(const netlist::Circuit& circuit);

  /// System dimension: active nodes + auxiliary branch currents.
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Row/column of a node's voltage unknown; nullopt for ground or a node no
  /// element touches. The name overload resolves through a prebuilt
  /// name -> row map (no circuit scan).
  [[nodiscard]] std::optional<int> node_index(int node) const;
  [[nodiscard]] std::optional<int> node_index(std::string_view name) const;

  /// Row/column of an element's auxiliary branch current, when it has one.
  /// O(log #branches) through a prebuilt name -> row map.
  [[nodiscard]] std::optional<int> branch_index(std::string_view element_name) const;

  /// Assemble Y_MNA(s) as fresh triplets (compatibility path; throws
  /// std::invalid_argument when a CCCS/CCVS names a branchless element).
  [[nodiscard]] sparse::TripletMatrix matrix(std::complex<double> s) const;

  /// Pattern-cached assembly: rewrites only the value array of the cached
  /// CompressedMatrix (same error behavior as matrix()). The returned
  /// reference stays valid and pattern-stable across calls.
  const sparse::CompressedMatrix& assemble(std::complex<double> s);

  /// Batched SoA assembly into an external buffer (typically
  /// sparse::BatchedReplay::values()): lane l of CSR position k at
  /// dest[k * stride + l], each lane bit-identical to assemble(s[l]). Same
  /// error behavior as assemble(); the cached matrix values are untouched.
  void assemble_batch(std::complex<double>* dest, std::size_t stride,
                      const std::complex<double>* s, int lanes) const;

  /// Fused-assembly view for sparse::BatchedReplay: lane l of the view
  /// assembles bit-identical to assemble(s[l]) without materializing the
  /// value block (same error behavior as assemble_batch; the view borrows
  /// this assembler's arrays).
  [[nodiscard]] sparse::LaneAssembly lane_assembly(const std::complex<double>* s) const {
    require_stamps();
    return assembly_.lane_assembly(s);
  }

  /// Structural pattern of the cached assembly (values unspecified before
  /// the first assemble()) — the fingerprint batched replays check plans
  /// against.
  [[nodiscard]] const sparse::CompressedMatrix& pattern() const noexcept {
    return assembly_.matrix();
  }

  /// Excitation vector from the independent sources (AC magnitudes).
  [[nodiscard]] std::vector<std::complex<double>> excitation() const;

 private:
  void require_stamps() const;

  const netlist::Circuit& circuit_;
  int dim_ = 0;
  std::vector<int> node_to_row_;                  // -1 when inactive/ground
  std::map<std::string, int, std::less<>> branch_rows_;
  std::map<std::string, int, std::less<>> node_rows_by_name_;
  /// Merged stamps (conductance = s^0 part, capacitance = s^1 part) and the
  /// pattern-cached matrix they assemble into.
  std::vector<sparse::PatternStamp> stamps_;
  sparse::PatternedMatrix assembly_;
  /// Deferred stamp error (e.g. CCCS controlling element without a branch
  /// current): construction succeeds, matrix()/assemble() throw.
  std::string stamp_error_;
};

}  // namespace symref::mna
