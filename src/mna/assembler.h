// Full modified nodal analysis.
//
// Unknowns are the non-ground node voltages that at least one element
// touches, plus one auxiliary branch current per element that needs it
// (V sources, VCVS, CCVS, inductors, ideal opamps). This is the paper's
// eq. (7): Y_MNA * X = E. The assembler is the backbone of the AC simulator;
// the interpolation engine uses the leaner homogeneous NodalAssembler.
#pragma once

#include <complex>
#include <optional>
#include <string>
#include <vector>

#include "netlist/circuit.h"
#include "sparse/matrix.h"

namespace symref::mna {

class MnaAssembler {
 public:
  explicit MnaAssembler(const netlist::Circuit& circuit);

  /// System dimension: active nodes + auxiliary branch currents.
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Row/column of a node's voltage unknown; nullopt for ground or a node no
  /// element touches.
  [[nodiscard]] std::optional<int> node_index(int node) const;
  [[nodiscard]] std::optional<int> node_index(std::string_view name) const;

  /// Row/column of an element's auxiliary branch current, when it has one.
  [[nodiscard]] std::optional<int> branch_index(std::string_view element_name) const;

  /// Assemble Y_MNA(s).
  [[nodiscard]] sparse::TripletMatrix matrix(std::complex<double> s) const;

  /// Excitation vector from the independent sources (AC magnitudes).
  [[nodiscard]] std::vector<std::complex<double>> excitation() const;

 private:
  const netlist::Circuit& circuit_;
  int dim_ = 0;
  std::vector<int> node_to_row_;                  // -1 when inactive/ground
  std::vector<std::pair<std::string, int>> branch_rows_;
};

}  // namespace symref::mna
