#include "mna/sensitivity.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "mna/ac.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "numeric/stats.h"
#include "sparse/lu.h"

namespace symref::mna {

namespace {

using Complex = std::complex<double>;
constexpr double kTwoPi = 6.283185307179586476925286766559;

int row_or_ground(const NodalSystem& system, const std::string& name) {
  const auto row = system.row_of_node(name);
  return row ? *row : -1;
}

Complex pick(const std::vector<Complex>& v, int row) {
  return row < 0 ? Complex(0.0, 0.0) : v[static_cast<std::size_t>(row)];
}

/// Everything a band sweep reuses across frequencies: the nodal system, the
/// pattern-cached direct and transposed assemblies, both factorization plans
/// and the per-element stamp rows (node-name lookups done once, not per
/// frequency point).
class AdjointContext {
 public:
  AdjointContext(const netlist::Circuit& canonical, const TransferSpec& spec)
      : spec_(spec), system_(canonical) {
    in_pos_ = row_or_ground(system_, spec.in_pos);
    in_neg_ = row_or_ground(system_, spec.in_neg);
    out_pos_ = row_or_ground(system_, spec.out_pos);
    out_neg_ = row_or_ground(system_, spec.out_neg);

    // Drive admittance across the input pair (same Sherman-Morrison trick as
    // CofactorEvaluator: keeps Y factorable when the input node only controls
    // sources, changes neither N, D nor their element derivatives).
    std::vector<sparse::PatternStamp> stamps = system_.stamps();
    const double g_typ_raw = numeric::geometric_mean(canonical.conductance_values());
    const double g_typ = g_typ_raw > 0.0 ? g_typ_raw : 1.0;
    if (in_pos_ >= 0) stamps.push_back({in_pos_, in_pos_, g_typ, 0.0});
    if (in_neg_ >= 0) stamps.push_back({in_neg_, in_neg_, g_typ, 0.0});
    if (in_pos_ >= 0 && in_neg_ >= 0) {
      stamps.push_back({in_pos_, in_neg_, -g_typ, 0.0});
      stamps.push_back({in_neg_, in_pos_, -g_typ, 0.0});
    }
    std::vector<sparse::PatternStamp> transposed = stamps;
    for (sparse::PatternStamp& stamp : transposed) std::swap(stamp.row, stamp.col);
    direct_ = sparse::PatternedMatrix(system_.dim(), std::move(stamps));
    transposed_ = sparse::PatternedMatrix(system_.dim(), std::move(transposed));

    // Stamp pattern per element: output row pair (a, b), controlling column
    // pair (c, d) — resolved from node names once.
    auto row_of = [&](int node) {
      if (node == 0) return -1;
      const auto row = system_.row_of_node(canonical.node_name(node));
      return row ? *row : -1;
    };
    element_rows_.reserve(canonical.element_count());
    for (const auto& e : canonical.elements()) {
      ElementRows rows;
      rows.element = &e;
      rows.a = row_of(e.node_pos);
      rows.b = row_of(e.node_neg);
      rows.c = rows.a;
      rows.d = rows.b;
      if (e.kind == netlist::ElementKind::Vccs) {
        rows.c = row_of(e.ctrl_pos);
        rows.d = row_of(e.ctrl_neg);
      }
      element_rows_.push_back(rows);
    }
  }

  std::vector<ElementSensitivity> at(double frequency_hz) {
    const Complex s(0.0, kTwoPi * frequency_hz);

    const sparse::CompressedMatrix& matrix = direct_.assemble(s);
    if (!lu_.refactor(matrix) && !lu_.factor(matrix)) {
      throw std::runtime_error("ac_sensitivities: singular system");
    }
    const sparse::CompressedMatrix& matrix_t = transposed_.assemble(s);
    if (!lu_t_.refactor(matrix_t) && !lu_t_.factor(matrix_t)) {
      throw std::runtime_error("ac_sensitivities: singular transposed system");
    }

    const int n = system_.dim();
    auto unit_pair = [&](int pos, int neg) {
      std::vector<Complex> v(static_cast<std::size_t>(n));
      if (pos >= 0) v[static_cast<std::size_t>(pos)] += 1.0;
      if (neg >= 0) v[static_cast<std::size_t>(neg)] -= 1.0;
      return v;
    };

    // v: response to the input injection. w_num/w_den: adjoints of the
    // output and input selectors.
    std::vector<Complex> v = unit_pair(in_pos_, in_neg_);
    lu_.solve(v);
    std::vector<Complex> w_num = unit_pair(out_pos_, out_neg_);
    lu_t_.solve(w_num);
    std::vector<Complex> w_den = unit_pair(in_pos_, in_neg_);
    lu_t_.solve(w_den);

    const bool voltage_gain = spec_.kind == TransferSpec::Kind::VoltageGain;
    const Complex numerator = pick(v, out_pos_) - pick(v, out_neg_);
    const Complex denominator =
        voltage_gain ? pick(v, in_pos_) - pick(v, in_neg_) : Complex(1.0, 0.0);
    if (numerator == Complex(0.0, 0.0) || denominator == Complex(0.0, 0.0)) {
      throw std::runtime_error("ac_sensitivities: transfer function is zero at this point");
    }

    std::vector<ElementSensitivity> result;
    result.reserve(element_rows_.size());
    for (const ElementRows& rows : element_rows_) {
      const auto& e = *rows.element;
      Complex admittance;
      switch (e.kind) {
        case netlist::ElementKind::Conductance:
        case netlist::ElementKind::Vccs:
          admittance = Complex(e.value, 0.0);
          break;
        case netlist::ElementKind::Capacitor:
          admittance = s * e.value;
          break;
        default:
          continue;  // unreachable for canonical circuits
      }
      const Complex v_ctrl = pick(v, rows.c) - pick(v, rows.d);
      // dN/dy = -(w_num_a - w_num_b)(v_c - v_d); same shape for D.
      const Complex dn = -(pick(w_num, rows.a) - pick(w_num, rows.b)) * v_ctrl;
      const Complex dd = voltage_gain
                             ? -(pick(w_den, rows.a) - pick(w_den, rows.b)) * v_ctrl
                             : Complex(0.0, 0.0);
      // y * dH/dy / H = y * (dN/N - dD/D).
      const Complex normalized = admittance * (dn / numerator - dd / denominator);
      result.push_back({e.name, normalized});
    }
    return result;
  }

 private:
  struct ElementRows {
    const netlist::Element* element = nullptr;
    int a = -1;
    int b = -1;
    int c = -1;
    int d = -1;
  };

  const TransferSpec& spec_;
  NodalSystem system_;
  int in_pos_ = -1;
  int in_neg_ = -1;
  int out_pos_ = -1;
  int out_neg_ = -1;
  sparse::PatternedMatrix direct_;
  sparse::PatternedMatrix transposed_;
  sparse::SparseLu lu_;
  sparse::SparseLu lu_t_;
  std::vector<ElementRows> element_rows_;
};

}  // namespace

std::vector<ElementSensitivity> ac_sensitivities(const netlist::Circuit& canonical,
                                                 const TransferSpec& spec,
                                                 double frequency_hz) {
  if (!netlist::is_canonical(canonical)) {
    throw std::invalid_argument("ac_sensitivities: circuit is not canonical");
  }
  AdjointContext context(canonical, spec);
  return context.at(frequency_hz);
}

std::vector<ElementSensitivity> band_sensitivities(const netlist::Circuit& canonical,
                                                   const TransferSpec& spec,
                                                   double f_start_hz, double f_stop_hz,
                                                   int points_per_decade) {
  if (!netlist::is_canonical(canonical)) {
    throw std::invalid_argument("band_sensitivities: circuit is not canonical");
  }
  const std::vector<double> grid =
      log_frequency_grid(f_start_hz, f_stop_hz, points_per_decade);
  AdjointContext context(canonical, spec);
  std::vector<ElementSensitivity> worst;
  for (const double f : grid) {
    const auto at_f = context.at(f);
    if (worst.empty()) {
      worst = at_f;
      continue;
    }
    for (std::size_t i = 0; i < worst.size(); ++i) {
      if (std::abs(at_f[i].normalized) > std::abs(worst[i].normalized)) {
        worst[i].normalized = at_f[i].normalized;
      }
    }
  }
  return worst;
}

}  // namespace symref::mna
