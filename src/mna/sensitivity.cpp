#include "mna/sensitivity.h"

#include <cmath>
#include <stdexcept>

#include "mna/ac.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "numeric/stats.h"
#include "sparse/lu.h"

namespace symref::mna {

namespace {

using Complex = std::complex<double>;
constexpr double kTwoPi = 6.283185307179586476925286766559;

int row_or_ground(const NodalSystem& system, const std::string& name) {
  const auto row = system.row_of_node(name);
  return row ? *row : -1;
}

Complex pick(const std::vector<Complex>& v, int row) {
  return row < 0 ? Complex(0.0, 0.0) : v[static_cast<std::size_t>(row)];
}

}  // namespace

std::vector<ElementSensitivity> ac_sensitivities(const netlist::Circuit& canonical,
                                                 const TransferSpec& spec,
                                                 double frequency_hz) {
  if (!netlist::is_canonical(canonical)) {
    throw std::invalid_argument("ac_sensitivities: circuit is not canonical");
  }
  const NodalSystem system(canonical);
  const Complex s(0.0, kTwoPi * frequency_hz);

  const int in_pos = row_or_ground(system, spec.in_pos);
  const int in_neg = row_or_ground(system, spec.in_neg);
  const int out_pos = row_or_ground(system, spec.out_pos);
  const int out_neg = row_or_ground(system, spec.out_neg);

  // Drive admittance across the input pair (same Sherman-Morrison trick as
  // CofactorEvaluator: keeps Y factorable when the input node only controls
  // sources, changes neither N, D nor their element derivatives).
  sparse::TripletMatrix matrix = system.matrix(s, 1.0, 1.0);
  {
    const double g_typ = numeric::geometric_mean(canonical.conductance_values());
    const Complex y_drive(g_typ > 0.0 ? g_typ : 1.0, 0.0);
    if (in_pos >= 0) matrix.add(in_pos, in_pos, y_drive);
    if (in_neg >= 0) matrix.add(in_neg, in_neg, y_drive);
    if (in_pos >= 0 && in_neg >= 0) {
      matrix.add(in_pos, in_neg, -y_drive);
      matrix.add(in_neg, in_pos, -y_drive);
    }
  }

  // Direct factorization of Y and of Y^T (for the adjoint solves).
  sparse::SparseLu lu;
  if (!lu.factor(matrix)) throw std::runtime_error("ac_sensitivities: singular system");
  sparse::TripletMatrix transposed(matrix.dim());
  for (const auto& t : matrix.triplets()) transposed.add(t.col, t.row, t.value);
  sparse::SparseLu lu_t;
  if (!lu_t.factor(transposed)) {
    throw std::runtime_error("ac_sensitivities: singular transposed system");
  }

  const int n = system.dim();
  auto unit_pair = [&](int pos, int neg) {
    std::vector<Complex> v(static_cast<std::size_t>(n));
    if (pos >= 0) v[static_cast<std::size_t>(pos)] += 1.0;
    if (neg >= 0) v[static_cast<std::size_t>(neg)] -= 1.0;
    return v;
  };

  // v: response to the input injection. w_num/w_den: adjoints of the output
  // and input selectors.
  std::vector<Complex> v = unit_pair(in_pos, in_neg);
  lu.solve(v);
  std::vector<Complex> w_num = unit_pair(out_pos, out_neg);
  lu_t.solve(w_num);
  std::vector<Complex> w_den = unit_pair(in_pos, in_neg);
  lu_t.solve(w_den);

  const Complex numerator = pick(v, out_pos) - pick(v, out_neg);
  const Complex denominator = spec.kind == TransferSpec::Kind::VoltageGain
                                  ? pick(v, in_pos) - pick(v, in_neg)
                                  : Complex(1.0, 0.0);
  if (numerator == Complex(0.0, 0.0) || denominator == Complex(0.0, 0.0)) {
    throw std::runtime_error("ac_sensitivities: transfer function is zero at this point");
  }

  std::vector<ElementSensitivity> result;
  result.reserve(canonical.element_count());
  for (const auto& e : canonical.elements()) {
    // Stamp pattern: output row pair (a, b), controlling column pair (c, d).
    const auto row_of = [&](int node) {
      if (node == 0) return -1;
      const auto row = system.row_of_node(canonical.node_name(node));
      return row ? *row : -1;
    };
    const int a = row_of(e.node_pos);
    const int b = row_of(e.node_neg);
    int c = a;
    int d = b;
    Complex admittance;
    switch (e.kind) {
      case netlist::ElementKind::Conductance:
        admittance = Complex(e.value, 0.0);
        break;
      case netlist::ElementKind::Capacitor:
        admittance = s * e.value;
        break;
      case netlist::ElementKind::Vccs:
        admittance = Complex(e.value, 0.0);
        c = row_of(e.ctrl_pos);
        d = row_of(e.ctrl_neg);
        break;
      default:
        continue;  // unreachable for canonical circuits
    }
    const Complex v_ctrl = pick(v, c) - pick(v, d);
    // dN/dy = -(w_num_a - w_num_b)(v_c - v_d); same shape for D.
    const Complex dn = -(pick(w_num, a) - pick(w_num, b)) * v_ctrl;
    const Complex dd = spec.kind == TransferSpec::Kind::VoltageGain
                           ? -(pick(w_den, a) - pick(w_den, b)) * v_ctrl
                           : Complex(0.0, 0.0);
    // y * dH/dy / H = y * (dN/N - dD/D).
    const Complex normalized = admittance * (dn / numerator - dd / denominator);
    result.push_back({e.name, normalized});
  }
  return result;
}

std::vector<ElementSensitivity> band_sensitivities(const netlist::Circuit& canonical,
                                                   const TransferSpec& spec,
                                                   double f_start_hz, double f_stop_hz,
                                                   int points_per_decade) {
  const std::vector<double> grid =
      log_frequency_grid(f_start_hz, f_stop_hz, points_per_decade);
  std::vector<ElementSensitivity> worst;
  for (const double f : grid) {
    const auto at_f = ac_sensitivities(canonical, spec, f);
    if (worst.empty()) {
      worst = at_f;
      continue;
    }
    for (std::size_t i = 0; i < worst.size(); ++i) {
      if (std::abs(at_f[i].normalized) > std::abs(worst[i].normalized)) {
        worst[i].normalized = at_f[i].normalized;
      }
    }
  }
  return worst;
}

}  // namespace symref::mna
