// Large-signal device model evaluation.
//
// Every model exposes its Newton companion form: terminal currents, the
// Jacobian conductances (derivatives of the terminal currents with respect
// to the terminal voltages), and the equivalent current sources
//   ieq = i(v0) - sum_j g_j * v0_j
// so that the linearized branch  i ~= sum_j g_j * v_j + ieq  stamps into the
// MNA matrix exactly like a conductance network plus an independent source
// (the classic SPICE companion model).
//
// Polarity convention: all evaluation happens in the positive-polarity
// frame. For pnp/pmos devices the caller negates the junction voltages on
// the way in and the terminal currents on the way out; because every
// Jacobian entry is d(pol*i)/d(pol*v) = di/dv, the conductances need no
// sign flip (see netlist::Device::polarity).
//
// Numerical safety: exponentials are linearized above kMaxExpArg so an
// un-limited Newton excursion yields a huge-but-finite conductance instead
// of inf/nan, and pnjlim() (Nagel's junction limiting) keeps successive
// junction-voltage iterates inside the range where the exponential is
// meaningful.
#pragma once

#include "netlist/device.h"
#include "netlist/devices.h"

namespace symref::devices {

/// Thermal voltage kT/q at the engine's fixed nominal temperature (300 K);
/// the same constant BjtParams::from_bias uses, so DC solutions and
/// small-signal expansions share one temperature.
inline constexpr double kThermalVoltage = 0.02585;

/// Exponential arguments above this are continued linearly (exp stays
/// first-order consistent: f(x) = e^c * (1 + x - c)).
inline constexpr double kMaxExpArg = 80.0;

/// Value/derivative pair of the guarded exponential.
struct ExpPair {
  double f = 0.0;
  double df = 0.0;
};

/// e^x with a linear continuation above kMaxExpArg (keeps f and df finite
/// and consistent: above the cap df is constant and f integrates it).
[[nodiscard]] ExpPair guarded_exp(double x) noexcept;

/// Critical voltage of a junction: the voltage where the exponential's
/// curvature starts defeating plain Newton (vcrit = nVt * ln(nVt/(is*sqrt2))).
[[nodiscard]] double junction_vcrit(double is, double n_vt) noexcept;

/// Nagel's pnjlim: limit the new junction-voltage iterate `v_new` against
/// the previous one `v_old`. Returns the limited voltage; *limited is set
/// when the iterate was changed (the Newton loop must then keep iterating).
[[nodiscard]] double pnjlim(double v_new, double v_old, double n_vt, double vcrit,
                            bool* limited) noexcept;

// --- Diode ----------------------------------------------------------------

/// Companion linearization of  id = is*(e^{vd/(n vt)} - 1)  at vd.
struct DiodeEval {
  double id = 0.0;   // diode current at vd [A]
  double gd = 0.0;   // d id / d vd [S]
  double ieq = 0.0;  // id - gd*vd (companion current source) [A]
};
[[nodiscard]] DiodeEval eval_diode(const netlist::DeviceModel& model, double vd) noexcept;

// --- BJT (Ebers-Moll transport form) --------------------------------------

/// Terminal currents (into collector and base) and their derivatives with
/// respect to (vbe, vbc) at the evaluation point. The emitter current is
/// -(ic + ib). vaf/rb are small-signal-only parameters: the DC model is the
/// ideal three-terminal Ebers-Moll transport model
///   icc = is*(e^{vbe/vt}-1),  iec = is*(e^{vbc/vt}-1)
///   ic  = icc - iec*(1 + 1/br),   ib = icc/bf + iec/br.
struct BjtEval {
  double ic = 0.0;      // collector terminal current [A]
  double ib = 0.0;      // base terminal current [A]
  double dic_dvbe = 0.0;  // = gcc
  double dic_dvbc = 0.0;  // = -gec*(1+1/br)
  double dib_dvbe = 0.0;  // = gcc/bf
  double dib_dvbc = 0.0;  // = gec/br
  double ic_eq = 0.0;   // ic - dic_dvbe*vbe - dic_dvbc*vbc
  double ib_eq = 0.0;   // ib - dib_dvbe*vbe - dib_dvbc*vbc
};
[[nodiscard]] BjtEval eval_bjt(const netlist::DeviceModel& model, double vbe,
                               double vbc) noexcept;

// --- MOS level 1 ----------------------------------------------------------

/// Drain current and derivatives at (vgs, vds), source-referenced. For
/// vds < 0 the drain and source roles swap internally (symmetric device);
/// the returned derivatives are still with respect to the *terminal*
/// voltages vgs/vds, so the caller stamps them unchanged.
struct MosEval {
  double id = 0.0;      // drain terminal current [A]
  double did_dvgs = 0.0;  // gm
  double did_dvds = 0.0;  // gds
  double id_eq = 0.0;   // id - gm*vgs - gds*vds
};
[[nodiscard]] MosEval eval_mos(const netlist::DeviceModel& model, double vgs,
                               double vds) noexcept;

// --- Small-signal extraction ----------------------------------------------

/// Hybrid-pi parameters of a BJT at the solved bias (collector current in
/// the positive-polarity frame). Routed through netlist::BjtParams::from_bias
/// so a device-level linearization and a hand-built reference built from the
/// same currents produce bit-identical elements.
[[nodiscard]] netlist::BjtParams bjt_small_signal(const netlist::DeviceModel& model,
                                                  double ic) noexcept;

/// Small-signal MOS parameters at the solved bias.
[[nodiscard]] netlist::MosParams mos_small_signal(const netlist::DeviceModel& model, double vgs,
                                                  double vds) noexcept;

/// Small-signal diode: conductance gd at bias plus the junction capacitance
/// c = tt*gd + cj (diffusion + depletion).
struct DiodeSmallSignal {
  double gd = 0.0;
  double c = 0.0;
};
[[nodiscard]] DiodeSmallSignal diode_small_signal(const netlist::DeviceModel& model,
                                                  double vd) noexcept;

}  // namespace symref::devices
