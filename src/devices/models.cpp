#include "devices/models.h"

#include <cmath>

namespace symref::devices {

ExpPair guarded_exp(double x) noexcept {
  ExpPair e;
  if (x > kMaxExpArg) {
    const double cap = std::exp(kMaxExpArg);
    e.df = cap;
    e.f = cap * (1.0 + (x - kMaxExpArg));
    return e;
  }
  e.f = std::exp(x);
  e.df = e.f;
  return e;
}

double junction_vcrit(double is, double n_vt) noexcept {
  return n_vt * std::log(n_vt / (is * std::sqrt(2.0)));
}

double pnjlim(double v_new, double v_old, double n_vt, double vcrit, bool* limited) noexcept {
  // Nagel (SPICE2 §). Above vcrit the exponential doubles every ~0.7*nVt, so
  // raw Newton steps overshoot by many orders of magnitude; replace the step
  // with a logarithmic one that tracks the current instead of the voltage.
  if (v_new > vcrit && std::fabs(v_new - v_old) > 2.0 * n_vt) {
    if (v_old > 0.0) {
      const double arg = 1.0 + (v_new - v_old) / n_vt;
      if (arg > 0.0) {
        v_new = v_old + n_vt * std::log(arg);
      } else {
        v_new = vcrit;
      }
    } else {
      v_new = n_vt * std::log(v_new / n_vt);
    }
    *limited = true;
  }
  return v_new;
}

DiodeEval eval_diode(const netlist::DeviceModel& model, double vd) noexcept {
  const double n_vt = model.n * kThermalVoltage;
  const ExpPair e = guarded_exp(vd / n_vt);
  DiodeEval out;
  out.id = model.is * (e.f - 1.0);
  out.gd = model.is * e.df / n_vt;
  out.ieq = out.id - out.gd * vd;
  return out;
}

BjtEval eval_bjt(const netlist::DeviceModel& model, double vbe, double vbc) noexcept {
  const double n_vt = model.n * kThermalVoltage;
  const ExpPair ef = guarded_exp(vbe / n_vt);
  const ExpPair er = guarded_exp(vbc / n_vt);
  const double icc = model.is * (ef.f - 1.0);
  const double iec = model.is * (er.f - 1.0);
  const double gcc = model.is * ef.df / n_vt;  // d icc / d vbe
  const double gec = model.is * er.df / n_vt;  // d iec / d vbc

  BjtEval out;
  out.ic = icc - iec * (1.0 + 1.0 / model.br);
  out.ib = icc / model.bf + iec / model.br;
  out.dic_dvbe = gcc;
  out.dic_dvbc = -gec * (1.0 + 1.0 / model.br);
  out.dib_dvbe = gcc / model.bf;
  out.dib_dvbc = gec / model.br;
  out.ic_eq = out.ic - out.dic_dvbe * vbe - out.dic_dvbc * vbc;
  out.ib_eq = out.ib - out.dib_dvbe * vbe - out.dib_dvbc * vbc;
  return out;
}

MosEval eval_mos(const netlist::DeviceModel& model, double vgs, double vds) noexcept {
  // Symmetric device: for vds < 0 the physical source is the higher-voltage
  // terminal; evaluate in the swapped frame and map the derivatives back
  // (id' = -id, vgs' = vgs - vds = vgd, vds' = -vds).
  const bool swapped = vds < 0.0;
  const double vgs_eff = swapped ? vgs - vds : vgs;
  const double vds_eff = swapped ? -vds : vds;

  const double vov = vgs_eff - model.vto;  // overdrive
  double id = 0.0, gm = 0.0, gds = 0.0;
  if (vov > 0.0) {
    const double clm = 1.0 + model.lambda * vds_eff;
    if (vds_eff < vov) {
      // Triode.
      id = model.kp * (vov * vds_eff - 0.5 * vds_eff * vds_eff) * clm;
      gm = model.kp * vds_eff * clm;
      gds = model.kp * ((vov - vds_eff) * clm +
                        (vov * vds_eff - 0.5 * vds_eff * vds_eff) * model.lambda);
    } else {
      // Saturation.
      id = 0.5 * model.kp * vov * vov * clm;
      gm = model.kp * vov * clm;
      gds = 0.5 * model.kp * vov * vov * model.lambda;
    }
  }

  MosEval out;
  if (swapped) {
    // id(vgs, vds) = -id'(vgs - vds, -vds):
    //   d id/d vgs = -gm';  d id/d vds = -(gm' * -1 + gds' * -1) = gm' + gds'.
    out.id = -id;
    out.did_dvgs = -gm;
    out.did_dvds = gm + gds;
  } else {
    out.id = id;
    out.did_dvgs = gm;
    out.did_dvds = gds;
  }
  out.id_eq = out.id - out.did_dvgs * vgs - out.did_dvds * vds;
  return out;
}

netlist::BjtParams bjt_small_signal(const netlist::DeviceModel& model, double ic) noexcept {
  const double ic_mag = std::fabs(ic);
  if (ic_mag > 0.0) {
    return netlist::BjtParams::from_bias(ic_mag, model.bf, model.vaf, model.tf, model.cje,
                                         model.cjc, model.ccs, model.rb);
  }
  // Cut-off device: no transconductance, infinite ro; only the junction
  // capacitances survive.
  netlist::BjtParams p;
  p.cpi = model.cje;
  p.cmu = model.cjc;
  p.ccs = model.ccs;
  p.rb = model.rb;
  return p;
}

netlist::MosParams mos_small_signal(const netlist::DeviceModel& model, double vgs,
                                    double vds) noexcept {
  const MosEval e = eval_mos(model, vgs, vds);
  netlist::MosParams p;
  p.gm = e.did_dvgs;
  p.gds = e.did_dvds;
  p.cgs = model.cgs;
  p.cgd = model.cgd;
  p.cdb = model.cdb;
  return p;
}

DiodeSmallSignal diode_small_signal(const netlist::DeviceModel& model, double vd) noexcept {
  const DiodeEval e = eval_diode(model, vd);
  DiodeSmallSignal s;
  s.gd = e.gd;
  s.c = model.tt * e.gd + model.cj;
  return s;
}

}  // namespace symref::devices
