// Circuit element model.
//
// Terminal conventions follow SPICE: two-terminal elements connect
// (node_pos, node_neg); controlled sources add a controlling node pair or a
// controlling branch (the name of a source element whose current is sensed).
#pragma once

#include <string>

namespace symref::netlist {

enum class ElementKind {
  Resistor,       // R: value = ohms
  Conductance,    // G prefix "G" used for VCCS in SPICE; this is our internal kind
  Capacitor,      // C: value = farads
  Inductor,       // L: value = henries
  Vccs,           // G: i(pos->neg) = value * v(ctrl_pos, ctrl_neg)   [gm, siemens]
  Vcvs,           // E: v(pos,neg) = value * v(ctrl_pos, ctrl_neg)    [gain]
  Cccs,           // F: i(pos->neg) = value * i(ctrl_branch)          [gain]
  Ccvs,           // H: v(pos,neg) = value * i(ctrl_branch)           [ohms]
  VoltageSource,  // V: value = AC magnitude, dc_value = DC bias level
  CurrentSource,  // I: value = AC magnitude, dc_value = DC bias level
  IdealOpAmp,     // O: v(pos) driven so that v(ctrl_pos) == v(ctrl_neg)
};

/// Human-readable kind name ("resistor", "vccs", ...).
const char* kind_name(ElementKind kind) noexcept;

/// Time-domain shape of an independent source (transient analysis). A source
/// without an explicit waveform holds its DC level for all t; PULSE and SIN
/// follow the SPICE card semantics.
enum class WaveformKind {
  kDc,     // constant at Element::dc_value
  kPulse,  // PULSE(v1 v2 td tr tf pw per)
  kSin,    // SIN(vo va freq td theta)
};

struct Waveform {
  WaveformKind kind = WaveformKind::kDc;

  // PULSE: v1 = initial level, v2 = pulsed level. SIN: v1 = offset vo,
  // v2 = amplitude va.
  double v1 = 0.0;
  double v2 = 0.0;
  /// Both: delay td before the waveform starts (holds v1 / vo until then).
  double delay = 0.0;

  // PULSE only.
  double rise = 0.0;    // tr: 0 = instantaneous edge
  double fall = 0.0;    // tf
  double width = 0.0;   // pw: 0 = holds v2 until fall of the period
  double period = 0.0;  // per: 0 = single pulse

  // SIN only.
  double frequency = 0.0;  // hertz
  double damping = 0.0;    // theta: exp(-(t - td) * theta) envelope

  /// Source level at time t (seconds). kDc returns `dc`, the element's bias
  /// level — callers pass Element::dc_value.
  [[nodiscard]] double value_at(double t, double dc) const noexcept;
};

struct Element {
  ElementKind kind = ElementKind::Resistor;
  std::string name;

  // Node indices into the owning Circuit (0 = ground).
  int node_pos = 0;
  int node_neg = 0;
  int ctrl_pos = -1;  // controlled sources only
  int ctrl_neg = -1;

  /// CCCS/CCVS: name of the element whose branch current controls this one.
  std::string ctrl_branch;

  double value = 0.0;

  /// Independent sources only: the DC operating-point level (volts/amps).
  /// The AC engines ignore it; the dc:: Newton solver drives the bias with
  /// it. `value` stays the AC magnitude, so pre-existing linear netlists
  /// keep their meaning unchanged.
  double dc_value = 0.0;

  /// Independent sources only: time-domain shape for transient analysis
  /// (kDc = hold dc_value). Ignored by the DC and AC engines.
  Waveform waveform;

  /// Source level at time t: the waveform when one was given, dc_value
  /// otherwise.
  [[nodiscard]] double transient_value(double t) const noexcept {
    return waveform.value_at(t, dc_value);
  }

  [[nodiscard]] bool is_controlled() const noexcept {
    return kind == ElementKind::Vccs || kind == ElementKind::Vcvs ||
           kind == ElementKind::Cccs || kind == ElementKind::Ccvs;
  }
  [[nodiscard]] bool is_source() const noexcept {
    return kind == ElementKind::VoltageSource || kind == ElementKind::CurrentSource;
  }
  /// True for elements whose MNA stamp needs an auxiliary branch current.
  [[nodiscard]] bool needs_branch_current() const noexcept {
    return kind == ElementKind::VoltageSource || kind == ElementKind::Vcvs ||
           kind == ElementKind::Ccvs || kind == ElementKind::Inductor ||
           kind == ElementKind::IdealOpAmp;
  }
};

}  // namespace symref::netlist
