// Circuit element model.
//
// Terminal conventions follow SPICE: two-terminal elements connect
// (node_pos, node_neg); controlled sources add a controlling node pair or a
// controlling branch (the name of a source element whose current is sensed).
#pragma once

#include <string>

namespace symref::netlist {

enum class ElementKind {
  Resistor,       // R: value = ohms
  Conductance,    // G prefix "G" used for VCCS in SPICE; this is our internal kind
  Capacitor,      // C: value = farads
  Inductor,       // L: value = henries
  Vccs,           // G: i(pos->neg) = value * v(ctrl_pos, ctrl_neg)   [gm, siemens]
  Vcvs,           // E: v(pos,neg) = value * v(ctrl_pos, ctrl_neg)    [gain]
  Cccs,           // F: i(pos->neg) = value * i(ctrl_branch)          [gain]
  Ccvs,           // H: v(pos,neg) = value * i(ctrl_branch)           [ohms]
  VoltageSource,  // V: value = AC magnitude, dc_value = DC bias level
  CurrentSource,  // I: value = AC magnitude, dc_value = DC bias level
  IdealOpAmp,     // O: v(pos) driven so that v(ctrl_pos) == v(ctrl_neg)
};

/// Human-readable kind name ("resistor", "vccs", ...).
const char* kind_name(ElementKind kind) noexcept;

struct Element {
  ElementKind kind = ElementKind::Resistor;
  std::string name;

  // Node indices into the owning Circuit (0 = ground).
  int node_pos = 0;
  int node_neg = 0;
  int ctrl_pos = -1;  // controlled sources only
  int ctrl_neg = -1;

  /// CCCS/CCVS: name of the element whose branch current controls this one.
  std::string ctrl_branch;

  double value = 0.0;

  /// Independent sources only: the DC operating-point level (volts/amps).
  /// The AC engines ignore it; the dc:: Newton solver drives the bias with
  /// it. `value` stays the AC magnitude, so pre-existing linear netlists
  /// keep their meaning unchanged.
  double dc_value = 0.0;

  [[nodiscard]] bool is_controlled() const noexcept {
    return kind == ElementKind::Vccs || kind == ElementKind::Vcvs ||
           kind == ElementKind::Cccs || kind == ElementKind::Ccvs;
  }
  [[nodiscard]] bool is_source() const noexcept {
    return kind == ElementKind::VoltageSource || kind == ElementKind::CurrentSource;
  }
  /// True for elements whose MNA stamp needs an auxiliary branch current.
  [[nodiscard]] bool needs_branch_current() const noexcept {
    return kind == ElementKind::VoltageSource || kind == ElementKind::Vcvs ||
           kind == ElementKind::Ccvs || kind == ElementKind::Inductor ||
           kind == ElementKind::IdealOpAmp;
  }
};

}  // namespace symref::netlist
