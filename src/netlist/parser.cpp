#include "netlist/parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "netlist/devices.h"
#include "numeric/units.h"

namespace symref::netlist {

namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// 1-based source position of a token (continuation lines keep the physical
/// line they came from, not the logical line's first line).
struct TokenPos {
  int line = 0;
  int column = 0;
};

struct LogicalLine {
  int number = 0;  // 1-based source line of the first physical line
  std::vector<std::string> tokens;
  std::vector<TokenPos> pos;  // parallel to tokens

  /// ParseError pointing at token `index` (falls back to the line when the
  /// index names a missing token).
  [[nodiscard]] ParseError error(std::size_t index, const std::string& message) const {
    if (index < pos.size()) return ParseError(pos[index].line, pos[index].column, message);
    return ParseError(number, message);
  }
};

/// Strip comments, join continuations, tokenize with source positions.
std::vector<LogicalLine> tokenize(std::string_view text) {
  std::vector<LogicalLine> lines;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    // Trailing comments (only truncate, so columns stay those of the source).
    for (const char marker : {';', '$'}) {
      const auto pos = raw.find(marker);
      if (pos != std::string::npos) raw.erase(pos);
    }
    // Leading whitespace.
    std::size_t begin = raw.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    if (raw[begin] == '*' || raw[begin] == '#') continue;

    const bool continuation = raw[begin] == '+';
    if (continuation) ++begin;

    std::vector<std::string> tokens;
    std::vector<TokenPos> pos;
    std::size_t at = begin;
    while (at < raw.size()) {
      at = raw.find_first_not_of(" \t\r", at);
      if (at == std::string::npos) break;
      std::size_t end = raw.find_first_of(" \t\r", at);
      if (end == std::string::npos) end = raw.size();
      tokens.push_back(raw.substr(at, end - at));
      pos.push_back({number, static_cast<int>(at) + 1});
      at = end;
    }
    if (tokens.empty()) continue;

    if (continuation) {
      if (lines.empty()) {
        throw ParseError(number, static_cast<int>(begin),
                         "continuation '+' with no previous line");
      }
      auto& previous = lines.back();
      previous.tokens.insert(previous.tokens.end(), tokens.begin(), tokens.end());
      previous.pos.insert(previous.pos.end(), pos.begin(), pos.end());
    } else {
      lines.push_back({number, std::move(tokens), std::move(pos)});
    }
  }
  return lines;
}

double parse_value(const LogicalLine& line, std::size_t index) {
  const std::string& token = line.tokens[index];
  const auto value = numeric::parse_engineering(token);
  if (!value) throw line.error(index, "bad numeric value '" + token + "'");
  return *value;
}

struct ModelCard {
  std::string type;  // "bjt" or "mos"
  std::map<std::string, double> params;
};

struct SubcktDef {
  std::vector<std::string> ports;
  std::vector<LogicalLine> body;
};

class Parser {
 public:
  Circuit run(std::string_view text) {
    const std::vector<LogicalLine> lines = tokenize(text);

    // First pass: collect .model and .subckt cards.
    std::size_t i = 0;
    std::vector<LogicalLine> top_level;
    while (i < lines.size()) {
      const LogicalLine& line = lines[i];
      const std::string head = to_lower(line.tokens.front());
      if (head == ".model") {
        collect_model(line);
        ++i;
      } else if (head == ".subckt") {
        i = collect_subckt(lines, i);
      } else if (head == ".end") {
        break;
      } else {
        top_level.push_back(line);
        ++i;
      }
    }

    for (const LogicalLine& line : top_level) {
      dispatch(line, /*prefix=*/"", /*port_map=*/{});
    }
    return std::move(circuit_);
  }

 private:
  void collect_model(const LogicalLine& line) {
    if (line.tokens.size() < 3) throw line.error(0, ".model needs a name and a type");
    ModelCard card;
    const std::string name = to_lower(line.tokens[1]);
    card.type = to_lower(line.tokens[2]);
    if (card.type != "bjt" && card.type != "mos") {
      throw line.error(2, "unknown model type '" + card.type + "'");
    }
    for (std::size_t t = 3; t < line.tokens.size(); ++t) {
      const std::string& token = line.tokens[t];
      const auto eq = token.find('=');
      if (eq == std::string::npos) {
        throw line.error(t, "model parameter '" + token + "' is not key=value");
      }
      const std::string key = to_lower(token.substr(0, eq));
      const auto value = numeric::parse_engineering(token.substr(eq + 1));
      if (!value) throw line.error(t, "bad model value in '" + token + "'");
      card.params[key] = *value;
    }
    models_[name] = std::move(card);
  }

  std::size_t collect_subckt(const std::vector<LogicalLine>& lines, std::size_t start) {
    const LogicalLine& header = lines[start];
    if (header.tokens.size() < 2) throw header.error(0, ".subckt needs a name");
    SubcktDef def;
    const std::string name = to_lower(header.tokens[1]);
    def.ports.assign(header.tokens.begin() + 2, header.tokens.end());
    std::size_t i = start + 1;
    while (i < lines.size()) {
      const std::string head = to_lower(lines[i].tokens.front());
      if (head == ".ends") {
        subckts_[name] = std::move(def);
        return i + 1;
      }
      if (head == ".subckt") {
        throw lines[i].error(0, "nested .subckt definitions are not supported");
      }
      def.body.push_back(lines[i]);
      ++i;
    }
    throw ParseError(header.number, ".subckt '" + name + "' has no matching .ends");
  }

  /// Resolve a node token through the subcircuit port map and prefix.
  std::string resolve_node(const std::string& token,
                           const std::map<std::string, std::string>& port_map,
                           const std::string& prefix) const {
    if (token == "0" || token == "gnd" || token == "GND") return "0";
    const auto it = port_map.find(token);
    if (it != port_map.end()) return it->second;
    return prefix.empty() ? token : prefix + token;
  }

  void dispatch(const LogicalLine& line, const std::string& prefix,
                const std::map<std::string, std::string>& port_map) {
    const std::string& first = line.tokens.front();
    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(first[0])));
    const std::string name = prefix + first;

    auto node = [&](std::size_t index) -> std::string {
      if (index >= line.tokens.size()) {
        throw line.error(0, "'" + first + "': missing node");
      }
      return resolve_node(line.tokens[index], port_map, prefix);
    };
    auto value_token = [&](std::size_t index) -> std::size_t {
      if (index >= line.tokens.size()) {
        throw line.error(0, "'" + first + "': missing value");
      }
      return index;
    };
    auto require_tokens = [&](std::size_t count) {
      if (line.tokens.size() < count) {
        throw line.error(0, "'" + first + "': expected at least " +
                                std::to_string(count - 1) + " fields");
      }
    };

    switch (kind) {
      case 'r':
        require_tokens(4);
        circuit_.add_resistor(name, node(1), node(2), parse_value(line, value_token(3)));
        break;
      case 'c':
        require_tokens(4);
        circuit_.add_capacitor(name, node(1), node(2), parse_value(line, value_token(3)));
        break;
      case 'l':
        require_tokens(4);
        circuit_.add_inductor(name, node(1), node(2), parse_value(line, value_token(3)));
        break;
      case 'g':
        require_tokens(6);
        circuit_.add_vccs(name, node(1), node(2), node(3), node(4),
                          parse_value(line, value_token(5)));
        break;
      case 'e':
        require_tokens(6);
        circuit_.add_vcvs(name, node(1), node(2), node(3), node(4),
                          parse_value(line, value_token(5)));
        break;
      case 'f':
        require_tokens(5);
        circuit_.add_cccs(name, node(1), node(2), prefix + line.tokens[3],
                          parse_value(line, value_token(4)));
        break;
      case 'h':
        require_tokens(5);
        circuit_.add_ccvs(name, node(1), node(2), prefix + line.tokens[3],
                          parse_value(line, value_token(4)));
        break;
      case 'v':
      case 'i': {
        require_tokens(3);
        double magnitude = 1.0;
        for (std::size_t t = 3; t < line.tokens.size(); ++t) {
          if (to_lower(line.tokens[t]) == "ac" || to_lower(line.tokens[t]) == "dc") continue;
          magnitude = parse_value(line, t);
        }
        if (kind == 'v') {
          circuit_.add_vsource(name, node(1), node(2), magnitude);
        } else {
          circuit_.add_isource(name, node(1), node(2), magnitude);
        }
        break;
      }
      case 'o':
        require_tokens(4);
        circuit_.add_opamp(name, node(1), node(2), node(3));
        break;
      case 'q': {
        require_tokens(5);
        const std::string model = to_lower(line.tokens[4]);
        const auto it = models_.find(model);
        if (it == models_.end() || it->second.type != "bjt") {
          throw line.error(4, "'" + first + "': unknown bjt model '" + model + "'");
        }
        BjtParams p;
        const auto& params = it->second.params;
        auto get = [&](const char* key) {
          const auto pit = params.find(key);
          return pit == params.end() ? 0.0 : pit->second;
        };
        p.gm = get("gm");
        p.beta = get("beta");
        p.ro = get("ro");
        p.rb = get("rb");
        p.cpi = get("cpi");
        p.cmu = get("cmu");
        p.ccs = get("ccs");
        expand_bjt(circuit_, name, node(1), node(2), node(3), p);
        break;
      }
      case 'm': {
        require_tokens(5);
        const std::string model = to_lower(line.tokens[4]);
        const auto it = models_.find(model);
        if (it == models_.end() || it->second.type != "mos") {
          throw line.error(4, "'" + first + "': unknown mos model '" + model + "'");
        }
        MosParams p;
        const auto& params = it->second.params;
        auto get = [&](const char* key) {
          const auto pit = params.find(key);
          return pit == params.end() ? 0.0 : pit->second;
        };
        p.gm = get("gm");
        p.gds = get("gds");
        p.cgs = get("cgs");
        p.cgd = get("cgd");
        p.cdb = get("cdb");
        expand_mos(circuit_, name, node(1), node(2), node(3), p);
        break;
      }
      case 'x':
        expand_subckt(line, prefix, port_map);
        break;
      case '.': {
        const std::string head = to_lower(first);
        if (head == ".title") {
          std::string title;
          for (std::size_t t = 1; t < line.tokens.size(); ++t) {
            if (t > 1) title += ' ';
            title += line.tokens[t];
          }
          circuit_.title = title;
        } else {
          throw line.error(0, "unknown directive '" + first + "'");
        }
        break;
      }
      default:
        throw line.error(0, "unknown element card '" + first + "'");
    }
  }

  void expand_subckt(const LogicalLine& line, const std::string& outer_prefix,
                     const std::map<std::string, std::string>& outer_map) {
    if (line.tokens.size() < 2) throw line.error(0, "X card needs a subckt name");
    const std::string subckt_name = to_lower(line.tokens.back());
    const auto it = subckts_.find(subckt_name);
    if (it == subckts_.end()) {
      throw line.error(line.tokens.size() - 1,
                       "unknown subcircuit '" + line.tokens.back() + "'");
    }
    const SubcktDef& def = it->second;
    const std::size_t node_count = line.tokens.size() - 2;
    if (node_count != def.ports.size()) {
      throw line.error(0, "subckt '" + subckt_name + "' expects " +
                              std::to_string(def.ports.size()) + " nodes, got " +
                              std::to_string(node_count));
    }
    const std::string prefix = outer_prefix + line.tokens.front() + ".";
    std::map<std::string, std::string> port_map;
    for (std::size_t p = 0; p < def.ports.size(); ++p) {
      // The instance's node tokens are resolved in the *outer* scope.
      port_map[def.ports[p]] = resolve_node(line.tokens[1 + p], outer_map, outer_prefix);
    }
    for (const LogicalLine& body_line : def.body) {
      dispatch(body_line, prefix, port_map);
    }
  }

  Circuit circuit_;
  std::map<std::string, ModelCard> models_;
  std::map<std::string, SubcktDef> subckts_;
};

}  // namespace

Circuit parse_netlist(std::string_view text) {
  Parser parser;
  return parser.run(text);
}

}  // namespace symref::netlist
