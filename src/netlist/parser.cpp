#include "netlist/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <utility>

#include "netlist/devices.h"
#include "netlist/expression.h"
#include "numeric/units.h"

namespace symref::netlist {

namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// 1-based source position of a token (continuation lines keep the physical
/// line they came from, not the logical line's first line).
struct TokenPos {
  int line = 0;
  int column = 0;
};

struct LogicalLine {
  int number = 0;  // 1-based source line of the first physical line
  std::vector<std::string> tokens;
  std::vector<TokenPos> pos;  // parallel to tokens

  /// ParseError pointing at token `index` (falls back to the line when the
  /// index names a missing token).
  [[nodiscard]] ParseError error(std::size_t index, const std::string& message) const {
    if (index < pos.size()) return ParseError(pos[index].line, pos[index].column, message);
    return ParseError(number, message);
  }
};

/// Strip comments, join continuations, tokenize with source positions.
/// A `{...}` group is one token even when the expression contains spaces.
std::vector<LogicalLine> tokenize(std::string_view text) {
  std::vector<LogicalLine> lines;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    // Trailing comments (only truncate, so columns stay those of the source).
    for (const char marker : {';', '$'}) {
      const auto pos = raw.find(marker);
      if (pos != std::string::npos) raw.erase(pos);
    }
    // Leading whitespace.
    std::size_t begin = raw.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    if (raw[begin] == '*' || raw[begin] == '#') continue;

    const bool continuation = raw[begin] == '+';
    if (continuation) ++begin;

    std::vector<std::string> tokens;
    std::vector<TokenPos> pos;
    std::size_t at = begin;
    while (at < raw.size()) {
      at = raw.find_first_not_of(" \t\r", at);
      if (at == std::string::npos) break;
      // Scan to the next whitespace, treating a balanced {...} group (which
      // may contain whitespace) as part of the current token.
      std::size_t end = at;
      while (end < raw.size()) {
        const char c = raw[end];
        if (c == ' ' || c == '\t' || c == '\r') break;
        if (c == '{') {
          const std::size_t open = end;
          int depth = 1;
          ++end;
          while (end < raw.size() && depth > 0) {
            if (raw[end] == '{') ++depth;
            if (raw[end] == '}') --depth;
            ++end;
          }
          if (depth > 0) {
            throw ParseError(number, static_cast<int>(open) + 1,
                             "unterminated '{' expression");
          }
          continue;
        }
        ++end;
      }
      tokens.push_back(raw.substr(at, end - at));
      pos.push_back({number, static_cast<int>(at) + 1});
      at = end;
    }
    if (tokens.empty()) continue;

    if (continuation) {
      if (lines.empty()) {
        throw ParseError(number, static_cast<int>(begin),
                         "continuation '+' with no previous line");
      }
      auto& previous = lines.back();
      previous.tokens.insert(previous.tokens.end(), tokens.begin(), tokens.end());
      previous.pos.insert(previous.pos.end(), pos.begin(), pos.end());
    } else {
      lines.push_back({number, std::move(tokens), std::move(pos)});
    }
  }
  return lines;
}

/// One `name=value` token, split. `pos` points at the value text; `name_pos`
/// at the token start (the name).
struct Assignment {
  std::string name;  // lowercased
  std::string value;
  TokenPos pos;
  TokenPos name_pos;
};

/// Split a `name=value` token; nullopt when it is not assignment-shaped
/// (no '=', empty name, or a `{...}` expression token).
std::optional<Assignment> split_assignment(const std::string& token, const TokenPos& pos) {
  if (token.empty() || token.front() == '{') return std::nullopt;
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return std::nullopt;
  Assignment a;
  a.name = to_lower(token.substr(0, eq));
  a.value = token.substr(eq + 1);
  a.name_pos = pos;
  a.pos = {pos.line, pos.column + static_cast<int>(eq) + 1};
  return a;
}

struct ModelCard {
  std::string type;  // "bjt" or "mos"
  /// Raw value text per key — evaluated at each Q/M instantiation, so model
  /// parameters may reference `.param` symbols of the instantiating scope.
  std::map<std::string, Assignment> params;
};

struct SubcktDef {
  std::string name;  // lowercased
  int header_line = 0;
  std::vector<std::string> ports;
  /// Parameter defaults from the header, in declaration order.
  std::vector<Assignment> defaults;
  std::vector<LogicalLine> body;
  /// Nested definitions, visible only inside this body (lexical scoping).
  std::map<std::string, int> locals;
  int parent = -1;  // enclosing definition index; -1 = top level
};

}  // namespace

namespace internal {

/// The immutable pass-1 product: tokenized top-level cards plus the
/// definition tables. elaborate() walks it without mutating it.
struct TemplateImpl {
  std::vector<LogicalLine> top_level;
  std::map<std::string, ModelCard> models;
  std::vector<SubcktDef> defs;
  std::map<std::string, int> top_defs;
  /// Top-level `.param` names (lowercased, first-definition order).
  std::vector<std::string> param_names;
};

}  // namespace internal

namespace {

using internal::TemplateImpl;

void collect_model(const LogicalLine& line, std::map<std::string, ModelCard>* models) {
  if (line.tokens.size() < 3) throw line.error(0, ".model needs a name and a type");
  ModelCard card;
  const std::string name = to_lower(line.tokens[1]);
  card.type = to_lower(line.tokens[2]);
  // "bjt"/"mos" are the legacy pre-linearized (small-signal) model types;
  // "d"/"npn"/"pnp"/"nmos"/"pmos" are large-signal device models consumed by
  // the dc:: Newton solver.
  if (card.type != "bjt" && card.type != "mos" && card.type != "d" && card.type != "npn" &&
      card.type != "pnp" && card.type != "nmos" && card.type != "pmos") {
    throw line.error(2, "unknown model type '" + card.type + "'");
  }
  for (std::size_t t = 3; t < line.tokens.size(); ++t) {
    auto assignment = split_assignment(line.tokens[t], line.pos[t]);
    if (!assignment || assignment->value.empty()) {
      throw line.error(t, "model parameter '" + line.tokens[t] + "' is not key=value");
    }
    card.params[assignment->name] = std::move(*assignment);
  }
  (*models)[name] = std::move(card);
}

/// Collect one .subckt block (recursively for nested definitions); returns
/// the index of the line after the matching .ends.
std::size_t collect_subckt(const std::vector<LogicalLine>& lines, std::size_t start,
                           int parent, TemplateImpl* out) {
  const LogicalLine& header = lines[start];
  if (header.tokens.size() < 2) throw header.error(0, ".subckt needs a name");

  const int self = static_cast<int>(out->defs.size());
  out->defs.emplace_back();
  {
    SubcktDef& def = out->defs[static_cast<std::size_t>(self)];
    def.name = to_lower(header.tokens[1]);
    def.header_line = header.number;
    def.parent = parent;
    // Header tail: ports until the first name=default assignment, then only
    // assignments (a port after a default would be ambiguous).
    bool in_defaults = false;
    for (std::size_t t = 2; t < header.tokens.size(); ++t) {
      auto assignment = split_assignment(header.tokens[t], header.pos[t]);
      if (assignment) {
        if (assignment->value.empty()) {
          throw header.error(t, "parameter default '" + header.tokens[t] +
                                    "' is missing a value");
        }
        in_defaults = true;
        def.defaults.push_back(std::move(*assignment));
      } else {
        if (in_defaults) {
          throw header.error(t, "port '" + header.tokens[t] +
                                    "' after parameter defaults (ports come first)");
        }
        def.ports.push_back(header.tokens[t]);
      }
    }
  }

  std::size_t i = start + 1;
  while (i < lines.size()) {
    const LogicalLine& line = lines[i];
    const std::string head = to_lower(line.tokens.front());
    if (head == ".ends") {
      SubcktDef& def = out->defs[static_cast<std::size_t>(self)];
      if (parent >= 0) {
        out->defs[static_cast<std::size_t>(parent)].locals[def.name] = self;
      } else {
        out->top_defs[def.name] = self;
      }
      return i + 1;
    }
    if (head == ".subckt") {
      i = collect_subckt(lines, i, self, out);
    } else if (head == ".model") {
      collect_model(line, &out->models);
      ++i;
    } else if (head == ".end") {
      throw line.error(0, "'.end' inside .subckt '" +
                              out->defs[static_cast<std::size_t>(self)].name +
                              "' (missing .ends)");
    } else {
      out->defs[static_cast<std::size_t>(self)].body.push_back(line);
      ++i;
    }
  }
  throw ParseError(out->defs[static_cast<std::size_t>(self)].header_line,
                   ".subckt '" + out->defs[static_cast<std::size_t>(self)].name +
                       "' has no matching .ends");
}

/// Parameter scope chain: a subcircuit body sees its own `.param`
/// definitions and instance parameters first, then the scope that
/// instantiated it, up to the netlist's top-level parameters.
struct Scope final : ParamEnv {
  const Scope* parent = nullptr;
  std::map<std::string, double, std::less<>> values;

  [[nodiscard]] const double* find(std::string_view name) const override {
    for (const Scope* s = this; s != nullptr; s = s->parent) {
      const auto it = s->values.find(name);
      if (it != s->values.end()) return &it->second;
    }
    return nullptr;
  }
};

/// Pass 2: expand one TemplateImpl into a Circuit. One Elaborator per
/// elaborate() call; reads the template, never writes it.
class Elaborator {
 public:
  Elaborator(const TemplateImpl& tpl, std::map<std::string, double> overrides)
      : tpl_(tpl), overrides_(std::move(overrides)) {}

  Circuit run() {
    Scope global;
    for (const LogicalLine& line : tpl_.top_level) {
      dispatch(line, /*prefix=*/"", /*port_map=*/{}, global, /*lexical_def=*/-1,
               /*top_level=*/true);
    }
    // `.ic` cards apply once every element (and with it every node) exists,
    // so a directive written above the cards it names still works.
    for (const PendingIc& ic : pending_ics_) {
      try {
        circuit_.set_initial_condition(ic.node, ic.volts);
      } catch (const std::invalid_argument& e) {
        throw ParseError(ic.pos.line, ic.pos.column, e.what());
      }
    }
    return std::move(circuit_);
  }

 private:
  /// A literal ("2.2k") or brace expression ("{2*c0}") value at a known
  /// source position.
  double eval_value(const std::string& text, const TokenPos& pos, const Scope& scope) const {
    if (!text.empty() && text.front() == '{') {
      // The tokenizer only produces balanced groups; re-check for values
      // that arrived through assignment splitting.
      if (text.size() < 2 || text.back() != '}') {
        throw ParseError(pos.line, pos.column, "unterminated '{' expression");
      }
      try {
        return evaluate_expression(std::string_view(text).substr(1, text.size() - 2), scope);
      } catch (const ExprError& e) {
        throw ParseError(pos.line, pos.column + 1 + static_cast<int>(e.offset()), e.what());
      }
    }
    const auto value = numeric::parse_engineering(text);
    if (!value) throw ParseError(pos.line, pos.column, "bad numeric value '" + text + "'");
    return *value;
  }

  double parse_value(const LogicalLine& line, std::size_t index, const Scope& scope) const {
    return eval_value(line.tokens[index], line.pos[index], scope);
  }

  /// Resolve a node token through the subcircuit port map and prefix.
  std::string resolve_node(const std::string& token,
                           const std::map<std::string, std::string>& port_map,
                           const std::string& prefix) const {
    if (token == "0" || token == "gnd" || token == "GND") return "0";
    const auto it = port_map.find(token);
    if (it != port_map.end()) return it->second;
    return prefix.empty() ? token : prefix + token;
  }

  void do_param(const LogicalLine& line, Scope& scope, bool top_level) {
    if (line.tokens.size() < 2) throw line.error(0, ".param needs name=value assignments");
    for (std::size_t t = 1; t < line.tokens.size(); ++t) {
      auto assignment = split_assignment(line.tokens[t], line.pos[t]);
      if (!assignment || assignment->value.empty()) {
        throw line.error(t, "'" + line.tokens[t] + "' is not a name=value assignment");
      }
      double value = 0.0;
      const auto it = top_level ? overrides_.find(assignment->name) : overrides_.end();
      if (it != overrides_.end()) {
        value = it->second;  // swept/overridden top-level parameter
      } else {
        value = eval_value(assignment->value, assignment->pos, scope);
      }
      scope.values[assignment->name] = value;  // later .param of the same name wins
    }
  }

  /// Transient source shape: `PULSE(v1 v2 td tr tf pw per)` or
  /// `SIN(vo va freq td theta)`. `(` is not tokenizer-special, so the group
  /// arrives as several tokens (`pulse(0`, `1`, ..., `10u)`); this scans
  /// forward until the closing `)`, advancing *index past the group.
  Waveform parse_source_waveform(const LogicalLine& line, std::size_t* index, const Scope& scope,
                                 WaveformKind kind) {
    std::vector<double> args;
    bool closed = false;
    auto push_arg = [&](std::string text, TokenPos pos) {
      if (!text.empty() && text.back() == ')') {
        closed = true;
        text.pop_back();
      }
      if (!text.empty()) args.push_back(eval_value(text, pos, scope));
    };

    const std::string& head = line.tokens[*index];
    const std::size_t open = head.find('(');
    if (open != std::string::npos) {
      push_arg(head.substr(open + 1),
               {line.pos[*index].line, line.pos[*index].column + static_cast<int>(open) + 1});
    }
    std::size_t t = *index;
    while (!closed) {
      ++t;
      if (t >= line.tokens.size()) {
        throw line.error(*index, "'" + head + "': missing ')'");
      }
      std::string text = line.tokens[t];
      TokenPos pos = line.pos[t];
      if (!text.empty() && text.front() == '(') {
        text.erase(0, 1);
        ++pos.column;
      }
      push_arg(std::move(text), pos);
    }
    *index = t;

    Waveform w;
    w.kind = kind;
    auto arg = [&](std::size_t i, double fallback) { return i < args.size() ? args[i] : fallback; };
    if (kind == WaveformKind::kPulse) {
      if (args.size() < 2 || args.size() > 7) {
        throw line.error(*index, "PULSE needs 2..7 arguments (v1 v2 td tr tf pw per)");
      }
      w.v1 = args[0];
      w.v2 = args[1];
      w.delay = arg(2, 0.0);
      w.rise = arg(3, 0.0);
      w.fall = arg(4, 0.0);
      w.width = arg(5, 0.0);
      w.period = arg(6, 0.0);
      for (const double d : {w.delay, w.rise, w.fall, w.width, w.period}) {
        if (d < 0.0) throw line.error(*index, "PULSE timing arguments must be >= 0");
      }
      if (w.period > 0.0 && w.period < w.rise + w.width + w.fall) {
        throw line.error(*index, "PULSE period shorter than rise + width + fall");
      }
    } else {
      if (args.size() < 3 || args.size() > 5) {
        throw line.error(*index, "SIN needs 3..5 arguments (vo va freq td theta)");
      }
      w.v1 = args[0];
      w.v2 = args[1];
      w.frequency = args[2];
      w.delay = arg(3, 0.0);
      w.damping = arg(4, 0.0);
      if (w.frequency <= 0.0) throw line.error(*index, "SIN frequency must be > 0");
      if (w.delay < 0.0 || w.damping < 0.0) {
        throw line.error(*index, "SIN delay and damping must be >= 0");
      }
    }
    return w;
  }

  /// `.ic v(node)=volts ...` (bare `node=volts` also accepted). Application
  /// is deferred to the end of run() so directive order does not matter.
  void do_ic(const LogicalLine& line, const std::map<std::string, std::string>& port_map,
             const std::string& prefix, const Scope& scope) {
    if (line.tokens.size() < 2) throw line.error(0, ".ic needs v(node)=value assignments");
    for (std::size_t t = 1; t < line.tokens.size(); ++t) {
      const std::string& token = line.tokens[t];
      const auto eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        throw line.error(t, "'" + token + "' is not a v(node)=value assignment");
      }
      std::string target = token.substr(0, eq);
      int name_offset = 0;
      const std::string lowered = to_lower(target);
      if (lowered.size() > 2 && lowered.rfind("v(", 0) == 0 && lowered.back() == ')') {
        target = target.substr(2, target.size() - 3);
        name_offset = 2;
      }
      if (target.empty()) throw line.error(t, "'" + token + "': empty node name");
      const TokenPos value_pos = {line.pos[t].line,
                                  line.pos[t].column + static_cast<int>(eq) + 1};
      const double volts = eval_value(token.substr(eq + 1), value_pos, scope);
      pending_ics_.push_back({resolve_node(target, port_map, prefix),
                              volts,
                              {line.pos[t].line, line.pos[t].column + name_offset}});
    }
  }

  void dispatch(const LogicalLine& line, const std::string& prefix,
                const std::map<std::string, std::string>& port_map, Scope& scope,
                int lexical_def, bool top_level) {
    const std::string& first = line.tokens.front();
    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(first[0])));
    const std::string name = prefix + first;

    auto node = [&](std::size_t index) -> std::string {
      if (index >= line.tokens.size()) {
        throw line.error(0, "'" + first + "': missing node");
      }
      return resolve_node(line.tokens[index], port_map, prefix);
    };
    auto value_token = [&](std::size_t index) -> std::size_t {
      if (index >= line.tokens.size()) {
        throw line.error(0, "'" + first + "': missing value");
      }
      return index;
    };
    auto require_tokens = [&](std::size_t count) {
      if (line.tokens.size() < count) {
        throw line.error(0, "'" + first + "': expected at least " +
                                std::to_string(count - 1) + " fields");
      }
    };

    switch (kind) {
      case 'r':
        require_tokens(4);
        circuit_.add_resistor(name, node(1), node(2), parse_value(line, value_token(3), scope));
        break;
      case 'c':
        require_tokens(4);
        circuit_.add_capacitor(name, node(1), node(2), parse_value(line, value_token(3), scope));
        break;
      case 'l':
        require_tokens(4);
        circuit_.add_inductor(name, node(1), node(2), parse_value(line, value_token(3), scope));
        break;
      case 'g':
        require_tokens(6);
        circuit_.add_vccs(name, node(1), node(2), node(3), node(4),
                          parse_value(line, value_token(5), scope));
        break;
      case 'e':
        require_tokens(6);
        circuit_.add_vcvs(name, node(1), node(2), node(3), node(4),
                          parse_value(line, value_token(5), scope));
        break;
      case 'f':
        require_tokens(5);
        circuit_.add_cccs(name, node(1), node(2), prefix + line.tokens[3],
                          parse_value(line, value_token(4), scope));
        break;
      case 'h':
        require_tokens(5);
        circuit_.add_ccvs(name, node(1), node(2), prefix + line.tokens[3],
                          parse_value(line, value_token(4), scope));
        break;
      case 'v':
      case 'i': {
        require_tokens(3);
        // Left to right: `dc <v>` sets the bias level, `ac <v>` the AC
        // magnitude, and a bare value (no keyword) sets both — so legacy
        // one-value cards keep meaning "AC magnitude" and a "DC 5 AC 0.5"
        // card means what SPICE says it means.
        double magnitude = 1.0;
        double dc = 0.0;
        Waveform waveform;
        for (std::size_t t = 3; t < line.tokens.size(); ++t) {
          const std::string word = to_lower(line.tokens[t]);
          if (word == "ac" || word == "dc") {
            if (t + 1 >= line.tokens.size()) {
              throw line.error(t, "'" + first + "': '" + word + "' needs a value");
            }
            const double v = parse_value(line, ++t, scope);
            (word == "ac" ? magnitude : dc) = v;
          } else if (word == "pulse" || word == "sin" || word.rfind("pulse(", 0) == 0 ||
                     word.rfind("sin(", 0) == 0) {
            waveform = parse_source_waveform(line, &t, scope,
                                             word.rfind("sin", 0) == 0 ? WaveformKind::kSin
                                                                       : WaveformKind::kPulse);
          } else {
            magnitude = parse_value(line, t, scope);
            dc = magnitude;
          }
        }
        Element& e = kind == 'v' ? circuit_.add_vsource(name, node(1), node(2), magnitude)
                                 : circuit_.add_isource(name, node(1), node(2), magnitude);
        e.dc_value = dc;
        e.waveform = waveform;
        break;
      }
      case 'o':
        require_tokens(4);
        circuit_.add_opamp(name, node(1), node(2), node(3));
        break;
      case 'd': {
        require_tokens(4);
        const ModelCard& card = find_model(line, 3, "d");
        DeviceModel m;
        auto get = [&](const char* key, double fallback) {
          return model_param_or(card, key, scope, fallback);
        };
        m.is = get("is", m.is);
        m.n = get("n", m.n);
        m.tt = get("tt", m.tt);
        m.cj = get("cj", m.cj);
        circuit_.add_diode(name, node(1), node(2), m);
        break;
      }
      case 'q': {
        require_tokens(5);
        const ModelCard& card = find_model(line, 4, "bjt", "npn", "pnp");
        if (card.type == "bjt") {
          // Legacy pre-linearized card: expand directly to the small-signal
          // hybrid-pi elements, no operating point needed.
          BjtParams p;
          auto get = [&](const char* key) { return model_param(card, key, scope); };
          p.gm = get("gm");
          p.beta = get("beta");
          p.ro = get("ro");
          p.rb = get("rb");
          p.cpi = get("cpi");
          p.cmu = get("cmu");
          p.ccs = get("ccs");
          expand_bjt(circuit_, name, node(1), node(2), node(3), p);
          break;
        }
        DeviceModel m;
        auto get = [&](const char* key, double fallback) {
          return model_param_or(card, key, scope, fallback);
        };
        m.is = get("is", m.is);
        m.n = get("n", m.n);
        m.bf = get("bf", m.bf);
        m.br = get("br", m.br);
        m.vaf = get("vaf", m.vaf);
        m.tf = get("tf", m.tf);
        m.cje = get("cje", m.cje);
        m.cjc = get("cjc", m.cjc);
        m.ccs = get("ccs", m.ccs);
        m.rb = get("rb", m.rb);
        circuit_.add_bjt(name, node(1), node(2), node(3), m, card.type == "pnp" ? -1 : 1);
        break;
      }
      case 'm': {
        require_tokens(5);
        const ModelCard& card = find_model(line, 4, "mos", "nmos", "pmos");
        if (card.type == "mos") {
          MosParams p;
          auto get = [&](const char* key) { return model_param(card, key, scope); };
          p.gm = get("gm");
          p.gds = get("gds");
          p.cgs = get("cgs");
          p.cgd = get("cgd");
          p.cdb = get("cdb");
          expand_mos(circuit_, name, node(1), node(2), node(3), p);
          break;
        }
        DeviceModel m;
        auto get = [&](const char* key, double fallback) {
          return model_param_or(card, key, scope, fallback);
        };
        m.kp = get("kp", m.kp);
        m.vto = get("vto", m.vto);
        m.lambda = get("lambda", m.lambda);
        m.cgs = get("cgs", m.cgs);
        m.cgd = get("cgd", m.cgd);
        m.cdb = get("cdb", m.cdb);
        circuit_.add_mos(name, node(1), node(2), node(3), m, card.type == "pmos" ? -1 : 1);
        break;
      }
      case 'x':
        expand_subckt(line, prefix, port_map, scope, lexical_def);
        break;
      case '.': {
        const std::string head = to_lower(first);
        if (head == ".title") {
          std::string title;
          for (std::size_t t = 1; t < line.tokens.size(); ++t) {
            if (t > 1) title += ' ';
            title += line.tokens[t];
          }
          circuit_.title = title;
        } else if (head == ".param") {
          do_param(line, scope, top_level);
        } else if (head == ".ic") {
          do_ic(line, port_map, prefix, scope);
        } else if (head == ".ends") {
          throw line.error(0, "'.ends' without a matching '.subckt'");
        } else {
          throw line.error(0, "unknown directive '" + first + "'");
        }
        break;
      }
      default:
        throw line.error(0, "unknown element card '" + first + "'");
    }
  }

  /// Look up a model card whose type is one of the accepted ones (null
  /// entries of the trailing types mean "only the first applies").
  const ModelCard& find_model(const LogicalLine& line, std::size_t index, const char* type,
                              const char* type2 = nullptr, const char* type3 = nullptr) const {
    const std::string model = to_lower(line.tokens[index]);
    const auto it = tpl_.models.find(model);
    const bool found = it != tpl_.models.end() &&
                       (it->second.type == type || (type2 != nullptr && it->second.type == type2) ||
                        (type3 != nullptr && it->second.type == type3));
    if (!found) {
      std::string wanted = type;
      if (type2 != nullptr) wanted += std::string("/") + type2;
      if (type3 != nullptr) wanted += std::string("/") + type3;
      throw line.error(index, "'" + line.tokens.front() + "': unknown " + wanted + " model '" +
                                  model + "'");
    }
    return it->second;
  }

  double model_param(const ModelCard& card, const char* key, const Scope& scope) const {
    const auto it = card.params.find(key);
    if (it == card.params.end()) return 0.0;
    return eval_value(it->second.value, it->second.pos, scope);
  }

  /// Like model_param(), but with an explicit per-key default for the
  /// large-signal device cards (where "absent" rarely means zero).
  double model_param_or(const ModelCard& card, const char* key, const Scope& scope,
                        double fallback) const {
    const auto it = card.params.find(key);
    if (it == card.params.end()) return fallback;
    return eval_value(it->second.value, it->second.pos, scope);
  }

  /// Definition lookup along the lexical chain (innermost wins), falling
  /// back to the top-level table.
  [[nodiscard]] int lookup_def(const std::string& name, int lexical) const {
    for (int s = lexical; s >= 0; s = tpl_.defs[static_cast<std::size_t>(s)].parent) {
      const auto& locals = tpl_.defs[static_cast<std::size_t>(s)].locals;
      const auto it = locals.find(name);
      if (it != locals.end()) return it->second;
    }
    const auto it = tpl_.top_defs.find(name);
    return it == tpl_.top_defs.end() ? -1 : it->second;
  }

  void expand_subckt(const LogicalLine& line, const std::string& outer_prefix,
                     const std::map<std::string, std::string>& outer_map,
                     const Scope& outer_scope, int lexical_def) {
    if (line.tokens.size() < 2) throw line.error(0, "X card needs a subckt name");

    // Trailing name=value tokens are instance parameter overrides; the last
    // remaining token is the subcircuit name.
    std::vector<Assignment> instance_params;
    std::size_t end = line.tokens.size();
    while (end > 1) {
      auto assignment = split_assignment(line.tokens[end - 1], line.pos[end - 1]);
      if (!assignment) break;
      if (assignment->value.empty()) {
        throw line.error(end - 1, "parameter override '" + line.tokens[end - 1] +
                                      "' is missing a value");
      }
      instance_params.push_back(std::move(*assignment));
      --end;
    }
    std::reverse(instance_params.begin(), instance_params.end());
    if (end < 2) throw line.error(0, "X card needs a subckt name");
    const std::size_t name_index = end - 1;
    const std::string subckt_name = to_lower(line.tokens[name_index]);

    const int def_index = lookup_def(subckt_name, lexical_def);
    if (def_index < 0) {
      throw line.error(name_index, "unknown subcircuit '" + line.tokens[name_index] + "'");
    }
    const SubcktDef& def = tpl_.defs[static_cast<std::size_t>(def_index)];

    const std::size_t node_count = name_index - 1;
    if (node_count != def.ports.size()) {
      throw line.error(0, "subckt '" + subckt_name + "' expects " +
                              std::to_string(def.ports.size()) + " nodes, got " +
                              std::to_string(node_count));
    }

    // Recursive instantiation would expand forever; diagnose the cycle with
    // the full instantiation chain instead of crashing on stack exhaustion.
    for (const int active : instantiation_stack_) {
      if (active == def_index) {
        std::string chain;
        bool in_cycle = false;
        for (const int d : instantiation_stack_) {
          if (d == def_index) in_cycle = true;
          if (!in_cycle) continue;
          chain += tpl_.defs[static_cast<std::size_t>(d)].name + " -> ";
        }
        chain += def.name;
        throw line.error(name_index, "recursive subcircuit instantiation: " + chain);
      }
    }

    const std::string prefix = outer_prefix + line.tokens.front() + ".";
    std::map<std::string, std::string> port_map;
    for (std::size_t p = 0; p < def.ports.size(); ++p) {
      // The instance's node tokens are resolved in the *outer* scope.
      port_map[def.ports[p]] = resolve_node(line.tokens[1 + p], outer_map, outer_prefix);
    }

    // Instance parameters: overrides evaluate in the CALLER's scope (their
    // expressions reference the instantiating context); defaults evaluate in
    // the child scope, so a later default may use an earlier parameter —
    // including one the instance overrode.
    Scope child;
    child.parent = &outer_scope;
    std::vector<bool> used(instance_params.size(), false);
    for (const Assignment& d : def.defaults) {
      double value = 0.0;
      bool overridden = false;
      for (std::size_t i = 0; i < instance_params.size(); ++i) {
        if (instance_params[i].name == d.name) {
          value = eval_value(instance_params[i].value, instance_params[i].pos, outer_scope);
          used[i] = true;
          overridden = true;
        }
      }
      if (!overridden) value = eval_value(d.value, d.pos, child);
      child.values[d.name] = value;
    }
    for (std::size_t i = 0; i < instance_params.size(); ++i) {
      if (!used[i]) {
        throw ParseError(instance_params[i].name_pos.line, instance_params[i].name_pos.column,
                         "subckt '" + subckt_name + "' has no parameter '" +
                             instance_params[i].name + "'");
      }
    }

    instantiation_stack_.push_back(def_index);
    for (const LogicalLine& body_line : def.body) {
      dispatch(body_line, prefix, port_map, child, def_index, /*top_level=*/false);
    }
    instantiation_stack_.pop_back();
  }

  struct PendingIc {
    std::string node;
    double volts = 0.0;
    TokenPos pos;
  };

  const TemplateImpl& tpl_;
  std::map<std::string, double> overrides_;  // lowercased keys
  Circuit circuit_;
  std::vector<int> instantiation_stack_;  // active definition indices
  std::vector<PendingIc> pending_ics_;    // applied after the element cards
};

}  // namespace

Circuit NetlistTemplate::elaborate(const std::map<std::string, double>& overrides) const {
  if (!impl_) throw std::invalid_argument("NetlistTemplate: empty template");
  std::map<std::string, double> lowered;
  for (const auto& [name, value] : overrides) {
    const std::string key = to_lower(name);
    if (std::find(impl_->param_names.begin(), impl_->param_names.end(), key) ==
        impl_->param_names.end()) {
      throw std::invalid_argument("netlist has no top-level parameter '" + key +
                                  "' (add a .param card to sweep it)");
    }
    lowered[key] = value;
  }
  return Elaborator(*impl_, std::move(lowered)).run();
}

const std::vector<std::string>& NetlistTemplate::parameter_names() const {
  static const std::vector<std::string> kEmpty;
  return impl_ ? impl_->param_names : kEmpty;
}

bool NetlistTemplate::has_parameter(std::string_view name) const {
  if (!impl_) return false;
  const std::string key = to_lower(name);
  return std::find(impl_->param_names.begin(), impl_->param_names.end(), key) !=
         impl_->param_names.end();
}

NetlistTemplate parse_netlist_template(std::string_view text) {
  auto impl = std::make_shared<TemplateImpl>();
  const std::vector<LogicalLine> lines = tokenize(text);

  // Pass 1: collect .model and .subckt definitions (models are global, even
  // when written inside a .subckt body; definitions nest lexically), keep
  // every other card in order, and record the top-level parameter names.
  std::size_t i = 0;
  while (i < lines.size()) {
    const LogicalLine& line = lines[i];
    const std::string head = to_lower(line.tokens.front());
    if (head == ".model") {
      collect_model(line, &impl->models);
      ++i;
    } else if (head == ".subckt") {
      i = collect_subckt(lines, i, /*parent=*/-1, impl.get());
    } else if (head == ".end") {
      break;
    } else {
      if (head == ".param") {
        for (std::size_t t = 1; t < line.tokens.size(); ++t) {
          const auto assignment = split_assignment(line.tokens[t], line.pos[t]);
          if (!assignment) continue;  // diagnosed during elaboration
          if (std::find(impl->param_names.begin(), impl->param_names.end(),
                        assignment->name) == impl->param_names.end()) {
            impl->param_names.push_back(assignment->name);
          }
        }
      }
      impl->top_level.push_back(line);
      ++i;
    }
  }

  NetlistTemplate tpl;
  tpl.impl_ = std::move(impl);
  return tpl;
}

Circuit parse_netlist(std::string_view text) {
  return parse_netlist_template(text).elaborate();
}

}  // namespace symref::netlist
