// Canonicalization to the homogeneous admittance class {G, C, VCCS}.
//
// Conductance scaling (paper eq. (11)) requires every determinant term to be
// a product of exactly M admittance factors, which holds only when all
// matrix entries are sums of conductances, capacitances and
// transconductances. This pass rewrites a general circuit into that class:
//
//   R            -> G = 1/R
//   L            -> gyrator (two VCCS) + grounded capacitor C = L*gg^2
//   VCVS (E)     -> output conductance Gbig + VCCS gm = gain*Gbig
//                   (error O(Gext/Gbig); Gbig defaults to 1e6 * max G)
//   ideal opamp  -> one grounded VCCS driving the output with a large
//                   transconductance (virtual-short error O(G/gm_A))
//   CCCS (F)     -> controlling V-source replaced by sense conductance Gs,
//                   plus VCCS gm = gain*Gs across the sense nodes
//   CCVS (H)     -> sense conductance + VCVS-style big-G output
//   V/I sources  -> dropped (transfer-function ports are specified
//                   separately; see mna::TransferSpec)
//
// Each introduced element gets a derived name ("l1.gy1", "e2.go", ...), so
// simplification and symbolic output stay traceable to the original element.
#pragma once

#include "netlist/circuit.h"

namespace symref::netlist {

struct CanonicalOptions {
  /// Gyration conductance for inductor transformation; 0 = geometric mean
  /// of the circuit's conductances (fallback 1e-3 S).
  double gyrator_conductance = 0.0;
  /// Output conductance modeling VCVS outputs; 0 = 1e6 * max G
  /// (approximation error O(G_load / vcvs_conductance)).
  double vcvs_conductance = 0.0;
  /// Sense conductance replacing current-sensing V sources; 0 = same as
  /// vcvs_conductance.
  double sense_conductance = 0.0;
  /// Ideal opamps become a single grounded VCCS driving the output with
  /// this transconductance; 0 = 1e4 * max G. The virtual-short error is
  /// O(G_node / opamp_transconductance).
  double opamp_transconductance = 0.0;
  /// Drop independent V/I sources (ports are defined via TransferSpec).
  /// When false, an independent source raises std::invalid_argument.
  bool drop_independent_sources = true;
};

/// True when the circuit contains only {Conductance, Capacitor, Vccs}.
[[nodiscard]] bool is_canonical(const Circuit& circuit) noexcept;

/// Rewrite into the homogeneous admittance class. Node names and indices of
/// the input are preserved; new internal nodes are appended.
[[nodiscard]] Circuit canonicalize(const Circuit& circuit, const CanonicalOptions& options = {});

}  // namespace symref::netlist
