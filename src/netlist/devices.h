// Small-signal device models.
//
// Symbolic analysis of the paper's class operates on linearized circuits:
// each transistor is replaced by its hybrid-pi (BJT) or saturation-region
// (MOS) small-signal equivalent. The expansion functions append the
// equivalent's primitive elements (conductances, capacitors, VCCS) to a
// Circuit with names derived from the device name ("q1.gm", "q1.cpi", ...),
// so SBG simplification and symbolic output can refer to them individually.
#pragma once

#include <string>
#include <string_view>

#include "netlist/circuit.h"

namespace symref::netlist {

/// Hybrid-pi BJT parameters. Zero-valued members are omitted from the
/// expansion (e.g. rb == 0 skips the base-spreading resistor and its
/// internal node).
struct BjtParams {
  double gm = 0.0;   // transconductance [S]
  double beta = 0.0; // current gain -> r_pi = beta / gm
  double ro = 0.0;   // output resistance [ohm]; 0 = infinite
  double rb = 0.0;   // base spreading resistance [ohm]; 0 = none
  double cpi = 0.0;  // base-emitter capacitance [F]
  double cmu = 0.0;  // base-collector capacitance [F]
  double ccs = 0.0;  // collector-substrate capacitance to ground [F]

  /// Textbook operating-point helper: gm = Ic/Vt, r_pi = beta/gm,
  /// ro = Va/Ic, cpi = gm*tau_f + cje. Temperature fixed at 300 K.
  static BjtParams from_bias(double collector_current, double beta, double early_voltage,
                             double tau_f, double cje, double cmu, double ccs = 0.0,
                             double rb = 0.0);
};

/// Saturation-region MOS parameters (bulk tied to the source rail).
struct MosParams {
  double gm = 0.0;   // transconductance [S]
  double gds = 0.0;  // output conductance [S]
  double cgs = 0.0;  // gate-source capacitance [F]
  double cgd = 0.0;  // gate-drain capacitance [F]
  double cdb = 0.0;  // drain-bulk capacitance to ground [F]
};

/// Expand a BJT (collector, base, emitter nodes by name) into primitives.
/// Element names are prefixed with `name` + '.'.
void expand_bjt(Circuit& circuit, const std::string& name, std::string_view collector,
                std::string_view base, std::string_view emitter, const BjtParams& params);

/// Expand a MOS transistor (drain, gate, source nodes by name).
void expand_mos(Circuit& circuit, const std::string& name, std::string_view drain,
                std::string_view gate, std::string_view source, const MosParams& params);

}  // namespace symref::netlist
