#include "netlist/circuit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

namespace symref::netlist {

const char* kind_name(ElementKind kind) noexcept {
  switch (kind) {
    case ElementKind::Resistor: return "resistor";
    case ElementKind::Conductance: return "conductance";
    case ElementKind::Capacitor: return "capacitor";
    case ElementKind::Inductor: return "inductor";
    case ElementKind::Vccs: return "vccs";
    case ElementKind::Vcvs: return "vcvs";
    case ElementKind::Cccs: return "cccs";
    case ElementKind::Ccvs: return "ccvs";
    case ElementKind::VoltageSource: return "vsource";
    case ElementKind::CurrentSource: return "isource";
    case ElementKind::IdealOpAmp: return "opamp";
  }
  return "?";
}

const char* device_kind_name(DeviceKind kind) noexcept {
  switch (kind) {
    case DeviceKind::kDiode: return "diode";
    case DeviceKind::kBjt: return "bjt";
    case DeviceKind::kMos: return "mos";
  }
  return "?";
}

namespace {
bool is_ground_name(std::string_view name) noexcept {
  return name == "0" || name == "gnd" || name == "GND" || name == "Gnd";
}
}  // namespace

double Waveform::value_at(double t, double dc) const noexcept {
  switch (kind) {
    case WaveformKind::kDc:
      return dc;
    case WaveformKind::kPulse: {
      double tp = t - delay;
      if (tp < 0.0) return v1;
      if (period > 0.0) tp = std::fmod(tp, period);
      if (tp < rise) {
        // rise == 0 never reaches here (tp < 0 is impossible after the
        // clamp), so the edge is instantaneous.
        return v1 + (v2 - v1) * (tp / rise);
      }
      tp -= rise;
      if (width > 0.0 && tp >= width) {
        tp -= width;
        if (tp < fall) return v2 + (v1 - v2) * (tp / fall);
        return v1;
      }
      return v2;  // width == 0: hold the pulsed level for the rest
    }
    case WaveformKind::kSin: {
      const double tp = t - delay;
      if (tp < 0.0) return v1;
      const double envelope = damping > 0.0 ? std::exp(-tp * damping) : 1.0;
      return v1 + v2 * envelope * std::sin(2.0 * 3.141592653589793238462643 * frequency * tp);
    }
  }
  return dc;
}

Circuit::Circuit() {
  node_names_.emplace_back("0");
  alias_.push_back(0);
}

int Circuit::resolve_alias(int index) const noexcept {
  while (alias_[static_cast<std::size_t>(index)] != index) {
    index = alias_[static_cast<std::size_t>(index)];
  }
  return index;
}

int Circuit::node(std::string_view name) {
  if (is_ground_name(name)) return 0;
  for (std::size_t i = 1; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return resolve_alias(static_cast<int>(i));
  }
  node_names_.emplace_back(name);
  alias_.push_back(static_cast<int>(node_names_.size()) - 1);
  return static_cast<int>(node_names_.size()) - 1;
}

std::optional<int> Circuit::find_node(std::string_view name) const {
  if (is_ground_name(name)) return 0;
  for (std::size_t i = 1; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return resolve_alias(static_cast<int>(i));
  }
  return std::nullopt;
}

void Circuit::validate_new_element(const Element& element) const {
  auto check_node = [&](int index, const char* what) {
    if (index < 0 || index >= node_count()) {
      throw std::invalid_argument("element '" + element.name + "': bad " + what + " node");
    }
  };
  check_node(element.node_pos, "positive");
  check_node(element.node_neg, "negative");
  if (element.kind == ElementKind::Vccs || element.kind == ElementKind::Vcvs ||
      element.kind == ElementKind::IdealOpAmp) {
    check_node(element.ctrl_pos, "control positive");
    check_node(element.ctrl_neg, "control negative");
  }
  if (!std::isfinite(element.value)) {
    throw std::invalid_argument("element '" + element.name + "': non-finite value");
  }
  if (element.name.empty()) {
    throw std::invalid_argument("element with empty name");
  }
  if (find_element(element.name) != nullptr) {
    throw std::invalid_argument("duplicate element name '" + element.name + "'");
  }
  if ((element.kind == ElementKind::Resistor || element.kind == ElementKind::Capacitor ||
       element.kind == ElementKind::Inductor) &&
      element.value == 0.0) {
    throw std::invalid_argument("element '" + element.name + "': zero-valued " +
                                kind_name(element.kind));
  }
}

Element& Circuit::add(Element element) {
  validate_new_element(element);
  elements_.push_back(std::move(element));
  return elements_.back();
}

Element& Circuit::add_resistor(std::string name, std::string_view np, std::string_view nn,
                               double ohms) {
  Element e;
  e.kind = ElementKind::Resistor;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.value = ohms;
  return add(std::move(e));
}

Element& Circuit::add_conductance(std::string name, std::string_view np, std::string_view nn,
                                  double siemens) {
  Element e;
  e.kind = ElementKind::Conductance;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.value = siemens;
  return add(std::move(e));
}

Element& Circuit::add_capacitor(std::string name, std::string_view np, std::string_view nn,
                                double farads) {
  Element e;
  e.kind = ElementKind::Capacitor;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.value = farads;
  return add(std::move(e));
}

Element& Circuit::add_inductor(std::string name, std::string_view np, std::string_view nn,
                               double henries) {
  Element e;
  e.kind = ElementKind::Inductor;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.value = henries;
  return add(std::move(e));
}

Element& Circuit::add_vccs(std::string name, std::string_view np, std::string_view nn,
                           std::string_view cp, std::string_view cn, double gm) {
  Element e;
  e.kind = ElementKind::Vccs;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.ctrl_pos = node(cp);
  e.ctrl_neg = node(cn);
  e.value = gm;
  return add(std::move(e));
}

Element& Circuit::add_vcvs(std::string name, std::string_view np, std::string_view nn,
                           std::string_view cp, std::string_view cn, double gain) {
  Element e;
  e.kind = ElementKind::Vcvs;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.ctrl_pos = node(cp);
  e.ctrl_neg = node(cn);
  e.value = gain;
  return add(std::move(e));
}

Element& Circuit::add_cccs(std::string name, std::string_view np, std::string_view nn,
                           std::string ctrl_branch, double gain) {
  Element e;
  e.kind = ElementKind::Cccs;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.ctrl_branch = std::move(ctrl_branch);
  e.value = gain;
  return add(std::move(e));
}

Element& Circuit::add_ccvs(std::string name, std::string_view np, std::string_view nn,
                           std::string ctrl_branch, double ohms) {
  Element e;
  e.kind = ElementKind::Ccvs;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.ctrl_branch = std::move(ctrl_branch);
  e.value = ohms;
  return add(std::move(e));
}

Element& Circuit::add_vsource(std::string name, std::string_view np, std::string_view nn,
                              double magnitude) {
  Element e;
  e.kind = ElementKind::VoltageSource;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.value = magnitude;
  return add(std::move(e));
}

Element& Circuit::add_isource(std::string name, std::string_view np, std::string_view nn,
                              double magnitude) {
  Element e;
  e.kind = ElementKind::CurrentSource;
  e.name = std::move(name);
  e.node_pos = node(np);
  e.node_neg = node(nn);
  e.value = magnitude;
  return add(std::move(e));
}

Element& Circuit::add_opamp(std::string name, std::string_view out, std::string_view inp,
                            std::string_view inn) {
  Element e;
  e.kind = ElementKind::IdealOpAmp;
  e.name = std::move(name);
  e.node_pos = node(out);
  e.node_neg = 0;
  e.ctrl_pos = node(inp);
  e.ctrl_neg = node(inn);
  e.value = 0.0;
  return add(std::move(e));
}

Device& Circuit::add_device(Device device) {
  if (device.name.empty()) {
    throw std::invalid_argument("device with empty name");
  }
  if (find_element(device.name) != nullptr || find_device(device.name) != nullptr) {
    throw std::invalid_argument("duplicate device name '" + device.name + "'");
  }
  if (device.polarity != 1 && device.polarity != -1) {
    throw std::invalid_argument("device '" + device.name + "': polarity must be +1 or -1");
  }
  const int terminals = device.kind == DeviceKind::kDiode ? 2 : 3;
  for (int t = 0; t < terminals; ++t) {
    if (device.nodes[t] < 0 || device.nodes[t] >= node_count()) {
      throw std::invalid_argument("device '" + device.name + "': bad terminal node");
    }
  }
  const DeviceModel& m = device.model;
  for (const double p : {m.is, m.n, m.tt, m.cj, m.bf, m.br, m.vaf, m.tf, m.cje, m.cjc, m.ccs,
                         m.rb, m.kp, m.vto, m.lambda, m.cgs, m.cgd, m.cdb}) {
    if (!std::isfinite(p)) {
      throw std::invalid_argument("device '" + device.name + "': non-finite model parameter");
    }
  }
  if (m.is <= 0.0 || m.n <= 0.0) {
    throw std::invalid_argument("device '" + device.name +
                                "': saturation current and emission coefficient must be positive");
  }
  devices_.push_back(std::move(device));
  return devices_.back();
}

Device& Circuit::add_diode(std::string name, std::string_view anode, std::string_view cathode,
                           const DeviceModel& model, int polarity) {
  Device d;
  d.kind = DeviceKind::kDiode;
  d.name = std::move(name);
  d.polarity = polarity;
  d.nodes[0] = node(anode);
  d.nodes[1] = node(cathode);
  d.model = model;
  return add_device(std::move(d));
}

Device& Circuit::add_bjt(std::string name, std::string_view collector, std::string_view base,
                         std::string_view emitter, const DeviceModel& model, int polarity) {
  Device d;
  d.kind = DeviceKind::kBjt;
  d.name = std::move(name);
  d.polarity = polarity;
  d.nodes[0] = node(collector);
  d.nodes[1] = node(base);
  d.nodes[2] = node(emitter);
  d.model = model;
  return add_device(std::move(d));
}

Device& Circuit::add_mos(std::string name, std::string_view drain, std::string_view gate,
                         std::string_view source, const DeviceModel& model, int polarity) {
  Device d;
  d.kind = DeviceKind::kMos;
  d.name = std::move(name);
  d.polarity = polarity;
  d.nodes[0] = node(drain);
  d.nodes[1] = node(gate);
  d.nodes[2] = node(source);
  d.model = model;
  return add_device(std::move(d));
}

const Device* Circuit::find_device(std::string_view name) const noexcept {
  for (const Device& d : devices_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const Element* Circuit::find_element(std::string_view name) const noexcept {
  for (const Element& e : elements_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Element* Circuit::mutable_element(std::string_view name) noexcept {
  for (Element& e : elements_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void Circuit::set_initial_condition(std::string_view node_name, double volts) {
  if (!std::isfinite(volts)) {
    throw std::invalid_argument(".ic: non-finite voltage for node '" + std::string(node_name) +
                                "'");
  }
  const std::optional<int> index = find_node(node_name);
  if (!index.has_value()) {
    throw std::invalid_argument(".ic: unknown node '" + std::string(node_name) + "'");
  }
  if (*index == 0) {
    throw std::invalid_argument(".ic: cannot set ground node '" + std::string(node_name) + "'");
  }
  for (auto& [node, value] : initial_conditions_) {
    if (node == *index) {
      value = volts;
      return;
    }
  }
  initial_conditions_.emplace_back(*index, volts);
}

bool Circuit::remove_element(std::string_view name) {
  const auto it = std::find_if(elements_.begin(), elements_.end(),
                               [&](const Element& e) { return e.name == name; });
  if (it == elements_.end()) return false;
  elements_.erase(it);
  return true;
}

bool Circuit::set_element_value(std::string_view name, double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("set_element_value: value for '" + std::string(name) +
                                "' is not finite");
  }
  const auto it = std::find_if(elements_.begin(), elements_.end(),
                               [&](const Element& e) { return e.name == name; });
  if (it == elements_.end()) return false;
  it->value = value;
  return true;
}

bool Circuit::short_element(std::string_view name) {
  const auto it = std::find_if(elements_.begin(), elements_.end(),
                               [&](const Element& e) { return e.name == name; });
  if (it == elements_.end()) return false;
  const int keep = std::min(it->node_pos, it->node_neg);
  const int gone = std::max(it->node_pos, it->node_neg);
  elements_.erase(it);
  if (keep == gone) return true;
  auto remap = [&](int n) { return n == gone ? keep : n; };
  for (Element& e : elements_) {
    e.node_pos = remap(e.node_pos);
    e.node_neg = remap(e.node_neg);
    if (e.ctrl_pos >= 0) e.ctrl_pos = remap(e.ctrl_pos);
    if (e.ctrl_neg >= 0) e.ctrl_neg = remap(e.ctrl_neg);
  }
  for (Device& d : devices_) {
    for (int& n : d.nodes) {
      if (n >= 0) n = remap(n);
    }
  }
  // The merged node keeps its slot in node_names_ so indices stay stable;
  // its name now aliases the survivor so lookups keep working.
  alias_[static_cast<std::size_t>(gone)] = keep;
  return true;
}

std::vector<double> Circuit::capacitor_values() const {
  std::vector<double> values;
  for (const Element& e : elements_) {
    if (e.kind == ElementKind::Capacitor) values.push_back(e.value);
  }
  return values;
}

std::vector<double> Circuit::conductance_values() const {
  std::vector<double> values;
  for (const Element& e : elements_) {
    switch (e.kind) {
      case ElementKind::Resistor: values.push_back(1.0 / e.value); break;
      case ElementKind::Conductance: values.push_back(e.value); break;
      case ElementKind::Vccs: values.push_back(std::fabs(e.value)); break;
      default: break;
    }
  }
  return values;
}

std::size_t Circuit::count(ElementKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(elements_.begin(), elements_.end(),
                    [kind](const Element& e) { return e.kind == kind; }));
}

std::string Circuit::summary() const {
  std::map<std::string, int> counts;
  for (const Element& e : elements_) ++counts[kind_name(e.kind)];
  for (const Device& d : devices_) ++counts[device_kind_name(d.kind)];
  std::ostringstream os;
  os << (title.empty() ? "circuit" : title) << ": " << unknown_count() << " nodes";
  for (const auto& [kind, count] : counts) os << ", " << count << ' ' << kind;
  return os.str();
}

}  // namespace symref::netlist
