// Arithmetic parameter expressions for `{...}` netlist values.
//
// The dialect's `.param` cards and brace expressions need a small,
// dependency-free evaluator:
//
//   expr    := term (('+'|'-') term)*
//   term    := unary (('*'|'/') unary)*
//   unary   := ('+'|'-')* power
//   power   := primary ('^' unary)?            (right-associative)
//   primary := number | name | name '(' args ')' | '(' expr ')'
//
// Numbers use the same engineering notation as element values ("30p",
// "2.2k", "1meg", "1e-9"); names are parameters resolved through the
// caller's scope chain (case-insensitive, like the rest of the dialect).
// Functions: sqrt, abs, exp, tanh, sinh, cosh, ln, log/log10, min(a,b),
// max(a,b), pow(a,b).
//
// Failures (syntax, undefined parameter, division by zero, domain errors,
// non-finite results) throw ExprError carrying the 0-based character offset
// of the offending construct, which the parser converts into an exact
// line/column ParseError — diagnostics point INTO the expression, not just
// at the card.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace symref::netlist {

/// Parameter resolution callback of the evaluator. Implementations return a
/// pointer to the value of `name` (already lowercased) or nullptr when the
/// parameter is not defined in any visible scope.
class ParamEnv {
 public:
  virtual ~ParamEnv() = default;
  [[nodiscard]] virtual const double* find(std::string_view name) const = 0;
};

/// Evaluation failure at a specific character of the expression text.
class ExprError : public std::runtime_error {
 public:
  ExprError(std::size_t offset, const std::string& message)
      : std::runtime_error(message), offset_(offset) {}
  /// 0-based offset into the expression text handed to evaluate_expression.
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Evaluate `text` (the content between the braces, braces excluded)
/// against `env`. Throws ExprError on any failure; otherwise the result is
/// guaranteed finite.
[[nodiscard]] double evaluate_expression(std::string_view text, const ParamEnv& env);

}  // namespace symref::netlist
