// Nonlinear device instances attached to a Circuit.
//
// A Device is a *large-signal* element: it has no fixed conductance, only a
// model (diode exponential, BJT Ebers-Moll, MOS level-1) whose linearization
// depends on the terminal voltages. Devices are ignored by the linear MNA
// path; they are consumed by the dc:: Newton solver, which produces a bias
// point, and by dc::linearize_at(), which rewrites each device into the
// small-signal elements (gm/gpi/ro/C) the rest of the engine understands.
//
// This header is deliberately free of any devices/ or dc/ dependency so the
// netlist layer stays the bottom of the include graph: it only *stores*
// device instances; evaluating them lives in src/devices/.
#pragma once

#include <string>

namespace symref::netlist {

enum class DeviceKind {
  kDiode,  // nodes: anode, cathode
  kBjt,    // nodes: collector, base, emitter
  kMos,    // nodes: drain, gate, source
};

[[nodiscard]] const char* device_kind_name(DeviceKind kind) noexcept;

/// Union of the model-card parameters of all device kinds. Per kind only a
/// subset is meaningful; the parser fills the relevant fields from the
/// .model card and leaves the rest at their defaults.
struct DeviceModel {
  // --- Diode ("d" model cards) ------------------------------------------
  // is (also BJT), n emission coefficient, tt transit time, cj zero-bias
  // junction capacitance. tt/cj shape only the small-signal capacitance.
  double is = 1e-16;  // saturation current [A]
  double n = 1.0;     // emission coefficient
  double tt = 0.0;    // transit time [s]
  double cj = 0.0;    // junction capacitance [F]

  // --- BJT ("npn"/"pnp" model cards), Ebers-Moll ------------------------
  // bf/br forward/reverse beta; is shared with the diode block above.
  // vaf (Early voltage), tf, cje, cjc, ccs, rb only affect the
  // small-signal expansion (ro, cpi, cmu, ccs, rb) -- the DC equations are
  // the ideal three-terminal Ebers-Moll transport model.
  double bf = 100.0;  // forward beta
  double br = 1.0;    // reverse beta
  double vaf = 0.0;   // forward Early voltage [V]; 0 = infinite (no ro)
  double tf = 0.0;    // forward transit time [s]
  double cje = 0.0;   // B-E junction capacitance [F]
  double cjc = 0.0;   // B-C junction capacitance [F]
  double ccs = 0.0;   // collector-substrate capacitance [F]
  double rb = 0.0;    // base spreading resistance [ohm]

  // --- MOS ("nmos"/"pmos" model cards), level 1 -------------------------
  // id = kp/2 * (vgs-vto)^2 * (1+lambda*vds) in saturation. cgs/cgd/cdb
  // only affect the small-signal expansion.
  double kp = 2e-5;    // transconductance factor [A/V^2]
  double vto = 0.0;    // threshold voltage [V] (positive for nmos)
  double lambda = 0.0; // channel-length modulation [1/V]
  double cgs = 0.0;    // gate-source capacitance [F]
  double cgd = 0.0;    // gate-drain capacitance [F]
  double cdb = 0.0;    // drain-bulk capacitance [F]
};

/// One nonlinear device instance. Terminal node indices point into the
/// owning Circuit's node table (0 = ground). `polarity` is +1 for
/// diode/npn/nmos and -1 for pnp/pmos: the model equations are always
/// evaluated in the positive-polarity frame (junction voltages and terminal
/// currents multiplied by polarity), which leaves every Jacobian
/// conductance polarity-independent.
struct Device {
  DeviceKind kind = DeviceKind::kDiode;
  std::string name;
  int polarity = 1;
  int nodes[3] = {-1, -1, -1};  // diode uses [0..1], BJT/MOS use [0..2]
  DeviceModel model;
};

}  // namespace symref::netlist
