#include "netlist/canonical.h"

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

#include "numeric/stats.h"
#include "support/log.h"

namespace symref::netlist {

bool is_canonical(const Circuit& circuit) noexcept {
  if (circuit.has_devices()) return false;  // nonlinear: needs dc::linearize_at first
  for (const Element& e : circuit.elements()) {
    switch (e.kind) {
      case ElementKind::Conductance:
      case ElementKind::Capacitor:
      case ElementKind::Vccs:
        continue;
      default:
        return false;
    }
  }
  return true;
}

namespace {

/// Big-G model of "v(out+,out-) = gain * v(c+,c-)": output conductance plus
/// a transconductance pushing the output toward the target voltage.
void emit_forced_vcvs(Circuit& out, const std::string& name, const std::string& op,
                      const std::string& on, const std::string& cp, const std::string& cn,
                      double gain, double big_g) {
  out.add_conductance(name + ".go", op, on, big_g);
  // At out+: +Gbig*(V+ - V-) - gain*Gbig*(Vc+ - Vc-) = external current.
  out.add_vccs(name + ".gmu", on, op, cp, cn, gain * big_g);
}

}  // namespace

Circuit canonicalize(const Circuit& circuit, const CanonicalOptions& options) {
  if (circuit.has_devices()) {
    throw std::invalid_argument(
        "canonicalize: circuit contains nonlinear devices; solve a DC operating point and "
        "linearize (dc::linearize_at) first");
  }
  const std::vector<double> conductances = circuit.conductance_values();
  double gyrator_g = options.gyrator_conductance;
  if (gyrator_g <= 0.0) {
    gyrator_g = numeric::geometric_mean(conductances);
    if (gyrator_g <= 0.0) gyrator_g = 1e-3;
  }
  double big_g = options.vcvs_conductance;
  if (big_g <= 0.0) {
    const double peak = numeric::max_abs(conductances);
    big_g = peak > 0.0 ? 1e6 * peak : 1.0;
  }
  double sense_g = options.sense_conductance;
  if (sense_g <= 0.0) sense_g = big_g;
  double opamp_gm = options.opamp_transconductance;
  if (opamp_gm <= 0.0) {
    const double peak = numeric::max_abs(conductances);
    opamp_gm = peak > 0.0 ? 1e4 * peak : 1.0;
  }

  Circuit out;
  out.title = circuit.title;
  // Preserve node order so indices stay comparable with the input circuit.
  for (int i = 1; i < circuit.node_count(); ++i) {
    out.node(circuit.node_name(i));
  }

  // Current-sensing V sources referenced by F/H elements become sense
  // conductances; remember their terminals for the controlled outputs.
  struct SenseInfo {
    std::string pos, neg;
  };
  std::map<std::string, SenseInfo> senses;
  for (const Element& e : circuit.elements()) {
    if (e.kind != ElementKind::Cccs && e.kind != ElementKind::Ccvs) continue;
    const Element* branch = circuit.find_element(e.ctrl_branch);
    if (branch == nullptr || branch->kind != ElementKind::VoltageSource) {
      throw std::invalid_argument("canonicalize: element '" + e.name +
                                  "' controls through '" + e.ctrl_branch +
                                  "', which is not a voltage source");
    }
    if (senses.find(e.ctrl_branch) == senses.end()) {
      const std::string p = circuit.node_name(branch->node_pos);
      const std::string n = circuit.node_name(branch->node_neg);
      out.add_conductance(e.ctrl_branch + ".gs", p, n, sense_g);
      senses[e.ctrl_branch] = {p, n};
    }
  }

  for (const Element& e : circuit.elements()) {
    const std::string np = circuit.node_name(e.node_pos);
    const std::string nn = circuit.node_name(e.node_neg);
    switch (e.kind) {
      case ElementKind::Conductance:
        out.add_conductance(e.name, np, nn, e.value);
        break;
      case ElementKind::Capacitor:
        out.add_capacitor(e.name, np, nn, e.value);
        break;
      case ElementKind::Vccs:
        out.add_vccs(e.name, np, nn, circuit.node_name(e.ctrl_pos),
                     circuit.node_name(e.ctrl_neg), e.value);
        break;
      case ElementKind::Resistor:
        out.add_conductance(e.name, np, nn, 1.0 / e.value);
        break;
      case ElementKind::Inductor: {
        // Gyrator-C: i(np->nn) = (V(np)-V(nn)) / (s L) with C = L * gg^2.
        const std::string internal = e.name + ".x";
        out.add_vccs(e.name + ".gy1", np, nn, internal, "0", gyrator_g);
        out.add_vccs(e.name + ".gy2", internal, "0", nn, np, gyrator_g);
        out.add_capacitor(e.name + ".cx", internal, "0",
                          e.value * gyrator_g * gyrator_g);
        break;
      }
      case ElementKind::Vcvs:
        emit_forced_vcvs(out, e.name, np, nn, circuit.node_name(e.ctrl_pos),
                         circuit.node_name(e.ctrl_neg), e.value, big_g);
        break;
      case ElementKind::IdealOpAmp: {
        // Nullor approximated by a single large transconductance driving
        // the output node: KCL at the output forces v(ctrl+) - v(ctrl-) =
        // -I_out / gm_A -> ~0. One large factor instead of the VCVS model's
        // two keeps the matrix entry spread (and thus the evaluation error
        // of the interpolation engine) small.
        out.add_vccs(e.name + ".gma", "0", np, circuit.node_name(e.ctrl_pos),
                     circuit.node_name(e.ctrl_neg), opamp_gm);
        break;
      }
      case ElementKind::Cccs: {
        const SenseInfo& sense = senses.at(e.ctrl_branch);
        // Sense current = Gs * (Vp - Vq); replicate gain * that current.
        out.add_vccs(e.name, np, nn, sense.pos, sense.neg, e.value * sense_g);
        break;
      }
      case ElementKind::Ccvs: {
        const SenseInfo& sense = senses.at(e.ctrl_branch);
        emit_forced_vcvs(out, e.name, np, nn, sense.pos, sense.neg, e.value * sense_g,
                         big_g);
        break;
      }
      case ElementKind::VoltageSource:
      case ElementKind::CurrentSource:
        if (!options.drop_independent_sources) {
          throw std::invalid_argument("canonicalize: independent source '" + e.name +
                                      "' present and drop_independent_sources=false");
        }
        SYMREF_DEBUG("canonicalize: dropping independent source '" << e.name << "'");
        break;
    }
  }
  return out;
}

}  // namespace symref::netlist
