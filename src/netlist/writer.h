// Netlist serialization.
//
// Used by the SBG pass to emit the simplified circuit in a form the parser
// (and, for the primitive subset, any SPICE) can read back. Round-trip
// caveats: a two-terminal Conductance is written as a resistor card with
// value 1/G, and element names are prefixed with the card letter when their
// first letter does not already match it.
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace symref::netlist {

/// Serialize the circuit as a netlist (".title" first when set, ".end" last).
[[nodiscard]] std::string write_netlist(const Circuit& circuit);

}  // namespace symref::netlist
