// SPICE-subset netlist parser with hierarchy and symbolic parameters.
//
// Supported cards (case-insensitive prefixes; values are engineering
// notation literals or brace expressions `{...}`, see netlist/expression.h):
//
//   Rname n+ n- value              resistor
//   Cname n+ n- value              capacitor
//   Lname n+ n- value              inductor
//   Gname n+ n- nc+ nc- gm         VCCS
//   Ename n+ n- nc+ nc- gain       VCVS
//   Fname n+ n- vsrc gain          CCCS (controlled by branch of `vsrc`)
//   Hname n+ n- vsrc ohms          CCVS
//   Vname n+ n- [DC v] [AC] [mag]  independent voltage source: `dc v` sets
//                                  the bias level, `ac v` the AC magnitude
//                                  (default 1), a bare value sets both
//   Iname n+ n- [DC v] [AC] [mag]  independent current source, same syntax
//   Oname out in+ in-              ideal opamp (nullor output to ground)
//   Dname a c model                diode (large-signal `d` model)
//   Qname c b e model              BJT: `bjt` model = small-signal expansion,
//                                  `npn`/`pnp` model = large-signal device
//   Mname d g s model              MOS: `mos` model = small-signal expansion,
//                                  `nmos`/`pmos` model = large-signal device
//   Xname n1 ... nk subckt [p=v..] subcircuit instance (+ parameter overrides)
//
//   .param name=value ...          symbolic parameters (sequential; a later
//                                  .param of the same name wins in its scope)
//   .model name bjt gm=.. beta=.. ro=.. rb=.. cpi=.. cmu=.. ccs=..
//   .model name mos gm=.. gds=.. cgs=.. cgd=.. cdb=..
//   .model name d [is= n= tt= cj=]                    large-signal diode
//   .model name npn|pnp [is= bf= br= vaf= tf= cje= cjc= ccs= rb=]
//   .model name nmos|pmos [kp= vto= lambda= cgs= cgd= cdb=]
//                                  large-signal devices need a DC operating
//                                  point (dc::solve_op) before AC analysis
//   .subckt name n1 ... nk [p=default ..] / .ends
//                                  definitions may nest; an inner definition
//                                  is visible only inside its enclosing body
//   .title any text
//   .end
//
// Comments: full-line '*' or '#', trailing ';' or '$'. Continuation lines
// start with '+'. Unlike classic SPICE, the first line is NOT implicitly a
// title (use .title) — netlists here are usually embedded string literals.
//
// The full dialect (units, scoping/shadowing rules, error positions) is
// documented in docs/netlist.md.
//
// Parsing is split in two phases so parameter studies can re-elaborate
// cheaply: parse_netlist_template() tokenizes the text and collects the
// macro definitions ONCE; NetlistTemplate::elaborate() runs the expansion —
// parameter evaluation, subcircuit instantiation with collision-free
// renaming, device-model expansion — and may be called many times with
// different top-level parameter overrides (the api::Service parameter-sweep
// path; see src/mna/param_sweep.h). Per-token source positions survive both
// phases, so an error deep inside a nested subcircuit instantiation still
// points at the exact line/column of the offending token.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/circuit.h"

namespace symref::netlist {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message) : ParseError(line, 0, message) {}
  /// `column` is the 1-based position of the offending token in its source
  /// line (0 when no single token is to blame, e.g. "missing .ends").
  ParseError(int line, int column, const std::string& message)
      : std::runtime_error(format(line, column, message)), line_(line), column_(column) {}
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  static std::string format(int line, int column, const std::string& message) {
    std::string out = "netlist line " + std::to_string(line);
    if (column > 0) out += ", column " + std::to_string(column);
    return out + ": " + message;
  }

  int line_;
  int column_;
};

namespace internal {
struct TemplateImpl;
}

/// A parsed-but-unexpanded netlist: tokenized cards plus the .model/.subckt
/// definition table. Immutable and cheaply copyable (copies share the parsed
/// state); elaborate() is const and safe to call concurrently — each call
/// carries its own expansion state, which is what lets parameter-sweep lanes
/// re-elaborate shared-nothing.
class NetlistTemplate {
 public:
  /// Empty template; elaborate() throws std::invalid_argument until the
  /// instance came from parse_netlist_template().
  NetlistTemplate() = default;

  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }

  /// Run macro expansion and parameter evaluation. `overrides` replaces the
  /// values of top-level `.param` definitions by (case-insensitive) name —
  /// the hook parameter sweeps are built on. Throws ParseError for netlist
  /// problems and std::invalid_argument for an override naming no top-level
  /// parameter.
  [[nodiscard]] Circuit elaborate(const std::map<std::string, double>& overrides = {}) const;

  /// Names of the top-level `.param` definitions (lowercased, in first-
  /// definition order) — the sweepable parameters of this netlist.
  [[nodiscard]] const std::vector<std::string>& parameter_names() const;

  [[nodiscard]] bool has_parameter(std::string_view name) const;

 private:
  friend NetlistTemplate parse_netlist_template(std::string_view text);
  std::shared_ptr<const internal::TemplateImpl> impl_;
};

/// Tokenize and collect definitions; throws ParseError on malformed input
/// that is detectable before expansion (bad continuations, unterminated
/// `{...}` or .subckt blocks, malformed .model cards).
[[nodiscard]] NetlistTemplate parse_netlist_template(std::string_view text);

/// Parse a netlist (template + one elaboration); throws ParseError.
[[nodiscard]] Circuit parse_netlist(std::string_view text);

}  // namespace symref::netlist
