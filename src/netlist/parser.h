// SPICE-subset netlist parser.
//
// Supported cards (case-insensitive prefixes, engineering-notation values):
//
//   Rname n+ n- value              resistor
//   Cname n+ n- value              capacitor
//   Lname n+ n- value              inductor
//   Gname n+ n- nc+ nc- gm         VCCS
//   Ename n+ n- nc+ nc- gain       VCVS
//   Fname n+ n- vsrc gain          CCCS (controlled by branch of `vsrc`)
//   Hname n+ n- vsrc ohms          CCVS
//   Vname n+ n- [AC] [mag]         independent voltage source (default 1)
//   Iname n+ n- [AC] [mag]         independent current source (default 1)
//   Oname out in+ in-              ideal opamp (nullor output to ground)
//   Qname c b e model              BJT, expanded via a small-signal .model
//   Mname d g s model              MOS, expanded via a small-signal .model
//   Xname n1 ... nk subckt         subcircuit instance
//
//   .model name bjt gm=.. beta=.. ro=.. rb=.. cpi=.. cmu=.. ccs=..
//   .model name mos gm=.. gds=.. cgs=.. cgd=.. cdb=..
//   .subckt name n1 ... nk / .ends
//   .title any text
//   .end
//
// Comments: full-line '*' or '#', trailing ';' or '$'. Continuation lines
// start with '+'. Unlike classic SPICE, the first line is NOT implicitly a
// title (use .title) — netlists here are usually embedded string literals.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/circuit.h"

namespace symref::netlist {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message) : ParseError(line, 0, message) {}
  /// `column` is the 1-based position of the offending token in its source
  /// line (0 when no single token is to blame, e.g. "missing .ends").
  ParseError(int line, int column, const std::string& message)
      : std::runtime_error(format(line, column, message)), line_(line), column_(column) {}
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  static std::string format(int line, int column, const std::string& message) {
    std::string out = "netlist line " + std::to_string(line);
    if (column > 0) out += ", column " + std::to_string(column);
    return out + ": " + message;
  }

  int line_;
  int column_;
};

/// Parse a netlist; throws ParseError on malformed input.
Circuit parse_netlist(std::string_view text);

}  // namespace symref::netlist
