#include "netlist/expression.h"

#include <cctype>
#include <cmath>

#include "numeric/units.h"

namespace symref::netlist {

namespace {

bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Recursive-descent evaluator over the expression text. Positions are byte
/// offsets into `text_`, reported through ExprError.
class Evaluator {
 public:
  Evaluator(std::string_view text, const ParamEnv& env) : text_(text), env_(env) {}

  double run() {
    const double value = expr();
    skip_spaces();
    if (at_ < text_.size()) {
      throw ExprError(at_, std::string("unexpected '") + text_[at_] + "' in expression");
    }
    if (!std::isfinite(value)) {
      throw ExprError(0, "expression result is not finite");
    }
    return value;
  }

 private:
  void skip_spaces() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_])) != 0) {
      ++at_;
    }
  }

  bool consume(char c) {
    skip_spaces();
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  [[nodiscard]] char peek() {
    skip_spaces();
    return at_ < text_.size() ? text_[at_] : '\0';
  }

  double expr() {
    double value = term();
    for (;;) {
      if (consume('+')) {
        value += term();
      } else if (consume('-')) {
        value -= term();
      } else {
        return value;
      }
    }
  }

  double term() {
    double value = unary();
    for (;;) {
      if (consume('*')) {
        value *= unary();
      } else if (peek() == '/') {
        const std::size_t slash = at_;
        ++at_;
        const double divisor = unary();
        if (divisor == 0.0) {
          throw ExprError(slash, "division by zero in parameter expression");
        }
        value /= divisor;
      } else {
        return value;
      }
    }
  }

  double unary() {
    if (consume('-')) return -unary();
    if (consume('+')) return unary();
    return power();
  }

  double power() {
    const double base = primary();
    if (peek() == '^') {
      const std::size_t caret = at_;
      ++at_;
      const double exponent = unary();  // right-associative
      const double value = std::pow(base, exponent);
      if (!std::isfinite(value)) {
        throw ExprError(caret, "'^' produced a non-finite value");
      }
      return value;
    }
    return base;
  }

  double primary() {
    skip_spaces();
    if (at_ >= text_.size()) {
      throw ExprError(text_.size(), "expression ends where a value was expected");
    }
    const char c = text_[at_];
    if (c == '(') {
      const std::size_t open = at_;
      ++at_;
      const double value = expr();
      if (!consume(')')) {
        throw ExprError(open, "unmatched '(' in expression");
      }
      return value;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') return number();
    if (is_ident_start(c)) return name_or_call();
    throw ExprError(at_, std::string("unexpected '") + c + "' in expression");
  }

  /// Engineering-notation number: digits/dot, then any alphanumeric suffix
  /// ("30p", "1meg", "2e-3" — a sign is part of the token only directly
  /// after an exponent 'e'/'E').
  double number() {
    const std::size_t start = at_;
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.') {
        ++at_;
        continue;
      }
      if ((c == '+' || c == '-') && at_ > start) {
        const char prev = text_[at_ - 1];
        if ((prev == 'e' || prev == 'E') && at_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[at_ + 1])) != 0) {
          ++at_;
          continue;
        }
      }
      break;
    }
    const std::string_view token = text_.substr(start, at_ - start);
    const auto value = numeric::parse_engineering(token);
    if (!value) {
      throw ExprError(start, "bad numeric value '" + std::string(token) + "'");
    }
    return *value;
  }

  double name_or_call() {
    const std::size_t start = at_;
    while (at_ < text_.size() && is_ident_char(text_[at_])) ++at_;
    std::string name(text_.substr(start, at_ - start));
    for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));

    if (peek() == '(') return call(name, start);

    const double* value = env_.find(name);
    if (value == nullptr) {
      throw ExprError(start, "undefined parameter '" + name + "'");
    }
    return *value;
  }

  double call(const std::string& name, std::size_t start) {
    consume('(');
    double args[2] = {0.0, 0.0};
    int count = 0;
    if (peek() != ')') {
      for (;;) {
        if (count >= 2) throw ExprError(start, "'" + name + "': too many arguments");
        args[count++] = expr();
        if (consume(',')) continue;
        break;
      }
    }
    if (!consume(')')) throw ExprError(start, "'" + name + "': missing ')'");

    auto want = [&](int n) {
      if (count != n) {
        throw ExprError(start, "'" + name + "' expects " + std::to_string(n) +
                                   " argument" + (n == 1 ? "" : "s"));
      }
    };
    double value = 0.0;
    if (name == "sqrt") {
      want(1);
      if (args[0] < 0.0) throw ExprError(start, "sqrt of a negative value");
      value = std::sqrt(args[0]);
    } else if (name == "abs") {
      want(1);
      value = std::fabs(args[0]);
    } else if (name == "exp") {
      want(1);
      value = std::exp(args[0]);
    } else if (name == "tanh") {
      want(1);
      value = std::tanh(args[0]);
    } else if (name == "sinh") {
      want(1);
      value = std::sinh(args[0]);
    } else if (name == "cosh") {
      want(1);
      value = std::cosh(args[0]);
    } else if (name == "ln") {
      want(1);
      if (args[0] <= 0.0) throw ExprError(start, "ln of a non-positive value");
      value = std::log(args[0]);
    } else if (name == "log" || name == "log10") {
      want(1);
      if (args[0] <= 0.0) throw ExprError(start, "log of a non-positive value");
      value = std::log10(args[0]);
    } else if (name == "min") {
      want(2);
      value = args[0] < args[1] ? args[0] : args[1];
    } else if (name == "max") {
      want(2);
      value = args[0] > args[1] ? args[0] : args[1];
    } else if (name == "pow") {
      want(2);
      value = std::pow(args[0], args[1]);
    } else {
      throw ExprError(start, "unknown function '" + name + "'");
    }
    if (!std::isfinite(value)) {
      throw ExprError(start, "'" + name + "' produced a non-finite value");
    }
    return value;
  }

  std::string_view text_;
  const ParamEnv& env_;
  std::size_t at_ = 0;
};

}  // namespace

double evaluate_expression(std::string_view text, const ParamEnv& env) {
  return Evaluator(text, env).run();
}

}  // namespace symref::netlist
