#include "netlist/writer.h"

#include <cctype>
#include <sstream>

#include "numeric/units.h"

namespace symref::netlist {

namespace {

/// SPICE cards are dispatched on the first letter; prepend it when missing.
std::string card_name(char prefix, const std::string& name) {
  if (!name.empty() &&
      std::tolower(static_cast<unsigned char>(name.front())) ==
          std::tolower(static_cast<unsigned char>(prefix))) {
    return name;
  }
  return std::string(1, prefix) + name;
}

}  // namespace

std::string write_netlist(const Circuit& circuit) {
  std::ostringstream os;
  if (!circuit.title.empty()) os << ".title " << circuit.title << '\n';
  for (const Element& e : circuit.elements()) {
    const std::string np = circuit.node_name(e.node_pos);
    const std::string nn = circuit.node_name(e.node_neg);
    switch (e.kind) {
      case ElementKind::Resistor:
        os << card_name('R', e.name) << ' ' << np << ' ' << nn << ' '
           << numeric::format_engineering(e.value, 9) << '\n';
        break;
      case ElementKind::Conductance:
        os << card_name('R', e.name) << ' ' << np << ' ' << nn << ' '
           << numeric::format_engineering(1.0 / e.value, 9) << '\n';
        break;
      case ElementKind::Capacitor:
        os << card_name('C', e.name) << ' ' << np << ' ' << nn << ' '
           << numeric::format_engineering(e.value, 9) << '\n';
        break;
      case ElementKind::Inductor:
        os << card_name('L', e.name) << ' ' << np << ' ' << nn << ' '
           << numeric::format_engineering(e.value, 9) << '\n';
        break;
      case ElementKind::Vccs:
        os << card_name('G', e.name) << ' ' << np << ' ' << nn << ' '
           << circuit.node_name(e.ctrl_pos) << ' ' << circuit.node_name(e.ctrl_neg) << ' '
           << numeric::format_engineering(e.value, 9) << '\n';
        break;
      case ElementKind::Vcvs:
        os << card_name('E', e.name) << ' ' << np << ' ' << nn << ' '
           << circuit.node_name(e.ctrl_pos) << ' ' << circuit.node_name(e.ctrl_neg) << ' '
           << numeric::format_engineering(e.value, 9) << '\n';
        break;
      case ElementKind::Cccs:
        os << card_name('F', e.name) << ' ' << np << ' ' << nn << ' ' << e.ctrl_branch << ' '
           << numeric::format_engineering(e.value, 9) << '\n';
        break;
      case ElementKind::Ccvs:
        os << card_name('H', e.name) << ' ' << np << ' ' << nn << ' ' << e.ctrl_branch << ' '
           << numeric::format_engineering(e.value, 9) << '\n';
        break;
      case ElementKind::VoltageSource:
        os << card_name('V', e.name) << ' ' << np << ' ' << nn << " AC "
           << numeric::format_engineering(e.value, 9) << '\n';
        break;
      case ElementKind::CurrentSource:
        os << card_name('I', e.name) << ' ' << np << ' ' << nn << " AC "
           << numeric::format_engineering(e.value, 9) << '\n';
        break;
      case ElementKind::IdealOpAmp:
        os << card_name('O', e.name) << ' ' << np << ' ' << circuit.node_name(e.ctrl_pos)
           << ' ' << circuit.node_name(e.ctrl_neg) << '\n';
        break;
    }
  }
  os << ".end\n";
  return os.str();
}

}  // namespace symref::netlist
