// In-memory circuit: a named-node graph of elements.
//
// Node index 0 is always ground ("0"; "gnd" is an alias). Elements keep node
// indices; the Circuit owns the name <-> index mapping. The class also
// provides the element-value statistics the adaptive engine's first-scale
// heuristic needs (§3.2 of the paper) and the short/remove editing
// operations used by Simplification Before Generation.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/device.h"
#include "netlist/element.h"

namespace symref::netlist {

class Circuit {
 public:
  Circuit();

  /// Circuit title (from the netlist first line, or set programmatically).
  std::string title;

  // --- Nodes ---------------------------------------------------------------

  /// Index for `name`, creating the node if new. "0", "gnd", "GND" map to 0.
  /// Nodes merged by short_element() resolve to their surviving alias.
  int node(std::string_view name);

  /// Index for `name` if it exists (alias-resolved).
  [[nodiscard]] std::optional<int> find_node(std::string_view name) const;

  /// Total node count including ground.
  [[nodiscard]] int node_count() const noexcept { return static_cast<int>(node_names_.size()); }

  /// Non-ground node count (the dimension of the nodal admittance matrix).
  [[nodiscard]] int unknown_count() const noexcept { return node_count() - 1; }

  [[nodiscard]] const std::string& node_name(int index) const { return node_names_.at(static_cast<std::size_t>(index)); }

  // --- Elements ------------------------------------------------------------

  /// Append a validated element; throws std::invalid_argument on bad nodes,
  /// duplicate names or non-finite values.
  Element& add(Element element);

  Element& add_resistor(std::string name, std::string_view np, std::string_view nn, double ohms);
  Element& add_conductance(std::string name, std::string_view np, std::string_view nn,
                           double siemens);
  Element& add_capacitor(std::string name, std::string_view np, std::string_view nn,
                         double farads);
  Element& add_inductor(std::string name, std::string_view np, std::string_view nn,
                        double henries);
  Element& add_vccs(std::string name, std::string_view np, std::string_view nn,
                    std::string_view cp, std::string_view cn, double gm);
  Element& add_vcvs(std::string name, std::string_view np, std::string_view nn,
                    std::string_view cp, std::string_view cn, double gain);
  Element& add_cccs(std::string name, std::string_view np, std::string_view nn,
                    std::string ctrl_branch, double gain);
  Element& add_ccvs(std::string name, std::string_view np, std::string_view nn,
                    std::string ctrl_branch, double ohms);
  Element& add_vsource(std::string name, std::string_view np, std::string_view nn,
                       double magnitude = 1.0);
  Element& add_isource(std::string name, std::string_view np, std::string_view nn,
                       double magnitude = 1.0);
  Element& add_opamp(std::string name, std::string_view out, std::string_view inp,
                     std::string_view inn);

  [[nodiscard]] const std::vector<Element>& elements() const noexcept { return elements_; }
  [[nodiscard]] std::size_t element_count() const noexcept { return elements_.size(); }

  [[nodiscard]] const Element* find_element(std::string_view name) const noexcept;

  /// Mutable element lookup (e.g. to attach a transient Waveform to a parsed
  /// source). Node/name edits must go through the dedicated editing
  /// operations; nullptr when absent.
  [[nodiscard]] Element* mutable_element(std::string_view name) noexcept;

  /// Remove (open-circuit) an element. Returns false if absent.
  bool remove_element(std::string_view name);

  /// Overwrite an element's value in place. Unlike the add_* builders this
  /// accepts zero (an "opened" element whose stamp pattern must survive for
  /// plan replay); the value must still be finite. Returns false if absent.
  bool set_element_value(std::string_view name, double value);

  /// Short-circuit an element: its two terminals are merged (the kept node is
  /// the lower index / ground wins) and the element is removed. Controlled
  /// sources keep their control references through the merge.
  bool short_element(std::string_view name);

  // --- Nonlinear devices ----------------------------------------------------
  //
  // Devices make the circuit nonlinear: the AC/canonicalization path rejects
  // a circuit with devices (see netlist::is_canonical), and the dc:: Newton
  // solver + dc::linearize_at() turn it into a linear one at a bias point.

  /// Append a validated device; throws std::invalid_argument on bad nodes,
  /// a name that collides with an element or device, or non-finite model
  /// parameters.
  Device& add_device(Device device);

  Device& add_diode(std::string name, std::string_view anode, std::string_view cathode,
                    const DeviceModel& model, int polarity = 1);
  Device& add_bjt(std::string name, std::string_view collector, std::string_view base,
                  std::string_view emitter, const DeviceModel& model, int polarity = 1);
  Device& add_mos(std::string name, std::string_view drain, std::string_view gate,
                  std::string_view source, const DeviceModel& model, int polarity = 1);

  [[nodiscard]] const std::vector<Device>& devices() const noexcept { return devices_; }
  [[nodiscard]] bool has_devices() const noexcept { return !devices_.empty(); }

  [[nodiscard]] const Device* find_device(std::string_view name) const noexcept;

  // --- Initial conditions (.ic) ---------------------------------------------

  /// Pin a node's voltage at t = 0 for transient analysis (the `.ic`
  /// directive). Overrides the bias solution for that node; repeated
  /// settings of the same node keep the last value. Throws
  /// std::invalid_argument for ground or an unknown node.
  void set_initial_condition(std::string_view node_name, double volts);

  /// (node index, volts) pairs in first-set order.
  [[nodiscard]] const std::vector<std::pair<int, double>>& initial_conditions() const noexcept {
    return initial_conditions_;
  }

  // --- Statistics (scale-factor heuristics, §3.2) ---------------------------

  /// All capacitor values, in farads.
  [[nodiscard]] std::vector<double> capacitor_values() const;

  /// All "conductance-like" magnitudes: 1/R for resistors, G for
  /// conductances, |gm| for VCCS.
  [[nodiscard]] std::vector<double> conductance_values() const;

  [[nodiscard]] std::size_t count(ElementKind kind) const noexcept;

  /// One-line description: "ua741: 27 nodes, 24 C, 58 G/gm, ...".
  [[nodiscard]] std::string summary() const;

 private:
  void validate_new_element(const Element& element) const;
  [[nodiscard]] int resolve_alias(int index) const noexcept;

  std::vector<std::string> node_names_;
  /// alias_[i] == i normally; short_element() points merged nodes at their
  /// survivor so name lookups keep working.
  std::vector<int> alias_;
  std::vector<Element> elements_;
  std::vector<Device> devices_;
  std::vector<std::pair<int, double>> initial_conditions_;
};

}  // namespace symref::netlist
