#include "netlist/devices.h"

namespace symref::netlist {

BjtParams BjtParams::from_bias(double collector_current, double beta, double early_voltage,
                               double tau_f, double cje, double cmu, double ccs, double rb) {
  constexpr double kThermalVoltage = 0.02585;  // kT/q at 300 K
  BjtParams p;
  p.gm = collector_current / kThermalVoltage;
  p.beta = beta;
  p.ro = early_voltage > 0.0 ? early_voltage / collector_current : 0.0;
  p.rb = rb;
  p.cpi = p.gm * tau_f + cje;
  p.cmu = cmu;
  p.ccs = ccs;
  return p;
}

void expand_bjt(Circuit& circuit, const std::string& name, std::string_view collector,
                std::string_view base, std::string_view emitter, const BjtParams& params) {
  // Intrinsic base node only when a spreading resistance is modeled.
  std::string internal_base(base);
  if (params.rb > 0.0) {
    internal_base = name + ".bi";
    circuit.add_resistor(name + ".rb", base, internal_base, params.rb);
  }
  if (params.gm > 0.0 && params.beta > 0.0) {
    circuit.add_resistor(name + ".rpi", internal_base, emitter, params.beta / params.gm);
  }
  if (params.cpi > 0.0) {
    circuit.add_capacitor(name + ".cpi", internal_base, emitter, params.cpi);
  }
  if (params.cmu > 0.0) {
    circuit.add_capacitor(name + ".cmu", internal_base, collector, params.cmu);
  }
  if (params.gm != 0.0) {
    circuit.add_vccs(name + ".gm", collector, emitter, internal_base, emitter, params.gm);
  }
  if (params.ro > 0.0) {
    circuit.add_resistor(name + ".ro", collector, emitter, params.ro);
  }
  if (params.ccs > 0.0) {
    circuit.add_capacitor(name + ".ccs", collector, "0", params.ccs);
  }
}

void expand_mos(Circuit& circuit, const std::string& name, std::string_view drain,
                std::string_view gate, std::string_view source, const MosParams& params) {
  if (params.gm != 0.0) {
    circuit.add_vccs(name + ".gm", drain, source, gate, source, params.gm);
  }
  if (params.gds > 0.0) {
    circuit.add_conductance(name + ".gds", drain, source, params.gds);
  }
  if (params.cgs > 0.0) {
    circuit.add_capacitor(name + ".cgs", gate, source, params.cgs);
  }
  if (params.cgd > 0.0) {
    circuit.add_capacitor(name + ".cgd", gate, drain, params.cgd);
  }
  if (params.cdb > 0.0) {
    circuit.add_capacitor(name + ".cdb", drain, "0", params.cdb);
  }
}

}  // namespace symref::netlist
