// Shared MNA stamping machinery for the time-invariant solvers (dc::OpSolver
// and transient::TransientSolver).
//
// Both solvers live on the same contract: the stamp vector handed to
// sparse::PatternedMatrix::rebind() is rebuilt every iterate as base stamps
// followed by per-device companion stamps appended in device order, so the
// (row, col) sequence — and with it the merged structure and the recorded
// symbolic plan — is pinned across iterations. This header extracts that
// machinery (row assignment, linear stamps, device companion stamps, junction
// limiting and the escalating-pivot factorization ladder) out of the Newton
// solver so the transient integrator reuses it verbatim instead of forking a
// second copy of the stamp conventions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/circuit.h"
#include "sparse/lu.h"
#include "sparse/matrix.h"

namespace symref::dc {

/// Escalating-pivot fresh factorization, mirroring CofactorEvaluator's
/// ladder so DC, transient and AC degrade with the same policy.
///
/// The Newton Jacobian is a far harsher replay customer than an AC sweep: a
/// junction conductance swings from ~1 S (forward bias) to gmin = 1e-12 S
/// (cut off) between iterations, 12 decades, while an AC point moves values
/// by fractions of a decade. Factoring at the default 1e-3 threshold would
/// put the replay acceptance bar at 1e-8 relative
/// (kReplayRelaxedThresholdScale) and the off-state transients of a
/// realistic deck refuse it mid-flight, costing the one-plan guarantee. A
/// 1e-6 factor threshold drops the bar to 1e-11: every transient still
/// replays, mid-flight steps lose some accuracy Newton self-corrects anyway,
/// and the converged iterate sits near the well-conditioned on-state the
/// plan was recorded at.
bool factor_with_ladder(sparse::SparseLu& lu, const sparse::CompressedMatrix& matrix,
                        bool* degraded);

/// Per-device Newton state: the (limited) junction voltages the companion
/// models were last evaluated at, in the positive-polarity model frame.
struct DeviceState {
  double v1 = 0.0;  // diode vd / BJT vbe / MOS vgs
  double v2 = 0.0;  // BJT vbc / MOS vds
};

/// Stamping layout of one circuit: row assignment, the constant linear
/// stamps, the alpha-scaled source terms, and per-device bookkeeping.
struct Layout {
  int node_rows = 0;  // non-ground node count
  int dim = 0;        // node rows + auxiliary branch rows

  /// Linear stamps that are constant across Newton iterations. The DC layout
  /// treats capacitors as open and inductors as shorts; the transient layout
  /// appends companion stamps after these (see reactive_* below).
  std::vector<sparse::PatternStamp> base_stamps;

  struct Source {
    int row = 0;  // branch row (V) or node row (I)
    double value = 0.0;
    bool branch = false;
    int element = -1;  // index into Circuit::elements() (waveform lookup)
    /// Sign of this row's contribution: value == scale * dc_value always, but
    /// the transient path re-derives the level from the element's waveform at
    /// each time point and needs the sign even when dc_value is 0.
    double scale = 1.0;
  };
  std::vector<Source> sources;  // rhs += alpha * value at row

  /// Reactive elements (for the transient companion models; the DC solver
  /// ignores these — a capacitor is already open in base_stamps and an
  /// inductor branch row already reads v_p - v_n = 0).
  struct Reactive {
    int element = -1;  // index into Circuit::elements()
    int row_pos = -1;  // node rows (-1 = ground)
    int row_neg = -1;
    int branch = -1;   // inductor auxiliary current row
    double value = 0.0;  // farads / henries
  };
  std::vector<Reactive> capacitors;
  std::vector<Reactive> inductors;

  std::vector<std::string> branch_names;
  std::vector<const netlist::Device*> devices;

  [[nodiscard]] int row_of_node(int node) const noexcept { return node - 1; }
};

void stamp_conductance(std::vector<sparse::PatternStamp>& stamps, int ra, int rb, double g);
void stamp_entry(std::vector<sparse::PatternStamp>& stamps, int row, int col, double g);

/// Transconductance block: current g*(v_cp - v_cn) leaving node rp (entering
/// rn) — four entries, ground rows/columns skipped.
void stamp_vccs(std::vector<sparse::PatternStamp>& stamps, int rp, int rn, int rcp, int rcn,
                double g);

/// Row assignment + constant linear stamps + source terms for `circuit`.
/// Throws std::invalid_argument when a CCCS/CCVS senses a branchless element.
std::unique_ptr<Layout> build_layout(const netlist::Circuit& circuit);

/// Append one device's companion stamps for the given evaluation (device
/// conductances + the junction gmin shunts) and subtract its equivalent
/// currents from `rhs`. MUST emit the same (row, col) sequence for every
/// call — the pattern pin.
void stamp_device(std::vector<sparse::PatternStamp>& stamps, const netlist::Device& d,
                  const DeviceState& state, double gmin, const Layout& layout,
                  std::vector<double>* rhs);

/// Junction voltages proposed by the unknown vector x, in the
/// positive-polarity model frame.
DeviceState proposed_state(const netlist::Device& d, const std::vector<double>& x,
                           const Layout& layout);

/// Initial junction guesses: forward junctions at vcrit (the classic SPICE
/// warm start that also makes the FIRST factorization see on-state
/// conductances, so the recorded pivot order stays acceptable for every
/// later replay), reverse junctions at zero.
DeviceState initial_state(const netlist::Device& d);

/// pnjlim applied to the exponential junctions of one device; MOS voltages
/// pass through (polynomial model, handled by the global damping clamp).
DeviceState limit_state(const netlist::Device& d, const DeviceState& proposed,
                        const DeviceState& old, bool* limited);

}  // namespace symref::dc
