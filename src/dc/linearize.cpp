#include "dc/linearize.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "devices/models.h"
#include "netlist/devices.h"

namespace symref::dc {

using netlist::Circuit;
using netlist::Device;
using netlist::DeviceKind;
using netlist::Element;
using netlist::ElementKind;

namespace {

/// Union-find over circuit node indices; ground (0) always wins a merge,
/// otherwise the lower index does — deterministic representatives.
class NodeMerge {
 public:
  explicit NodeMerge(int count) : parent_(static_cast<std::size_t>(count)) {
    for (int i = 0; i < count; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }

  int find(int i) {
    while (parent_[static_cast<std::size_t>(i)] != i) {
      parent_[static_cast<std::size_t>(i)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(i)])];
      i = parent_[static_cast<std::size_t>(i)];
    }
    return i;
  }

  void merge(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    const int keep = std::min(a, b);
    const int gone = std::max(a, b);
    parent_[static_cast<std::size_t>(gone)] = keep;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

Circuit linearize_at(const Circuit& circuit, const OpResult& op) {
  if (op.devices.size() != circuit.devices().size()) {
    throw std::invalid_argument(
        "linearize_at: operating point does not match the circuit (device count differs)");
  }
  for (std::size_t i = 0; i < op.devices.size(); ++i) {
    if (op.devices[i].name != circuit.devices()[i].name) {
      throw std::invalid_argument("linearize_at: operating point lists device '" +
                                  op.devices[i].name + "' where the circuit has '" +
                                  circuit.devices()[i].name + "'");
    }
  }

  // Voltage sources whose branch current is sensed must survive as
  // elements; every other one merges its terminal pair.
  std::set<std::string> sensed;
  for (const Element& e : circuit.elements()) {
    if (e.kind == ElementKind::Cccs || e.kind == ElementKind::Ccvs) sensed.insert(e.ctrl_branch);
  }

  NodeMerge merge(circuit.node_count());
  for (const Element& e : circuit.elements()) {
    if (e.kind == ElementKind::VoltageSource && sensed.count(e.name) == 0) {
      merge.merge(e.node_pos, e.node_neg);
    }
  }

  auto mapped = [&](int node) -> std::string {
    const int rep = merge.find(node);
    return rep == 0 ? std::string("0") : circuit.node_name(rep);
  };

  Circuit out;
  out.title = circuit.title;

  for (const Element& e : circuit.elements()) {
    const std::string np = mapped(e.node_pos);
    const std::string nn = mapped(e.node_neg);
    switch (e.kind) {
      case ElementKind::Resistor:
        out.add_resistor(e.name, np, nn, e.value);
        break;
      case ElementKind::Conductance:
        out.add_conductance(e.name, np, nn, e.value);
        break;
      case ElementKind::Capacitor:
        out.add_capacitor(e.name, np, nn, e.value);
        break;
      case ElementKind::Inductor:
        out.add_inductor(e.name, np, nn, e.value);
        break;
      case ElementKind::Vccs:
        out.add_vccs(e.name, np, nn, mapped(e.ctrl_pos), mapped(e.ctrl_neg), e.value);
        break;
      case ElementKind::Vcvs:
        out.add_vcvs(e.name, np, nn, mapped(e.ctrl_pos), mapped(e.ctrl_neg), e.value);
        break;
      case ElementKind::Cccs:
        out.add_cccs(e.name, np, nn, e.ctrl_branch, e.value);
        break;
      case ElementKind::Ccvs:
        out.add_ccvs(e.name, np, nn, e.ctrl_branch, e.value);
        break;
      case ElementKind::VoltageSource:
        // Only sensed sources reach here un-merged; they act as the AC
        // short their DC role implies, with no AC drive of their own.
        if (sensed.count(e.name) != 0) {
          out.add_vsource(e.name, np, nn, 0.0);
        }
        break;
      case ElementKind::CurrentSource:
        break;  // AC open
      case ElementKind::IdealOpAmp:
        out.add_opamp(e.name, np, mapped(e.ctrl_pos), mapped(e.ctrl_neg));
        break;
    }
  }

  for (std::size_t i = 0; i < circuit.devices().size(); ++i) {
    const Device& d = circuit.devices()[i];
    const OpDeviceInfo& info = op.devices[i];
    const double pol = static_cast<double>(d.polarity);
    switch (d.kind) {
      case DeviceKind::kDiode: {
        // Model-frame junction voltage: the op table stores the terminal
        // frame (pol * vd).
        const devices::DiodeSmallSignal ss =
            devices::diode_small_signal(d.model, pol * info.value("vd"));
        const std::string a = mapped(d.nodes[0]);
        const std::string c = mapped(d.nodes[1]);
        if (ss.gd != 0.0) out.add_conductance(d.name + ".gd", a, c, ss.gd);
        if (ss.c > 0.0) out.add_capacitor(d.name + ".cd", a, c, ss.c);
        break;
      }
      case DeviceKind::kBjt: {
        const netlist::BjtParams p = devices::bjt_small_signal(d.model, info.value("ic"));
        netlist::expand_bjt(out, d.name, mapped(d.nodes[0]), mapped(d.nodes[1]),
                            mapped(d.nodes[2]), p);
        break;
      }
      case DeviceKind::kMos: {
        const netlist::MosParams p = devices::mos_small_signal(
            d.model, pol * info.value("vgs"), pol * info.value("vds"));
        netlist::expand_mos(out, d.name, mapped(d.nodes[0]), mapped(d.nodes[1]),
                            mapped(d.nodes[2]), p);
        break;
      }
    }
  }

  return out;
}

Circuit linearize(const Circuit& circuit, const OpOptions& options) {
  return linearize_at(circuit, solve_op(circuit, options));
}

}  // namespace symref::dc
