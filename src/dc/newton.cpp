#include "dc/newton.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <complex>
#include <map>
#include <memory>
#include <sstream>

#include "dc/stamps.h"
#include "devices/models.h"
#include "mna/errors.h"
#include "support/fault_injection.h"
#include "support/timer.h"

namespace symref::dc {

using netlist::Circuit;
using netlist::Device;
using netlist::DeviceKind;
using netlist::Element;
using netlist::ElementKind;
using sparse::PatternStamp;

// The stamping machinery (Layout, build_layout, stamp_device, junction
// limiting, factor_with_ladder) lives in dc/stamps.{h,cpp}, shared with the
// transient integrator.

namespace {

struct StageTelemetry {
  int iterations = 0;
  std::uint64_t fresh_factors = 0;
  std::uint64_t escalations = 0;
  bool degraded = false;
};

}  // namespace

OpSolver::OpSolver(OpOptions options) : options_(std::move(options)) {}

OpResult OpSolver::solve(const Circuit& circuit) {
  const support::Timer timer;
  auto layout_ptr = build_layout(circuit);
  const Layout& layout = *layout_ptr;

  OpResult result;
  for (int n = 1; n < circuit.node_count(); ++n) result.node_names.push_back(circuit.node_name(n));
  result.branch_names = layout.branch_names;
  if (layout.dim == 0) {
    result.seconds = timer.seconds();
    return result;
  }

  const std::size_t dim = static_cast<std::size_t>(layout.dim);
  std::vector<double> x(dim, 0.0);
  std::vector<DeviceState> state(layout.devices.size());
  std::vector<PatternStamp> stamps;
  std::vector<double> rhs(dim, 0.0);
  std::vector<std::complex<double>> rhs_c(dim);
  StageTelemetry telemetry;
  bool plan_degraded = false;
  // Hidden diagnostic: SYMREF_DC_TRACE=1 prints one line per Newton
  // iteration (stage, step norm, worst unknown, limited junctions).
  const bool trace = std::getenv("SYMREF_DC_TRACE") != nullptr;

  auto reset_start = [&] {
    std::fill(x.begin(), x.end(), 0.0);
    for (std::size_t i = 0; i < state.size(); ++i) state[i] = initial_state(*layout.devices[i]);
  };

  // One damped Newton stage at a fixed (gmin, source scale). Returns true on
  // convergence; x/state carry the last iterate either way.
  auto newton_stage = [&](double gmin, double alpha) -> bool {
    bool converged = false;
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      if (options_.cancel.cancelled()) throw support::CancelledError();
      ++telemetry.iterations;

      // Assemble: base stamps + device companions at the current state.
      stamps.assign(layout.base_stamps.begin(), layout.base_stamps.end());
      std::fill(rhs.begin(), rhs.end(), 0.0);
      for (const Layout::Source& s : layout.sources) {
        rhs[static_cast<std::size_t>(s.row)] += alpha * s.value;
      }
      for (std::size_t i = 0; i < layout.devices.size(); ++i) {
        stamp_device(stamps, *layout.devices[i], state[i], gmin, layout, &rhs);
      }
      if (!assembly_.rebind(layout.dim, stamps)) {
        // New merged structure (first solve, or a different circuit): a
        // fresh pattern invalidates any recorded plan.
        assembly_ = sparse::PatternedMatrix(layout.dim, stamps);
        has_pattern_ = false;
      }
      const sparse::CompressedMatrix& matrix = assembly_.assemble(0.0);

      // Factor: replay the recorded plan; fresh factorization only when the
      // replay is refused (or the newton_step fault site fires), through the
      // same escalation ladder the AC evaluators use.
      const bool refused =
          !has_pattern_ || !lu_.has_plan() || support::fault("newton_step") ||
          !lu_.refactor(matrix);
      if (refused) {
        bool degraded = false;
        if (!factor_with_ladder(lu_, matrix, &degraded)) {
          throw mna::SingularSystemError(
              "dc: singular Jacobian (floating node or degenerate DC path?)");
        }
        ++telemetry.fresh_factors;
        if (degraded) ++telemetry.escalations;
        plan_degraded = degraded;
        has_pattern_ = true;
      }
      telemetry.degraded = telemetry.degraded || plan_degraded;

      for (std::size_t i = 0; i < dim; ++i) rhs_c[i] = rhs[i];
      lu_.solve(rhs_c);

      // Damped acceptance: per-component clamp on the node-voltage step.
      bool clamped = false;
      double max_rel = 0.0;
      std::size_t worst = 0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double x_new = rhs_c[i].real();
        double delta = x_new - x[i];
        if (i < static_cast<std::size_t>(layout.node_rows) &&
            std::fabs(delta) > options_.max_voltage_step) {
          delta = delta > 0 ? options_.max_voltage_step : -options_.max_voltage_step;
          clamped = true;
        }
        const double accepted = x[i] + delta;
        const double abstol =
            i < static_cast<std::size_t>(layout.node_rows) ? options_.abstol_v : options_.abstol_i;
        const double tol =
            abstol + options_.reltol * std::max(std::fabs(accepted), std::fabs(x[i]));
        if (std::fabs(delta) / tol > max_rel) worst = i;
        max_rel = std::max(max_rel, std::fabs(delta) / tol);
        x[i] = accepted;
      }

      // Junction limiting against the previous evaluation point.
      bool limited = false;
      std::string limited_names;
      for (std::size_t i = 0; i < layout.devices.size(); ++i) {
        const DeviceState proposed = proposed_state(*layout.devices[i], x, layout);
        bool this_limited = false;
        state[i] = limit_state(*layout.devices[i], proposed, state[i], &this_limited);
        if (this_limited) {
          limited = true;
          if (trace) {
            limited_names += ' ';
            limited_names += layout.devices[i]->name;
          }
        }
      }
      if (trace) {
        std::fprintf(stderr,
                     "dc-trace: gmin=%.1e alpha=%.2f iter=%d max_rel=%.3e worst=%s "
                     "x[worst]=%.6g clamped=%d limited=[%s]\n",
                     gmin, alpha, iter, max_rel,
                     worst < static_cast<std::size_t>(layout.node_rows)
                         ? result.node_names[worst].c_str()
                         : layout.branch_names[worst - static_cast<std::size_t>(layout.node_rows)]
                               .c_str(),
                     x[worst], clamped ? 1 : 0, limited_names.c_str());
      }

      if (!clamped && !limited && max_rel <= 1.0 && iter > 0) {
        converged = true;
        break;
      }
    }
    return converged;
  };

  // --- Homotopy ladder ----------------------------------------------------
  int gmin_steps = 0;
  int source_steps = 0;
  reset_start();
  bool converged = newton_stage(options_.gmin, 1.0);

  if (!converged) {
    // gmin stepping: walk the junction shunt down geometrically; the stamp
    // pattern (and hence the plan) is identical at every rung.
    reset_start();
    bool ladder_ok = true;
    for (double g = options_.gmin_start; ladder_ok && g > options_.gmin * 0.999; g *= 0.1) {
      ++gmin_steps;
      ladder_ok = newton_stage(g, 1.0);
    }
    if (ladder_ok) {
      ++gmin_steps;
      converged = newton_stage(options_.gmin, 1.0);
    }
  }

  if (!converged && options_.source_steps > 0) {
    // Source stepping: ramp every DC source from zero (where x = 0 solves
    // the system exactly) up to full scale.
    reset_start();
    bool ramp_ok = true;
    for (int k = 1; ramp_ok && k <= options_.source_steps; ++k) {
      ++source_steps;
      ramp_ok = newton_stage(options_.gmin, static_cast<double>(k) /
                                                static_cast<double>(options_.source_steps));
    }
    converged = ramp_ok;
  }

  result.newton_iterations = telemetry.iterations;
  result.gmin_steps = gmin_steps;
  result.source_steps = source_steps;
  fresh_factors_ += telemetry.fresh_factors;
  escalations_ += telemetry.escalations;
  result.fresh_factorizations = telemetry.fresh_factors;
  result.pivot_escalations = telemetry.escalations;
  result.degraded = telemetry.degraded;

  if (!converged) {
    std::ostringstream os;
    os << "dc: no convergence after " << telemetry.iterations << " Newton iterations ("
       << gmin_steps << " gmin steps, " << source_steps << " source steps)";
    throw NoConvergenceError(os.str());
  }

  // Final residual (infinity norm over the KCL rows, in amps) from the last
  // assembled system: F = A*x - b.
  {
    std::vector<double> f(dim, 0.0);
    for (const PatternStamp& s : stamps) {
      f[static_cast<std::size_t>(s.row)] +=
          s.conductance * x[static_cast<std::size_t>(s.col)];
    }
    double max_res = 0.0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(layout.node_rows); ++i) {
      max_res = std::max(max_res, std::fabs(f[i] - rhs[i]));
    }
    result.max_residual = max_res;
  }

  result.node_voltages.assign(x.begin(), x.begin() + layout.node_rows);
  result.branch_currents.assign(x.begin() + layout.node_rows, x.end());

  // Device operating-point table (terminal frame: voltages/currents carry
  // the device's sign; small-signal magnitudes are positive).
  for (std::size_t i = 0; i < layout.devices.size(); ++i) {
    const Device& d = *layout.devices[i];
    const double pol = static_cast<double>(d.polarity);
    OpDeviceInfo info;
    info.name = d.name;
    info.kind = netlist::device_kind_name(d.kind);
    switch (d.kind) {
      case DeviceKind::kDiode: {
        const devices::DiodeEval e = devices::eval_diode(d.model, state[i].v1);
        const devices::DiodeSmallSignal ss = devices::diode_small_signal(d.model, state[i].v1);
        info.values = {{"vd", pol * state[i].v1},
                       {"id", pol * e.id},
                       {"gd", ss.gd},
                       {"c", ss.c}};
        break;
      }
      case DeviceKind::kBjt: {
        const devices::BjtEval e = devices::eval_bjt(d.model, state[i].v1, state[i].v2);
        const netlist::BjtParams p = devices::bjt_small_signal(d.model, e.ic);
        info.values = {{"vbe", pol * state[i].v1}, {"vbc", pol * state[i].v2},
                       {"ic", pol * e.ic},         {"ib", pol * e.ib},
                       {"gm", p.gm},               {"rpi", p.gm > 0.0 ? p.beta / p.gm : 0.0},
                       {"ro", p.ro}};
        break;
      }
      case DeviceKind::kMos: {
        const devices::MosEval e = devices::eval_mos(d.model, state[i].v1, state[i].v2);
        info.values = {{"vgs", pol * state[i].v1},
                       {"vds", pol * state[i].v2},
                       {"id", pol * e.id},
                       {"gm", e.did_dvgs},
                       {"gds", e.did_dvds}};
        break;
      }
    }
    result.devices.push_back(std::move(info));
  }

  result.seconds = timer.seconds();
  return result;
}

double OpDeviceInfo::value(std::string_view key) const {
  for (const auto& [k, v] : values) {
    if (k == key) return v;
  }
  return 0.0;
}

double OpResult::voltage_of(std::string_view node) const {
  if (node == "0" || node == "gnd" || node == "GND" || node == "Gnd") return 0.0;
  for (std::size_t i = 0; i < node_names.size(); ++i) {
    if (node_names[i] == node) return node_voltages[i];
  }
  throw std::invalid_argument("OpResult: unknown node '" + std::string(node) + "'");
}

OpResult solve_op(const Circuit& circuit, const OpOptions& options) {
  OpSolver solver(options);
  return solver.solve(circuit);
}

}  // namespace symref::dc
