#include "dc/newton.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <complex>
#include <map>
#include <memory>
#include <sstream>

#include "devices/models.h"
#include "mna/errors.h"
#include "support/fault_injection.h"
#include "support/timer.h"

namespace symref::dc {

using netlist::Circuit;
using netlist::Device;
using netlist::DeviceKind;
using netlist::Element;
using netlist::ElementKind;
using sparse::PatternStamp;

namespace {

/// Escalating-pivot fresh factorization, mirroring CofactorEvaluator's
/// ladder so DC and AC degrade with the same policy.
bool factor_with_ladder(sparse::SparseLu& lu, const sparse::CompressedMatrix& matrix,
                        bool* degraded) {
  *degraded = false;
  // The DC Jacobian is a far harsher replay customer than an AC sweep: a
  // junction conductance swings from ~1 S (forward bias) to gmin = 1e-12 S
  // (cut off) between iterations, 12 decades, while an AC point moves
  // values by fractions of a decade. Factoring at the default 1e-3
  // threshold would put the replay acceptance bar at 1e-8 relative
  // (kReplayRelaxedThresholdScale) and the off-state transients of a
  // realistic deck refuse it mid-flight, costing the one-plan guarantee.
  // A 1e-6 factor threshold drops the bar to 1e-11: every transient still
  // replays, mid-flight steps lose some accuracy Newton self-corrects
  // anyway, and the converged iterate sits near the well-conditioned
  // on-state the plan was recorded at (OpResult::max_residual verifies the
  // endpoint independently).
  sparse::SparseLuOptions loose;
  loose.pivot_threshold = 1e-6;
  if (lu.factor(matrix, loose)) return true;
  sparse::SparseLuOptions relaxed;
  relaxed.pivot_threshold = 0.0;
  relaxed.singularity_tolerance = 0.0;
  if (lu.factor(matrix, relaxed)) {
    *degraded = true;
    return true;
  }
  return false;
}

/// Per-device Newton state: the (limited) junction voltages the companion
/// models were last evaluated at, in the positive-polarity model frame.
struct DeviceState {
  double v1 = 0.0;  // diode vd / BJT vbe / MOS vgs
  double v2 = 0.0;  // BJT vbc / MOS vds
};

/// Stamping layout of one circuit: row assignment, the constant linear
/// stamps, the alpha-scaled source terms, and per-device bookkeeping. The
/// stamp vector handed to rebind() is rebuilt every iteration as
/// base_stamps + device stamps appended in device order — the (row, col)
/// sequence is identical each time, so the merged structure (and with it
/// the symbolic plan) is pinned.
struct Layout {
  int node_rows = 0;  // non-ground node count
  int dim = 0;        // node rows + auxiliary branch rows
  std::vector<PatternStamp> base_stamps;

  struct Source {
    int row = 0;       // branch row (V) or node row (I)
    double value = 0.0;
    bool branch = false;
  };
  std::vector<Source> sources;  // rhs += alpha * value at row

  std::vector<std::string> branch_names;
  std::vector<const Device*> devices;

  [[nodiscard]] int row_of_node(int node) const noexcept { return node - 1; }
};

void stamp_conductance(std::vector<PatternStamp>& stamps, int ra, int rb, double g) {
  if (ra >= 0) stamps.push_back({ra, ra, g, 0.0});
  if (rb >= 0) stamps.push_back({rb, rb, g, 0.0});
  if (ra >= 0 && rb >= 0) {
    stamps.push_back({ra, rb, -g, 0.0});
    stamps.push_back({rb, ra, -g, 0.0});
  }
}

void stamp_entry(std::vector<PatternStamp>& stamps, int row, int col, double g) {
  if (row >= 0 && col >= 0) stamps.push_back({row, col, g, 0.0});
}

/// Transconductance block: current g*(v_cp - v_cn) leaving node rp (entering
/// rn) — four entries, ground rows/columns skipped.
void stamp_vccs(std::vector<PatternStamp>& stamps, int rp, int rn, int rcp, int rcn, double g) {
  stamp_entry(stamps, rp, rcp, g);
  stamp_entry(stamps, rp, rcn, -g);
  stamp_entry(stamps, rn, rcp, -g);
  stamp_entry(stamps, rn, rcn, g);
}

std::unique_ptr<Layout> build_layout(const Circuit& circuit) {
  auto layout = std::make_unique<Layout>();
  layout->node_rows = circuit.unknown_count();

  // Pass 1: assign branch rows.
  std::map<std::string, int> branch_row;
  int next_row = layout->node_rows;
  for (const Element& e : circuit.elements()) {
    if (e.needs_branch_current()) {
      branch_row[e.name] = next_row++;
      layout->branch_names.push_back(e.name);
    }
  }
  layout->dim = next_row;

  auto row = [&](int node) { return node - 1; };  // ground (0) -> -1
  auto ctrl_row = [&](const Element& e) {
    const auto it = branch_row.find(e.ctrl_branch);
    if (it == branch_row.end()) {
      throw std::invalid_argument("dc: element '" + e.name + "' senses branch '" +
                                  e.ctrl_branch +
                                  "' which is not a branch-current element");
    }
    return it->second;
  };

  // Pass 2: constant linear stamps + alpha-scaled source terms.
  std::vector<PatternStamp>& stamps = layout->base_stamps;
  for (const Element& e : circuit.elements()) {
    const int rp = row(e.node_pos);
    const int rn = row(e.node_neg);
    switch (e.kind) {
      case ElementKind::Resistor:
        stamp_conductance(stamps, rp, rn, 1.0 / e.value);
        break;
      case ElementKind::Conductance:
        stamp_conductance(stamps, rp, rn, e.value);
        break;
      case ElementKind::Capacitor:
        break;  // open at DC
      case ElementKind::Vccs:
        stamp_vccs(stamps, rp, rn, row(e.ctrl_pos), row(e.ctrl_neg), e.value);
        break;
      case ElementKind::Cccs: {
        const int rb = ctrl_row(e);
        stamp_entry(stamps, rp, rb, e.value);
        stamp_entry(stamps, rn, rb, -e.value);
        break;
      }
      case ElementKind::VoltageSource:
      case ElementKind::Inductor:
      case ElementKind::Vcvs:
      case ElementKind::Ccvs: {
        const int rb = branch_row.at(e.name);
        stamp_entry(stamps, rp, rb, 1.0);
        stamp_entry(stamps, rn, rb, -1.0);
        stamp_entry(stamps, rb, rp, 1.0);
        stamp_entry(stamps, rb, rn, -1.0);
        if (e.kind == ElementKind::Vcvs) {
          stamp_entry(stamps, rb, row(e.ctrl_pos), -e.value);
          stamp_entry(stamps, rb, row(e.ctrl_neg), e.value);
        } else if (e.kind == ElementKind::Ccvs) {
          stamps.push_back({branch_row.at(e.name), ctrl_row(e), -e.value, 0.0});
        } else if (e.kind == ElementKind::VoltageSource) {
          layout->sources.push_back({rb, e.dc_value, true});
        }
        break;
      }
      case ElementKind::CurrentSource:
        // Positive current flows from node_pos through the source to
        // node_neg: extracted at pos, injected at neg.
        if (rp >= 0) layout->sources.push_back({rp, -e.dc_value, false});
        if (rn >= 0) layout->sources.push_back({rn, e.dc_value, false});
        break;
      case ElementKind::IdealOpAmp: {
        const int rb = branch_row.at(e.name);
        stamp_entry(stamps, rp, rb, 1.0);
        stamp_entry(stamps, rn, rb, -1.0);
        stamp_entry(stamps, rb, row(e.ctrl_pos), 1.0);
        stamp_entry(stamps, rb, row(e.ctrl_neg), -1.0);
        break;
      }
    }
  }

  for (const Device& d : circuit.devices()) layout->devices.push_back(&d);
  return layout;
}

/// Append one device's companion stamps for the given evaluation (device
/// conductances + the junction gmin shunts). MUST emit the same (row, col)
/// sequence for every call — the pattern pin.
void stamp_device(std::vector<PatternStamp>& stamps, const Device& d, const DeviceState& state,
                  double gmin, const Layout& layout,
                  std::vector<double>* rhs) {
  const double pol = static_cast<double>(d.polarity);
  switch (d.kind) {
    case DeviceKind::kDiode: {
      const int ra = layout.row_of_node(d.nodes[0]);
      const int rc = layout.row_of_node(d.nodes[1]);
      const devices::DiodeEval e = devices::eval_diode(d.model, state.v1);
      stamp_conductance(stamps, ra, rc, e.gd + gmin);
      if (ra >= 0) (*rhs)[static_cast<std::size_t>(ra)] -= pol * e.ieq;
      if (rc >= 0) (*rhs)[static_cast<std::size_t>(rc)] += pol * e.ieq;
      break;
    }
    case DeviceKind::kBjt: {
      const int rc = layout.row_of_node(d.nodes[0]);
      const int rb = layout.row_of_node(d.nodes[1]);
      const int re = layout.row_of_node(d.nodes[2]);
      const devices::BjtEval e = devices::eval_bjt(d.model, state.v1, state.v2);
      // Terminal-frame Jacobian (polarity cancels in every derivative):
      //   d ic/dVb = dic_dvbe + dic_dvbc, d ic/dVe = -dic_dvbe,
      //   d ic/dVc = -dic_dvbc; the base row likewise, and the emitter row
      //   is the negated column-wise sum of the two.
      // Collector row.
      stamp_entry(stamps, rc, rb, e.dic_dvbe + e.dic_dvbc);
      stamp_entry(stamps, rc, re, -e.dic_dvbe);
      stamp_entry(stamps, rc, rc, -e.dic_dvbc);
      // Base row.
      stamp_entry(stamps, rb, rb, e.dib_dvbe + e.dib_dvbc);
      stamp_entry(stamps, rb, re, -e.dib_dvbe);
      stamp_entry(stamps, rb, rc, -e.dib_dvbc);
      // Emitter row: ie = -(ic + ib).
      stamp_entry(stamps, re, rb, -(e.dic_dvbe + e.dic_dvbc + e.dib_dvbe + e.dib_dvbc));
      stamp_entry(stamps, re, re, e.dic_dvbe + e.dib_dvbe);
      stamp_entry(stamps, re, rc, e.dic_dvbc + e.dib_dvbc);
      // Junction gmin shunts.
      stamp_conductance(stamps, rb, re, gmin);
      stamp_conductance(stamps, rb, rc, gmin);
      if (rc >= 0) (*rhs)[static_cast<std::size_t>(rc)] -= pol * e.ic_eq;
      if (rb >= 0) (*rhs)[static_cast<std::size_t>(rb)] -= pol * e.ib_eq;
      if (re >= 0) (*rhs)[static_cast<std::size_t>(re)] += pol * (e.ic_eq + e.ib_eq);
      break;
    }
    case DeviceKind::kMos: {
      const int rd = layout.row_of_node(d.nodes[0]);
      const int rg = layout.row_of_node(d.nodes[1]);
      const int rs = layout.row_of_node(d.nodes[2]);
      const devices::MosEval e = devices::eval_mos(d.model, state.v1, state.v2);
      // Drain row: id depends on vgs = Vg - Vs and vds = Vd - Vs.
      stamp_entry(stamps, rd, rg, e.did_dvgs);
      stamp_entry(stamps, rd, rd, e.did_dvds);
      stamp_entry(stamps, rd, rs, -(e.did_dvgs + e.did_dvds));
      // Source row: is = -id.
      stamp_entry(stamps, rs, rg, -e.did_dvgs);
      stamp_entry(stamps, rs, rd, -e.did_dvds);
      stamp_entry(stamps, rs, rs, e.did_dvgs + e.did_dvds);
      // Channel gmin (keeps a cut-off device's drain/source rows alive).
      stamp_conductance(stamps, rd, rs, gmin);
      if (rd >= 0) (*rhs)[static_cast<std::size_t>(rd)] -= pol * e.id_eq;
      if (rs >= 0) (*rhs)[static_cast<std::size_t>(rs)] += pol * e.id_eq;
      break;
    }
  }
}

/// Junction voltages proposed by the node-voltage vector x, in the
/// positive-polarity model frame.
DeviceState proposed_state(const Device& d, const std::vector<double>& x,
                           const Layout& layout) {
  auto v = [&](int node) {
    const int r = layout.row_of_node(node);
    return r < 0 ? 0.0 : x[static_cast<std::size_t>(r)];
  };
  const double pol = static_cast<double>(d.polarity);
  DeviceState s;
  switch (d.kind) {
    case DeviceKind::kDiode:
      s.v1 = pol * (v(d.nodes[0]) - v(d.nodes[1]));
      break;
    case DeviceKind::kBjt:
      s.v1 = pol * (v(d.nodes[1]) - v(d.nodes[2]));  // vbe
      s.v2 = pol * (v(d.nodes[1]) - v(d.nodes[0]));  // vbc
      break;
    case DeviceKind::kMos:
      s.v1 = pol * (v(d.nodes[1]) - v(d.nodes[2]));  // vgs
      s.v2 = pol * (v(d.nodes[0]) - v(d.nodes[2]));  // vds
      break;
  }
  return s;
}

/// Initial junction guesses: forward junctions at vcrit (the classic SPICE
/// warm start that also makes the FIRST factorization see on-state
/// conductances, so the recorded pivot order stays acceptable for every
/// later replay), reverse junctions at zero.
DeviceState initial_state(const Device& d) {
  DeviceState s;
  const double n_vt = d.model.n * devices::kThermalVoltage;
  switch (d.kind) {
    case DeviceKind::kDiode:
      s.v1 = devices::junction_vcrit(d.model.is, n_vt);
      break;
    case DeviceKind::kBjt:
      s.v1 = devices::junction_vcrit(d.model.is, n_vt);
      s.v2 = 0.0;
      break;
    case DeviceKind::kMos:
      s.v1 = d.model.vto;  // edge of conduction
      s.v2 = 0.0;
      break;
  }
  return s;
}

/// pnjlim applied to the exponential junctions of one device; MOS voltages
/// pass through (polynomial model, handled by the global damping clamp).
DeviceState limit_state(const Device& d, const DeviceState& proposed, const DeviceState& old,
                        bool* limited) {
  DeviceState next = proposed;
  const double n_vt = d.model.n * devices::kThermalVoltage;
  const double vcrit = devices::junction_vcrit(d.model.is, n_vt);
  switch (d.kind) {
    case DeviceKind::kDiode:
      next.v1 = devices::pnjlim(proposed.v1, old.v1, n_vt, vcrit, limited);
      break;
    case DeviceKind::kBjt:
      next.v1 = devices::pnjlim(proposed.v1, old.v1, n_vt, vcrit, limited);
      next.v2 = devices::pnjlim(proposed.v2, old.v2, n_vt, vcrit, limited);
      break;
    case DeviceKind::kMos:
      break;
  }
  return next;
}

struct StageTelemetry {
  int iterations = 0;
  std::uint64_t fresh_factors = 0;
  std::uint64_t escalations = 0;
  bool degraded = false;
};

}  // namespace

OpSolver::OpSolver(OpOptions options) : options_(std::move(options)) {}

OpResult OpSolver::solve(const Circuit& circuit) {
  const support::Timer timer;
  auto layout_ptr = build_layout(circuit);
  const Layout& layout = *layout_ptr;

  OpResult result;
  for (int n = 1; n < circuit.node_count(); ++n) result.node_names.push_back(circuit.node_name(n));
  result.branch_names = layout.branch_names;
  if (layout.dim == 0) {
    result.seconds = timer.seconds();
    return result;
  }

  const std::size_t dim = static_cast<std::size_t>(layout.dim);
  std::vector<double> x(dim, 0.0);
  std::vector<DeviceState> state(layout.devices.size());
  std::vector<PatternStamp> stamps;
  std::vector<double> rhs(dim, 0.0);
  std::vector<std::complex<double>> rhs_c(dim);
  StageTelemetry telemetry;
  bool plan_degraded = false;
  // Hidden diagnostic: SYMREF_DC_TRACE=1 prints one line per Newton
  // iteration (stage, step norm, worst unknown, limited junctions).
  const bool trace = std::getenv("SYMREF_DC_TRACE") != nullptr;

  auto reset_start = [&] {
    std::fill(x.begin(), x.end(), 0.0);
    for (std::size_t i = 0; i < state.size(); ++i) state[i] = initial_state(*layout.devices[i]);
  };

  // One damped Newton stage at a fixed (gmin, source scale). Returns true on
  // convergence; x/state carry the last iterate either way.
  auto newton_stage = [&](double gmin, double alpha) -> bool {
    bool converged = false;
    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      if (options_.cancel.cancelled()) throw support::CancelledError();
      ++telemetry.iterations;

      // Assemble: base stamps + device companions at the current state.
      stamps.assign(layout.base_stamps.begin(), layout.base_stamps.end());
      std::fill(rhs.begin(), rhs.end(), 0.0);
      for (const Layout::Source& s : layout.sources) {
        rhs[static_cast<std::size_t>(s.row)] += alpha * s.value;
      }
      for (std::size_t i = 0; i < layout.devices.size(); ++i) {
        stamp_device(stamps, *layout.devices[i], state[i], gmin, layout, &rhs);
      }
      if (!assembly_.rebind(layout.dim, stamps)) {
        // New merged structure (first solve, or a different circuit): a
        // fresh pattern invalidates any recorded plan.
        assembly_ = sparse::PatternedMatrix(layout.dim, stamps);
        has_pattern_ = false;
      }
      const sparse::CompressedMatrix& matrix = assembly_.assemble(0.0);

      // Factor: replay the recorded plan; fresh factorization only when the
      // replay is refused (or the newton_step fault site fires), through the
      // same escalation ladder the AC evaluators use.
      const bool refused =
          !has_pattern_ || !lu_.has_plan() || support::fault("newton_step") ||
          !lu_.refactor(matrix);
      if (refused) {
        bool degraded = false;
        if (!factor_with_ladder(lu_, matrix, &degraded)) {
          throw mna::SingularSystemError(
              "dc: singular Jacobian (floating node or degenerate DC path?)");
        }
        ++telemetry.fresh_factors;
        if (degraded) ++telemetry.escalations;
        plan_degraded = degraded;
        has_pattern_ = true;
      }
      telemetry.degraded = telemetry.degraded || plan_degraded;

      for (std::size_t i = 0; i < dim; ++i) rhs_c[i] = rhs[i];
      lu_.solve(rhs_c);

      // Damped acceptance: per-component clamp on the node-voltage step.
      bool clamped = false;
      double max_rel = 0.0;
      std::size_t worst = 0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double x_new = rhs_c[i].real();
        double delta = x_new - x[i];
        if (i < static_cast<std::size_t>(layout.node_rows) &&
            std::fabs(delta) > options_.max_voltage_step) {
          delta = delta > 0 ? options_.max_voltage_step : -options_.max_voltage_step;
          clamped = true;
        }
        const double accepted = x[i] + delta;
        const double abstol =
            i < static_cast<std::size_t>(layout.node_rows) ? options_.abstol_v : options_.abstol_i;
        const double tol =
            abstol + options_.reltol * std::max(std::fabs(accepted), std::fabs(x[i]));
        if (std::fabs(delta) / tol > max_rel) worst = i;
        max_rel = std::max(max_rel, std::fabs(delta) / tol);
        x[i] = accepted;
      }

      // Junction limiting against the previous evaluation point.
      bool limited = false;
      std::string limited_names;
      for (std::size_t i = 0; i < layout.devices.size(); ++i) {
        const DeviceState proposed = proposed_state(*layout.devices[i], x, layout);
        bool this_limited = false;
        state[i] = limit_state(*layout.devices[i], proposed, state[i], &this_limited);
        if (this_limited) {
          limited = true;
          if (trace) {
            limited_names += ' ';
            limited_names += layout.devices[i]->name;
          }
        }
      }
      if (trace) {
        std::fprintf(stderr,
                     "dc-trace: gmin=%.1e alpha=%.2f iter=%d max_rel=%.3e worst=%s "
                     "x[worst]=%.6g clamped=%d limited=[%s]\n",
                     gmin, alpha, iter, max_rel,
                     worst < static_cast<std::size_t>(layout.node_rows)
                         ? result.node_names[worst].c_str()
                         : layout.branch_names[worst - static_cast<std::size_t>(layout.node_rows)]
                               .c_str(),
                     x[worst], clamped ? 1 : 0, limited_names.c_str());
      }

      if (!clamped && !limited && max_rel <= 1.0 && iter > 0) {
        converged = true;
        break;
      }
    }
    return converged;
  };

  // --- Homotopy ladder ----------------------------------------------------
  int gmin_steps = 0;
  int source_steps = 0;
  reset_start();
  bool converged = newton_stage(options_.gmin, 1.0);

  if (!converged) {
    // gmin stepping: walk the junction shunt down geometrically; the stamp
    // pattern (and hence the plan) is identical at every rung.
    reset_start();
    bool ladder_ok = true;
    for (double g = options_.gmin_start; ladder_ok && g > options_.gmin * 0.999; g *= 0.1) {
      ++gmin_steps;
      ladder_ok = newton_stage(g, 1.0);
    }
    if (ladder_ok) {
      ++gmin_steps;
      converged = newton_stage(options_.gmin, 1.0);
    }
  }

  if (!converged && options_.source_steps > 0) {
    // Source stepping: ramp every DC source from zero (where x = 0 solves
    // the system exactly) up to full scale.
    reset_start();
    bool ramp_ok = true;
    for (int k = 1; ramp_ok && k <= options_.source_steps; ++k) {
      ++source_steps;
      ramp_ok = newton_stage(options_.gmin, static_cast<double>(k) /
                                                static_cast<double>(options_.source_steps));
    }
    converged = ramp_ok;
  }

  result.newton_iterations = telemetry.iterations;
  result.gmin_steps = gmin_steps;
  result.source_steps = source_steps;
  fresh_factors_ += telemetry.fresh_factors;
  escalations_ += telemetry.escalations;
  result.fresh_factorizations = telemetry.fresh_factors;
  result.pivot_escalations = telemetry.escalations;
  result.degraded = telemetry.degraded;

  if (!converged) {
    std::ostringstream os;
    os << "dc: no convergence after " << telemetry.iterations << " Newton iterations ("
       << gmin_steps << " gmin steps, " << source_steps << " source steps)";
    throw NoConvergenceError(os.str());
  }

  // Final residual (infinity norm over the KCL rows, in amps) from the last
  // assembled system: F = A*x - b.
  {
    std::vector<double> f(dim, 0.0);
    for (const PatternStamp& s : stamps) {
      f[static_cast<std::size_t>(s.row)] +=
          s.conductance * x[static_cast<std::size_t>(s.col)];
    }
    double max_res = 0.0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(layout.node_rows); ++i) {
      max_res = std::max(max_res, std::fabs(f[i] - rhs[i]));
    }
    result.max_residual = max_res;
  }

  result.node_voltages.assign(x.begin(), x.begin() + layout.node_rows);
  result.branch_currents.assign(x.begin() + layout.node_rows, x.end());

  // Device operating-point table (terminal frame: voltages/currents carry
  // the device's sign; small-signal magnitudes are positive).
  for (std::size_t i = 0; i < layout.devices.size(); ++i) {
    const Device& d = *layout.devices[i];
    const double pol = static_cast<double>(d.polarity);
    OpDeviceInfo info;
    info.name = d.name;
    info.kind = netlist::device_kind_name(d.kind);
    switch (d.kind) {
      case DeviceKind::kDiode: {
        const devices::DiodeEval e = devices::eval_diode(d.model, state[i].v1);
        const devices::DiodeSmallSignal ss = devices::diode_small_signal(d.model, state[i].v1);
        info.values = {{"vd", pol * state[i].v1},
                       {"id", pol * e.id},
                       {"gd", ss.gd},
                       {"c", ss.c}};
        break;
      }
      case DeviceKind::kBjt: {
        const devices::BjtEval e = devices::eval_bjt(d.model, state[i].v1, state[i].v2);
        const netlist::BjtParams p = devices::bjt_small_signal(d.model, e.ic);
        info.values = {{"vbe", pol * state[i].v1}, {"vbc", pol * state[i].v2},
                       {"ic", pol * e.ic},         {"ib", pol * e.ib},
                       {"gm", p.gm},               {"rpi", p.gm > 0.0 ? p.beta / p.gm : 0.0},
                       {"ro", p.ro}};
        break;
      }
      case DeviceKind::kMos: {
        const devices::MosEval e = devices::eval_mos(d.model, state[i].v1, state[i].v2);
        info.values = {{"vgs", pol * state[i].v1},
                       {"vds", pol * state[i].v2},
                       {"id", pol * e.id},
                       {"gm", e.did_dvgs},
                       {"gds", e.did_dvds}};
        break;
      }
    }
    result.devices.push_back(std::move(info));
  }

  result.seconds = timer.seconds();
  return result;
}

double OpDeviceInfo::value(std::string_view key) const {
  for (const auto& [k, v] : values) {
    if (k == key) return v;
  }
  return 0.0;
}

double OpResult::voltage_of(std::string_view node) const {
  if (node == "0" || node == "gnd" || node == "GND" || node == "Gnd") return 0.0;
  for (std::size_t i = 0; i < node_names.size(); ++i) {
    if (node_names[i] == node) return node_voltages[i];
  }
  throw std::invalid_argument("OpResult: unknown node '" + std::string(node) + "'");
}

OpResult solve_op(const Circuit& circuit, const OpOptions& options) {
  OpSolver solver(options);
  return solver.solve(circuit);
}

}  // namespace symref::dc
