#include "dc/stamps.h"

#include <map>
#include <stdexcept>

#include "devices/models.h"

namespace symref::dc {

using netlist::Circuit;
using netlist::Device;
using netlist::DeviceKind;
using netlist::Element;
using netlist::ElementKind;
using sparse::PatternStamp;

bool factor_with_ladder(sparse::SparseLu& lu, const sparse::CompressedMatrix& matrix,
                        bool* degraded) {
  *degraded = false;
  sparse::SparseLuOptions loose;
  loose.pivot_threshold = 1e-6;
  if (lu.factor(matrix, loose)) return true;
  sparse::SparseLuOptions relaxed;
  relaxed.pivot_threshold = 0.0;
  relaxed.singularity_tolerance = 0.0;
  if (lu.factor(matrix, relaxed)) {
    *degraded = true;
    return true;
  }
  return false;
}

void stamp_conductance(std::vector<PatternStamp>& stamps, int ra, int rb, double g) {
  if (ra >= 0) stamps.push_back({ra, ra, g, 0.0});
  if (rb >= 0) stamps.push_back({rb, rb, g, 0.0});
  if (ra >= 0 && rb >= 0) {
    stamps.push_back({ra, rb, -g, 0.0});
    stamps.push_back({rb, ra, -g, 0.0});
  }
}

void stamp_entry(std::vector<PatternStamp>& stamps, int row, int col, double g) {
  if (row >= 0 && col >= 0) stamps.push_back({row, col, g, 0.0});
}

void stamp_vccs(std::vector<PatternStamp>& stamps, int rp, int rn, int rcp, int rcn, double g) {
  stamp_entry(stamps, rp, rcp, g);
  stamp_entry(stamps, rp, rcn, -g);
  stamp_entry(stamps, rn, rcp, -g);
  stamp_entry(stamps, rn, rcn, g);
}

std::unique_ptr<Layout> build_layout(const Circuit& circuit) {
  auto layout = std::make_unique<Layout>();
  layout->node_rows = circuit.unknown_count();

  // Pass 1: assign branch rows.
  std::map<std::string, int> branch_row;
  int next_row = layout->node_rows;
  for (const Element& e : circuit.elements()) {
    if (e.needs_branch_current()) {
      branch_row[e.name] = next_row++;
      layout->branch_names.push_back(e.name);
    }
  }
  layout->dim = next_row;

  auto row = [&](int node) { return node - 1; };  // ground (0) -> -1
  auto ctrl_row = [&](const Element& e) {
    const auto it = branch_row.find(e.ctrl_branch);
    if (it == branch_row.end()) {
      throw std::invalid_argument("dc: element '" + e.name + "' senses branch '" +
                                  e.ctrl_branch +
                                  "' which is not a branch-current element");
    }
    return it->second;
  };

  // Pass 2: constant linear stamps + alpha-scaled source terms.
  std::vector<PatternStamp>& stamps = layout->base_stamps;
  for (std::size_t index = 0; index < circuit.elements().size(); ++index) {
    const Element& e = circuit.elements()[index];
    const int rp = row(e.node_pos);
    const int rn = row(e.node_neg);
    switch (e.kind) {
      case ElementKind::Resistor:
        stamp_conductance(stamps, rp, rn, 1.0 / e.value);
        break;
      case ElementKind::Conductance:
        stamp_conductance(stamps, rp, rn, e.value);
        break;
      case ElementKind::Capacitor:
        // Open at DC; the transient integrator appends its companion stamps.
        layout->capacitors.push_back({static_cast<int>(index), rp, rn, -1, e.value});
        break;
      case ElementKind::Vccs:
        stamp_vccs(stamps, rp, rn, row(e.ctrl_pos), row(e.ctrl_neg), e.value);
        break;
      case ElementKind::Cccs: {
        const int rb = ctrl_row(e);
        stamp_entry(stamps, rp, rb, e.value);
        stamp_entry(stamps, rn, rb, -e.value);
        break;
      }
      case ElementKind::VoltageSource:
      case ElementKind::Inductor:
      case ElementKind::Vcvs:
      case ElementKind::Ccvs: {
        const int rb = branch_row.at(e.name);
        stamp_entry(stamps, rp, rb, 1.0);
        stamp_entry(stamps, rn, rb, -1.0);
        stamp_entry(stamps, rb, rp, 1.0);
        stamp_entry(stamps, rb, rn, -1.0);
        if (e.kind == ElementKind::Vcvs) {
          stamp_entry(stamps, rb, row(e.ctrl_pos), -e.value);
          stamp_entry(stamps, rb, row(e.ctrl_neg), e.value);
        } else if (e.kind == ElementKind::Ccvs) {
          stamps.push_back({branch_row.at(e.name), ctrl_row(e), -e.value, 0.0});
        } else if (e.kind == ElementKind::VoltageSource) {
          layout->sources.push_back({rb, e.dc_value, true, static_cast<int>(index), 1.0});
        } else {  // Inductor: short at DC, companion resistance in transient.
          layout->inductors.push_back({static_cast<int>(index), rp, rn, rb, e.value});
        }
        break;
      }
      case ElementKind::CurrentSource:
        // Positive current flows from node_pos through the source to
        // node_neg: extracted at pos, injected at neg.
        if (rp >= 0) {
          layout->sources.push_back({rp, -e.dc_value, false, static_cast<int>(index), -1.0});
        }
        if (rn >= 0) {
          layout->sources.push_back({rn, e.dc_value, false, static_cast<int>(index), 1.0});
        }
        break;
      case ElementKind::IdealOpAmp: {
        const int rb = branch_row.at(e.name);
        stamp_entry(stamps, rp, rb, 1.0);
        stamp_entry(stamps, rn, rb, -1.0);
        stamp_entry(stamps, rb, row(e.ctrl_pos), 1.0);
        stamp_entry(stamps, rb, row(e.ctrl_neg), -1.0);
        break;
      }
    }
  }

  for (const Device& d : circuit.devices()) layout->devices.push_back(&d);
  return layout;
}

void stamp_device(std::vector<PatternStamp>& stamps, const Device& d, const DeviceState& state,
                  double gmin, const Layout& layout,
                  std::vector<double>* rhs) {
  const double pol = static_cast<double>(d.polarity);
  switch (d.kind) {
    case DeviceKind::kDiode: {
      const int ra = layout.row_of_node(d.nodes[0]);
      const int rc = layout.row_of_node(d.nodes[1]);
      const devices::DiodeEval e = devices::eval_diode(d.model, state.v1);
      stamp_conductance(stamps, ra, rc, e.gd + gmin);
      if (ra >= 0) (*rhs)[static_cast<std::size_t>(ra)] -= pol * e.ieq;
      if (rc >= 0) (*rhs)[static_cast<std::size_t>(rc)] += pol * e.ieq;
      break;
    }
    case DeviceKind::kBjt: {
      const int rc = layout.row_of_node(d.nodes[0]);
      const int rb = layout.row_of_node(d.nodes[1]);
      const int re = layout.row_of_node(d.nodes[2]);
      const devices::BjtEval e = devices::eval_bjt(d.model, state.v1, state.v2);
      // Terminal-frame Jacobian (polarity cancels in every derivative):
      //   d ic/dVb = dic_dvbe + dic_dvbc, d ic/dVe = -dic_dvbe,
      //   d ic/dVc = -dic_dvbc; the base row likewise, and the emitter row
      //   is the negated column-wise sum of the two.
      // Collector row.
      stamp_entry(stamps, rc, rb, e.dic_dvbe + e.dic_dvbc);
      stamp_entry(stamps, rc, re, -e.dic_dvbe);
      stamp_entry(stamps, rc, rc, -e.dic_dvbc);
      // Base row.
      stamp_entry(stamps, rb, rb, e.dib_dvbe + e.dib_dvbc);
      stamp_entry(stamps, rb, re, -e.dib_dvbe);
      stamp_entry(stamps, rb, rc, -e.dib_dvbc);
      // Emitter row: ie = -(ic + ib).
      stamp_entry(stamps, re, rb, -(e.dic_dvbe + e.dic_dvbc + e.dib_dvbe + e.dib_dvbc));
      stamp_entry(stamps, re, re, e.dic_dvbe + e.dib_dvbe);
      stamp_entry(stamps, re, rc, e.dic_dvbc + e.dib_dvbc);
      // Junction gmin shunts.
      stamp_conductance(stamps, rb, re, gmin);
      stamp_conductance(stamps, rb, rc, gmin);
      if (rc >= 0) (*rhs)[static_cast<std::size_t>(rc)] -= pol * e.ic_eq;
      if (rb >= 0) (*rhs)[static_cast<std::size_t>(rb)] -= pol * e.ib_eq;
      if (re >= 0) (*rhs)[static_cast<std::size_t>(re)] += pol * (e.ic_eq + e.ib_eq);
      break;
    }
    case DeviceKind::kMos: {
      const int rd = layout.row_of_node(d.nodes[0]);
      const int rg = layout.row_of_node(d.nodes[1]);
      const int rs = layout.row_of_node(d.nodes[2]);
      const devices::MosEval e = devices::eval_mos(d.model, state.v1, state.v2);
      // Drain row: id depends on vgs = Vg - Vs and vds = Vd - Vs.
      stamp_entry(stamps, rd, rg, e.did_dvgs);
      stamp_entry(stamps, rd, rd, e.did_dvds);
      stamp_entry(stamps, rd, rs, -(e.did_dvgs + e.did_dvds));
      // Source row: is = -id.
      stamp_entry(stamps, rs, rg, -e.did_dvgs);
      stamp_entry(stamps, rs, rd, -e.did_dvds);
      stamp_entry(stamps, rs, rs, e.did_dvgs + e.did_dvds);
      // Channel gmin (keeps a cut-off device's drain/source rows alive).
      stamp_conductance(stamps, rd, rs, gmin);
      if (rd >= 0) (*rhs)[static_cast<std::size_t>(rd)] -= pol * e.id_eq;
      if (rs >= 0) (*rhs)[static_cast<std::size_t>(rs)] += pol * e.id_eq;
      break;
    }
  }
}

DeviceState proposed_state(const Device& d, const std::vector<double>& x,
                           const Layout& layout) {
  auto v = [&](int node) {
    const int r = layout.row_of_node(node);
    return r < 0 ? 0.0 : x[static_cast<std::size_t>(r)];
  };
  const double pol = static_cast<double>(d.polarity);
  DeviceState s;
  switch (d.kind) {
    case DeviceKind::kDiode:
      s.v1 = pol * (v(d.nodes[0]) - v(d.nodes[1]));
      break;
    case DeviceKind::kBjt:
      s.v1 = pol * (v(d.nodes[1]) - v(d.nodes[2]));  // vbe
      s.v2 = pol * (v(d.nodes[1]) - v(d.nodes[0]));  // vbc
      break;
    case DeviceKind::kMos:
      s.v1 = pol * (v(d.nodes[1]) - v(d.nodes[2]));  // vgs
      s.v2 = pol * (v(d.nodes[0]) - v(d.nodes[2]));  // vds
      break;
  }
  return s;
}

DeviceState initial_state(const Device& d) {
  DeviceState s;
  const double n_vt = d.model.n * devices::kThermalVoltage;
  switch (d.kind) {
    case DeviceKind::kDiode:
      s.v1 = devices::junction_vcrit(d.model.is, n_vt);
      break;
    case DeviceKind::kBjt:
      s.v1 = devices::junction_vcrit(d.model.is, n_vt);
      s.v2 = 0.0;
      break;
    case DeviceKind::kMos:
      s.v1 = d.model.vto;  // edge of conduction
      s.v2 = 0.0;
      break;
  }
  return s;
}

DeviceState limit_state(const Device& d, const DeviceState& proposed, const DeviceState& old,
                        bool* limited) {
  DeviceState next = proposed;
  const double n_vt = d.model.n * devices::kThermalVoltage;
  const double vcrit = devices::junction_vcrit(d.model.is, n_vt);
  switch (d.kind) {
    case DeviceKind::kDiode:
      next.v1 = devices::pnjlim(proposed.v1, old.v1, n_vt, vcrit, limited);
      break;
    case DeviceKind::kBjt:
      next.v1 = devices::pnjlim(proposed.v1, old.v1, n_vt, vcrit, limited);
      next.v2 = devices::pnjlim(proposed.v2, old.v2, n_vt, vcrit, limited);
      break;
    case DeviceKind::kMos:
      break;
  }
  return next;
}

}  // namespace symref::dc
