// Small-signal linearization at a solved DC operating point.
//
// linearize_at() rewrites a device-bearing circuit into the purely linear
// Circuit the rest of the engine (canonicalize, CofactorEvaluator,
// AcSimulator, run_param_sweep, simplify) already understands:
//
//   * each DC voltage source becomes an AC short — its two terminals merge
//     into one node (ground wins), exactly the collapsed-rail form of the
//     hand-built reference circuits; a voltage source whose branch current
//     is sensed by a CCCS/CCVS survives as a 0-magnitude source (it IS the
//     short, and the sensing keeps working);
//   * each DC current source becomes an AC open and is dropped;
//   * every linear element is copied with its terminals remapped;
//   * every device expands into its small-signal equivalent at the bias
//     point through the SAME netlist::expand_bjt / expand_mos helpers (and
//     a gd/cd pair for diodes) used by the hand-built references, so a
//     device-level netlist and a reference built from the same bias
//     currents produce element-by-element identical circuits.
//
// The solver-internal gmin shunts are NOT emitted: they are a convergence
// aid, not part of the model.
#pragma once

#include "dc/newton.h"
#include "netlist/circuit.h"

namespace symref::dc {

/// Linearize `circuit` at the operating point `op` (as returned by
/// OpSolver::solve on the same circuit). Throws std::invalid_argument when
/// `op` does not match the circuit (device table mismatch).
[[nodiscard]] netlist::Circuit linearize_at(const netlist::Circuit& circuit, const OpResult& op);

/// Convenience: solve the operating point, then linearize at it.
[[nodiscard]] netlist::Circuit linearize(const netlist::Circuit& circuit,
                                         const OpOptions& options = {});

}  // namespace symref::dc
