// Damped Newton-Raphson DC operating-point (".op") solver.
//
// The solver assembles the full MNA system (node voltages plus auxiliary
// branch currents for V/E/H/L/opamp elements) with every nonlinear device
// replaced by its companion linearization (devices/models.h). The key
// property the engine is built around carries over from the AC path: the
// Jacobian's sparsity pattern is FIXED across iterations — device stamps are
// emitted at every position they can ever occupy (including a permanent
// gmin shunt across each junction), so iterating is
//
//   PatternedMatrix::rebind  (new values, same structure)
//   SparseLu::refactor       (numeric replay of the one recorded plan)
//
// and a fresh Markowitz factorization happens exactly once per pattern — or
// again only on the degradation ladder when a replay is refused (mirroring
// CofactorEvaluator's escalation policy). An OpSolver instance keeps its
// plan across solve() calls, so a parameter sweep re-solving the bias point
// per sample replays one plan for the whole sweep.
//
// Convergence homotopy, in order: plain damped Newton with junction
// limiting; gmin stepping (the junction shunt walks 1e-2 -> gmin, same
// pattern throughout); source stepping (DC sources ramped 0 -> 1). Failure
// of all three throws the typed NoConvergenceError (api maps it to
// kNoConvergence).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "netlist/circuit.h"
#include "sparse/lu.h"
#include "sparse/matrix.h"
#include "support/cancellation.h"

namespace symref::dc {

/// The circuit refused to converge through the whole homotopy ladder.
class NoConvergenceError : public std::runtime_error {
 public:
  explicit NoConvergenceError(const std::string& message) : std::runtime_error(message) {}
};

struct OpOptions {
  int max_iterations = 200;  // Newton cap per homotopy stage
  // Convergence tolerances, SPICE-flavored: the accepted step must satisfy
  // |dx| <= abstol + reltol*|x| per unknown. Tighter settings than these
  // run into linear-solve roundoff on realistic (30 V rail, mA current)
  // circuits — near-ground nodes jitter by nanovolts, so a 1e-12 vntol can
  // never be met even though the iterate has fully converged. The achieved
  // accuracy is far better than the tolerance (Newton is quadratic near the
  // solution; the last accepted step overshoots the true error by orders of
  // magnitude).
  double reltol = 1e-6;    // per-unknown relative tolerance
  double abstol_v = 1e-6;  // node-voltage absolute tolerance [V] (SPICE vntol)
  double abstol_i = 1e-12;  // branch-current absolute tolerance [A] (SPICE abstol)
  double gmin = 1e-12;         // permanent junction shunt [S]
  double gmin_start = 1e-2;    // gmin-stepping ladder entry [S]
  int source_steps = 10;       // source-stepping ramp stages
  double max_voltage_step = 10.0;  // global Newton damping clamp [V]
  support::CancellationToken cancel;
};

/// Named operating-point quantities for one device (junction voltages,
/// terminal currents, small-signal parameters) in a fixed per-kind order.
struct OpDeviceInfo {
  std::string name;
  std::string kind;  // "diode" | "bjt" | "mos"
  std::vector<std::pair<std::string, double>> values;

  [[nodiscard]] double value(std::string_view key) const;  // 0.0 when absent
};

struct OpResult {
  /// Non-ground nodes in circuit index order (index i = circuit node i+1).
  std::vector<std::string> node_names;
  std::vector<double> node_voltages;
  /// Elements with auxiliary branch unknowns, in element order.
  std::vector<std::string> branch_names;
  std::vector<double> branch_currents;
  std::vector<OpDeviceInfo> devices;

  // Newton telemetry.
  int newton_iterations = 0;  // total across all homotopy stages
  int gmin_steps = 0;         // gmin-stepping stages actually run
  int source_steps = 0;       // source-stepping stages actually run
  std::uint64_t fresh_factorizations = 0;
  std::uint64_t pivot_escalations = 0;
  bool degraded = false;      // any escalated-pivot factorization involved
  double max_residual = 0.0;  // final KCL residual, infinity norm [A]
  double seconds = 0.0;

  /// Solved voltage of a node by name (throws std::invalid_argument when
  /// the node is unknown; ground returns 0).
  [[nodiscard]] double voltage_of(std::string_view node) const;
};

/// Plan-holding Newton solver. The first solve() factors the Jacobian
/// pattern once; every later iteration — and every later solve() whose
/// merged stamp structure matches (a parameter-sweep sample) — replays the
/// recorded plan through rebind + refactor.
class OpSolver {
 public:
  explicit OpSolver(OpOptions options = {});

  /// Solve the DC operating point. Throws NoConvergenceError when the
  /// homotopy ladder is exhausted, mna::SingularSystemError when the DC
  /// system is structurally singular, support::CancelledError on
  /// cancellation.
  OpResult solve(const netlist::Circuit& circuit);

  /// Fresh Markowitz factorizations performed over this solver's lifetime
  /// (the probe the one-shared-plan tests assert on).
  [[nodiscard]] std::uint64_t fresh_factor_count() const noexcept { return fresh_factors_; }
  [[nodiscard]] std::uint64_t pivot_escalation_count() const noexcept { return escalations_; }

 private:
  OpOptions options_;
  sparse::PatternedMatrix assembly_;
  sparse::SparseLu lu_;
  bool has_pattern_ = false;
  std::uint64_t fresh_factors_ = 0;
  std::uint64_t escalations_ = 0;
};

/// One-shot convenience wrapper around OpSolver.
OpResult solve_op(const netlist::Circuit& circuit, const OpOptions& options = {});

}  // namespace symref::dc
