// Discrete Fourier transforms used by the polynomial interpolation engine.
//
// The paper recovers polynomial coefficients from samples at K equally
// spaced points on the unit circle via the inverse DFT (its eq. (5)):
//
//   p_i = (1/K) * sum_k P(s_k) * exp(-2*pi*j*i*k/K),  s_k = exp(+2*pi*j*k/K)
//
// Two implementations are provided: a radix-2 iterative FFT for power-of-two
// sizes and a direct O(K^2) transform with exact-angle twiddles otherwise
// (K is at most a few hundred here, so the direct path is never a
// bottleneck). A ScaledComplex front-end removes the overflow limit of the
// textbook method: samples are shifted to a common binary exponent first.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "numeric/scaled.h"

namespace symref::numeric {

/// K equally spaced points on the unit circle: s_k = exp(+2*pi*j*k/K).
std::vector<std::complex<double>> unit_circle_points(std::size_t count);

/// Forward transform: X_k = sum_j x_j exp(-2*pi*j*i*j*k/K). No 1/K factor.
std::vector<std::complex<double>> dft(const std::vector<std::complex<double>>& input);

/// Inverse transform: x_j = (1/K) sum_k X_k exp(+2*pi*j*i*j*k/K).
std::vector<std::complex<double>> idft(const std::vector<std::complex<double>>& input);

/// Paper eq. (5): polynomial coefficients from unit-circle samples
/// P(s_k), s_k = exp(+2*pi*j*k/K). coefficient[i] corresponds to s^i.
std::vector<std::complex<double>> coefficients_from_unit_circle_samples(
    const std::vector<std::complex<double>>& samples);

/// Same recovery for extended-range samples. All samples are aligned to one
/// shared binary exponent, transformed in double, and the exponent is
/// re-attached, so sample magnitudes like 1e+5000 are handled exactly as
/// well as magnitudes near 1.
std::vector<ScaledComplex> coefficients_from_unit_circle_samples(
    const std::vector<ScaledComplex>& samples);

}  // namespace symref::numeric
