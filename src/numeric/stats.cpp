#include "numeric/stats.h"

#include <cmath>

namespace symref::numeric {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) noexcept {
  double log_sum = 0.0;
  std::size_t count = 0;
  for (const double v : values) {
    if (v == 0.0) continue;
    log_sum += std::log(std::fabs(v));
    ++count;
  }
  if (count == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(count));
}

double max_abs(std::span<const double> values) noexcept {
  double best = 0.0;
  for (const double v : values) {
    const double a = std::fabs(v);
    if (a > best) best = a;
  }
  return best;
}

double min_abs_nonzero(std::span<const double> values) noexcept {
  double best = 0.0;
  for (const double v : values) {
    const double a = std::fabs(v);
    if (a == 0.0) continue;
    if (best == 0.0 || a < best) best = a;
  }
  return best;
}

}  // namespace symref::numeric
