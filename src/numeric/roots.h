// Polynomial root extraction (Aberth-Ehrlich), an extension on top of the
// paper: once the adaptive interpolation has produced exact numerator /
// denominator coefficients, their roots are the circuit's zeros and poles.
//
// Network-function coefficients span hundreds of decades, so the iteration
// evaluates p and p' in extended-range (ScaledComplex) arithmetic — the
// Newton ratio p/p' is root-sized and safely returns to double — and seeds
// the roots from the coefficient profile: |p_k / p_{k+1}| estimates the
// k-th root magnitude (Newton-polygon argument), which for circuit
// polynomials with well-spread poles is accurate to a factor of a few.
#pragma once

#include <complex>
#include <vector>

#include "numeric/polynomial.h"
#include "numeric/scaled.h"

namespace symref::numeric {

struct RootFinderOptions {
  int max_iterations = 500;
  /// Convergence threshold on the worst Aberth correction relative to its
  /// root. High-degree clusters (30+ poles) settle to ~1e-11; individual
  /// well-separated roots converge much further.
  double tolerance = 1e-11;
};

struct RootResult {
  std::vector<std::complex<double>> roots;
  bool converged = false;
  int iterations = 0;
};

/// Roots of a polynomial with extended-range coefficients. Roots at the
/// origin (leading zero coefficients) are returned exactly as 0.
RootResult find_roots(const Polynomial<ScaledDouble>& poly,
                      const RootFinderOptions& options = {});

/// Convenience overload for plain double coefficients.
RootResult find_roots(const Polynomial<double>& poly, const RootFinderOptions& options = {});

}  // namespace symref::numeric
