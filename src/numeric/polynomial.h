// Dense univariate polynomials with ascending coefficient storage.
//
// The library uses three instantiations:
//   Polynomial<double>          - synthetic tests, symbolic oracle results
//   Polynomial<complex<double>> - interpolation-point workspaces
//   Polynomial<ScaledDouble>    - network-function coefficients, whose
//                                 dynamic range exceeds IEEE double
#pragma once

#include <algorithm>
#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

#include "numeric/scaled.h"

namespace symref::numeric {

namespace detail {
inline bool coeff_is_zero(double c) noexcept { return c == 0.0; }
inline bool coeff_is_zero(const std::complex<double>& c) noexcept {
  return c == std::complex<double>();
}
inline bool coeff_is_zero(const ScaledDouble& c) noexcept { return c.is_zero(); }
inline bool coeff_is_zero(const ScaledComplex& c) noexcept { return c.is_zero(); }
}  // namespace detail

template <typename T>
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<T> coefficients) : coeffs_(std::move(coefficients)) { trim(); }
  Polynomial(std::initializer_list<T> coefficients) : coeffs_(coefficients) { trim(); }

  /// Zero polynomial reported with degree() == -1.
  [[nodiscard]] int degree() const noexcept { return static_cast<int>(coeffs_.size()) - 1; }
  [[nodiscard]] bool is_zero() const noexcept { return coeffs_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return coeffs_.size(); }

  [[nodiscard]] const std::vector<T>& coefficients() const noexcept { return coeffs_; }

  /// Coefficient of s^i; zero beyond the stored degree.
  [[nodiscard]] T coeff(std::size_t i) const {
    return i < coeffs_.size() ? coeffs_[i] : T{};
  }

  /// Set coefficient of s^i, growing the polynomial as needed.
  void set_coeff(std::size_t i, T value) {
    if (i >= coeffs_.size()) coeffs_.resize(i + 1, T{});
    coeffs_[i] = std::move(value);
    trim();
  }

  /// Horner evaluation; the accumulator type follows from T * Arg.
  template <typename Arg>
  [[nodiscard]] auto eval(const Arg& s) const {
    using Acc = decltype(std::declval<T>() * std::declval<Arg>() + std::declval<T>());
    Acc acc{};
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
      acc = acc * s + Acc(coeffs_[i]);
    }
    return acc;
  }

  Polynomial& operator+=(const Polynomial& rhs) {
    if (rhs.coeffs_.size() > coeffs_.size()) coeffs_.resize(rhs.coeffs_.size(), T{});
    for (std::size_t i = 0; i < rhs.coeffs_.size(); ++i) coeffs_[i] += rhs.coeffs_[i];
    trim();
    return *this;
  }
  Polynomial& operator-=(const Polynomial& rhs) {
    if (rhs.coeffs_.size() > coeffs_.size()) coeffs_.resize(rhs.coeffs_.size(), T{});
    for (std::size_t i = 0; i < rhs.coeffs_.size(); ++i) coeffs_[i] -= rhs.coeffs_[i];
    trim();
    return *this;
  }

  friend Polynomial operator+(Polynomial a, const Polynomial& b) { return a += b; }
  friend Polynomial operator-(Polynomial a, const Polynomial& b) { return a -= b; }

  friend Polynomial operator*(const Polynomial& a, const Polynomial& b) {
    if (a.is_zero() || b.is_zero()) return Polynomial{};
    std::vector<T> out(a.coeffs_.size() + b.coeffs_.size() - 1, T{});
    for (std::size_t i = 0; i < a.coeffs_.size(); ++i) {
      for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
        out[i + j] += a.coeffs_[i] * b.coeffs_[j];
      }
    }
    return Polynomial(std::move(out));
  }

  Polynomial& operator*=(const T& scalar) {
    for (auto& c : coeffs_) c *= scalar;
    trim();
    return *this;
  }
  friend Polynomial operator*(Polynomial p, const T& scalar) { return p *= scalar; }
  friend Polynomial operator*(const T& scalar, Polynomial p) { return p *= scalar; }

  /// p(alpha * s): coefficient i is multiplied by alpha^i.
  [[nodiscard]] Polynomial scale_variable(const T& alpha) const {
    Polynomial out = *this;
    T power = alpha;
    for (std::size_t i = 1; i < out.coeffs_.size(); ++i) {
      out.coeffs_[i] *= power;
      power = power * alpha;
    }
    out.trim();
    return out;
  }

  /// s^k * p(s).
  [[nodiscard]] Polynomial shift_up(std::size_t k) const {
    if (is_zero() || k == 0) return *this;
    std::vector<T> out(coeffs_.size() + k, T{});
    std::copy(coeffs_.begin(), coeffs_.end(), out.begin() + static_cast<std::ptrdiff_t>(k));
    return Polynomial(std::move(out));
  }

  /// dp/ds.
  [[nodiscard]] Polynomial derivative() const {
    if (coeffs_.size() <= 1) return Polynomial{};
    std::vector<T> out(coeffs_.size() - 1, T{});
    for (std::size_t i = 1; i < coeffs_.size(); ++i) {
      out[i - 1] = coeffs_[i] * T(static_cast<double>(i));
    }
    return Polynomial(std::move(out));
  }

  friend bool operator==(const Polynomial& a, const Polynomial& b) {
    return a.coeffs_ == b.coeffs_;
  }

 private:
  void trim() {
    while (!coeffs_.empty() && detail::coeff_is_zero(coeffs_.back())) coeffs_.pop_back();
  }

  std::vector<T> coeffs_;
};

/// Convert a double polynomial to extended-range coefficients.
inline Polynomial<ScaledDouble> to_scaled(const Polynomial<double>& p) {
  std::vector<ScaledDouble> coeffs;
  coeffs.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) coeffs.emplace_back(p.coeff(i));
  return Polynomial<ScaledDouble>(std::move(coeffs));
}

/// Convert scaled coefficients to double, saturating out-of-range values.
inline Polynomial<double> to_double(const Polynomial<ScaledDouble>& p) {
  std::vector<double> coeffs;
  coeffs.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) coeffs.push_back(p.coeff(i).to_double());
  return Polynomial<double>(std::move(coeffs));
}

/// Evaluate a ScaledDouble-coefficient polynomial at a complex point without
/// intermediate overflow (used for Bode plots from interpolated coefficients:
/// coefficients can be ~1e-522 while s^i is ~1e+400).
inline ScaledComplex eval_scaled(const Polynomial<ScaledDouble>& p,
                                 const std::complex<double>& s) {
  ScaledComplex acc;
  const ScaledComplex zs(s);
  for (std::size_t i = p.size(); i-- > 0;) {
    acc = acc * zs + ScaledComplex(p.coeff(i));
  }
  return acc;
}

}  // namespace symref::numeric
