// Extended-exponent floating point: double mantissa + 64-bit binary exponent.
//
// Why this exists: the paper's denormalized network-function coefficients
// span from ~1e-25 down to ~1e-522 (Table 3), and determinants of scaled
// 50-node admittance matrices overflow/underflow IEEE double long before the
// algorithm is done. ScaledDouble/ScaledComplex give ~16 significant digits
// with an exponent range of +/-2^63, which is enough for any circuit this
// library can factor.
//
// Representation invariant: value = mantissa * 2^exponent with either
// mantissa == 0 (and exponent == 0), or |mantissa| in [1, 2)
// (ScaledComplex: max(|re|,|im|) in [1, 2)).
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace symref::numeric {

class ScaledDouble {
 public:
  constexpr ScaledDouble() noexcept = default;

  /// Construct from a plain double (must be finite).
  ScaledDouble(double value) noexcept {  // NOLINT(google-explicit-constructor)
    mantissa_ = value;
    normalize();
  }

  /// Construct from mantissa * 2^exp2 (mantissa must be finite).
  static ScaledDouble from_mantissa_exp(double mantissa, std::int64_t exp2) noexcept {
    ScaledDouble s;
    s.mantissa_ = mantissa;
    s.exponent_ = exp2;
    s.normalize();
    return s;
  }

  /// 10^k with k any integer, computed by exact repeated squaring.
  static ScaledDouble exp10i(std::int64_t k);

  /// base^n for integer n (repeated squaring in scaled arithmetic); base may
  /// be huge/tiny without overflow, e.g. (1e9)^48 during denormalization.
  static ScaledDouble pow(const ScaledDouble& base, std::int64_t n);

  [[nodiscard]] double mantissa() const noexcept { return mantissa_; }
  [[nodiscard]] std::int64_t exponent2() const noexcept { return exponent_; }
  [[nodiscard]] bool is_zero() const noexcept { return mantissa_ == 0.0; }
  [[nodiscard]] int sign() const noexcept {
    return mantissa_ > 0.0 ? 1 : (mantissa_ < 0.0 ? -1 : 0);
  }

  /// Nearest double; saturates to +/-HUGE_VAL on overflow, +/-0 on underflow.
  [[nodiscard]] double to_double() const noexcept;

  /// log10(|value|); -inf for zero.
  [[nodiscard]] double log10_abs() const noexcept;

  /// Decimal exponent d such that |value| = m * 10^d with m in [1, 10).
  [[nodiscard]] std::int64_t decimal_exponent() const noexcept;

  [[nodiscard]] ScaledDouble abs() const noexcept {
    ScaledDouble r = *this;
    r.mantissa_ = std::fabs(r.mantissa_);
    return r;
  }

  ScaledDouble operator-() const noexcept {
    ScaledDouble r = *this;
    r.mantissa_ = -r.mantissa_;
    return r;
  }

  ScaledDouble& operator*=(const ScaledDouble& rhs) noexcept;
  ScaledDouble& operator/=(const ScaledDouble& rhs) noexcept;
  ScaledDouble& operator+=(const ScaledDouble& rhs) noexcept;
  ScaledDouble& operator-=(const ScaledDouble& rhs) noexcept { return *this += -rhs; }

  friend ScaledDouble operator*(ScaledDouble a, const ScaledDouble& b) noexcept { return a *= b; }
  friend ScaledDouble operator/(ScaledDouble a, const ScaledDouble& b) noexcept { return a /= b; }
  friend ScaledDouble operator+(ScaledDouble a, const ScaledDouble& b) noexcept { return a += b; }
  friend ScaledDouble operator-(ScaledDouble a, const ScaledDouble& b) noexcept { return a -= b; }

  /// Total order consistent with real-number values.
  friend bool operator<(const ScaledDouble& a, const ScaledDouble& b) noexcept {
    return (a - b).sign() < 0;
  }
  friend bool operator>(const ScaledDouble& a, const ScaledDouble& b) noexcept { return b < a; }
  friend bool operator<=(const ScaledDouble& a, const ScaledDouble& b) noexcept { return !(b < a); }
  friend bool operator>=(const ScaledDouble& a, const ScaledDouble& b) noexcept { return !(a < b); }
  friend bool operator==(const ScaledDouble& a, const ScaledDouble& b) noexcept {
    return a.mantissa_ == b.mantissa_ && a.exponent_ == b.exponent_;
  }
  friend bool operator!=(const ScaledDouble& a, const ScaledDouble& b) noexcept {
    return !(a == b);
  }

  /// Scientific-notation string, e.g. "-1.12150e-522".
  [[nodiscard]] std::string to_string(int significant_digits = 6) const;

 private:
  void normalize() noexcept;

  double mantissa_ = 0.0;
  std::int64_t exponent_ = 0;
};

std::ostream& operator<<(std::ostream& os, const ScaledDouble& value);

/// |a / b| as a plain double ratio; +inf when b == 0 and a != 0, 1 when both 0.
double ratio_abs(const ScaledDouble& a, const ScaledDouble& b) noexcept;

/// Relative difference |a-b| / max(|a|,|b|); 0 when both are zero.
double relative_difference(const ScaledDouble& a, const ScaledDouble& b) noexcept;

class ScaledComplex {
 public:
  constexpr ScaledComplex() noexcept = default;

  ScaledComplex(std::complex<double> value) noexcept {  // NOLINT(google-explicit-constructor)
    mantissa_ = value;
    normalize();
  }
  ScaledComplex(double value) noexcept  // NOLINT(google-explicit-constructor)
      : ScaledComplex(std::complex<double>(value, 0.0)) {}
  ScaledComplex(const ScaledDouble& value) noexcept {  // NOLINT(google-explicit-constructor)
    mantissa_ = std::complex<double>(value.mantissa(), 0.0);
    exponent_ = value.exponent2();
    normalize();
  }

  static ScaledComplex from_mantissa_exp(std::complex<double> mantissa,
                                         std::int64_t exp2) noexcept {
    ScaledComplex s;
    s.mantissa_ = mantissa;
    s.exponent_ = exp2;
    s.normalize();
    return s;
  }

  [[nodiscard]] std::complex<double> mantissa() const noexcept { return mantissa_; }
  [[nodiscard]] std::int64_t exponent2() const noexcept { return exponent_; }
  [[nodiscard]] bool is_zero() const noexcept { return mantissa_ == std::complex<double>(); }

  [[nodiscard]] ScaledDouble real() const noexcept {
    return ScaledDouble::from_mantissa_exp(mantissa_.real(), exponent_);
  }
  [[nodiscard]] ScaledDouble imag() const noexcept {
    return ScaledDouble::from_mantissa_exp(mantissa_.imag(), exponent_);
  }
  [[nodiscard]] ScaledDouble abs() const noexcept {
    return ScaledDouble::from_mantissa_exp(std::abs(mantissa_), exponent_);
  }
  [[nodiscard]] ScaledComplex conj() const noexcept {
    return from_mantissa_exp(std::conj(mantissa_), exponent_);
  }

  /// Nearest complex<double>; each part saturates like ScaledDouble.
  [[nodiscard]] std::complex<double> to_complex() const noexcept;

  ScaledComplex operator-() const noexcept { return from_mantissa_exp(-mantissa_, exponent_); }

  ScaledComplex& operator*=(const ScaledComplex& rhs) noexcept;
  ScaledComplex& operator/=(const ScaledComplex& rhs) noexcept;
  ScaledComplex& operator+=(const ScaledComplex& rhs) noexcept;
  ScaledComplex& operator-=(const ScaledComplex& rhs) noexcept { return *this += -rhs; }

  friend ScaledComplex operator*(ScaledComplex a, const ScaledComplex& b) noexcept {
    return a *= b;
  }
  friend ScaledComplex operator/(ScaledComplex a, const ScaledComplex& b) noexcept {
    return a /= b;
  }
  friend ScaledComplex operator+(ScaledComplex a, const ScaledComplex& b) noexcept {
    return a += b;
  }
  friend ScaledComplex operator-(ScaledComplex a, const ScaledComplex& b) noexcept {
    return a -= b;
  }
  friend bool operator==(const ScaledComplex& a, const ScaledComplex& b) noexcept {
    return a.mantissa_ == b.mantissa_ && a.exponent_ == b.exponent_;
  }
  friend bool operator!=(const ScaledComplex& a, const ScaledComplex& b) noexcept {
    return !(a == b);
  }

  [[nodiscard]] std::string to_string(int significant_digits = 6) const;

 private:
  void normalize() noexcept;

  std::complex<double> mantissa_{0.0, 0.0};
  std::int64_t exponent_ = 0;
};

std::ostream& operator<<(std::ostream& os, const ScaledComplex& value);

/// sign * product of `count` strided complex factors (values[i * stride]) as
/// a canonical ScaledComplex — the pivot-product determinant of the LU
/// replay paths. Bit-identical to folding each factor through ScaledComplex
/// operator*= (scaling by powers of two is exact, so WHEN the accumulated
/// magnitude is folded into the exponent cannot change the canonical
/// result), but renormalizes only when the running product leaves a wide
/// safe window instead of after every factor: the common step is one plain
/// complex multiply.
ScaledComplex scaled_pivot_product(const std::complex<double>* values, std::size_t count,
                                   std::size_t stride, double sign);

/// Plane-split overload for SoA consumers that keep real and imaginary parts
/// in separate arrays: factor i is (re[i * stride], im[i * stride]). Same
/// arithmetic, same canonical result.
ScaledComplex scaled_pivot_product(const double* re, const double* im, std::size_t count,
                                   std::size_t stride, double sign);

}  // namespace symref::numeric
