// Kahan-Neumaier compensated summation.
//
// The IDFT sums K terms whose partial cancellation determines which
// coefficients survive above the round-off floor; compensated accumulation
// keeps the floor at ~1e-16 * max instead of ~K * 1e-16 * max.
#pragma once

#include <complex>

namespace symref::numeric {

template <typename T>
class KahanSum {
 public:
  void add(const T& value) noexcept {
    const T t = sum_ + value;
    // Neumaier variant: pick the larger operand to compute the lost bits.
    if (magnitude(sum_) >= magnitude(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  [[nodiscard]] T value() const noexcept { return sum_ + compensation_; }

  void reset() noexcept {
    sum_ = T{};
    compensation_ = T{};
  }

 private:
  static double magnitude(double v) noexcept { return v < 0 ? -v : v; }
  static double magnitude(const std::complex<double>& v) noexcept {
    const double re = magnitude(v.real());
    const double im = magnitude(v.imag());
    return re > im ? re : im;
  }

  T sum_{};
  T compensation_{};
};

}  // namespace symref::numeric
