#include "numeric/dft.h"

#include <cassert>
#include <cmath>

#include "numeric/kahan.h"

namespace symref::numeric {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

bool is_power_of_two(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

/// exp(sign * 2*pi*j * num / den) with the angle reduced exactly first, so
/// twiddles stay accurate for any index product.
std::complex<double> twiddle(std::uint64_t num, std::uint64_t den, int sign) {
  const double angle = kTwoPi * static_cast<double>(num % den) / static_cast<double>(den);
  return {std::cos(angle), sign * std::sin(angle)};
}

/// In-place iterative radix-2 Cooley-Tukey; sign = -1 forward, +1 inverse
/// (no normalization).
void fft_radix2(std::vector<std::complex<double>>& data, int sign) {
  const std::size_t n = data.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * kTwoPi / static_cast<double>(len);
    const std::complex<double> wn(std::cos(angle), std::sin(angle));
    for (std::size_t start = 0; start < n; start += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> even = data[start + k];
        const std::complex<double> odd = data[start + k + len / 2] * w;
        data[start + k] = even + odd;
        data[start + k + len / 2] = even - odd;
        w *= wn;
      }
    }
  }
}

std::vector<std::complex<double>> transform(const std::vector<std::complex<double>>& input,
                                            int sign) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  if (is_power_of_two(n)) {
    std::vector<std::complex<double>> data = input;
    fft_radix2(data, sign);
    return data;
  }
  // Direct transform with compensated accumulation: the interpolation's
  // round-off floor is set right here, so every extra digit matters.
  std::vector<std::complex<double>> output(n);
  for (std::size_t k = 0; k < n; ++k) {
    KahanSum<std::complex<double>> sum;
    for (std::size_t j = 0; j < n; ++j) {
      sum.add(input[j] * twiddle(static_cast<std::uint64_t>(j) * k, n, sign));
    }
    output[k] = sum.value();
  }
  return output;
}

}  // namespace

std::vector<std::complex<double>> unit_circle_points(std::size_t count) {
  std::vector<std::complex<double>> points(count);
  for (std::size_t k = 0; k < count; ++k) {
    points[k] = twiddle(k, count, +1);
  }
  return points;
}

std::vector<std::complex<double>> dft(const std::vector<std::complex<double>>& input) {
  return transform(input, -1);
}

std::vector<std::complex<double>> idft(const std::vector<std::complex<double>>& input) {
  std::vector<std::complex<double>> output = transform(input, +1);
  const double scale = output.empty() ? 1.0 : 1.0 / static_cast<double>(output.size());
  for (auto& value : output) value *= scale;
  return output;
}

std::vector<std::complex<double>> coefficients_from_unit_circle_samples(
    const std::vector<std::complex<double>>& samples) {
  // With s_k = exp(+2*pi*j*k/K), P(s_k) = sum_i p_i exp(+2*pi*j*i*k/K) is an
  // unnormalized inverse transform of the coefficients, so recovery is the
  // forward transform divided by K.
  std::vector<std::complex<double>> coeffs = transform(samples, -1);
  const double scale = coeffs.empty() ? 1.0 : 1.0 / static_cast<double>(coeffs.size());
  for (auto& value : coeffs) value *= scale;
  return coeffs;
}

std::vector<ScaledComplex> coefficients_from_unit_circle_samples(
    const std::vector<ScaledComplex>& samples) {
  if (samples.empty()) return {};
  // Align all samples to the largest exponent; anything more than ~1100
  // binary orders below the peak is zero at double precision anyway.
  std::int64_t max_exp = 0;
  bool any_nonzero = false;
  for (const auto& sample : samples) {
    if (sample.is_zero()) continue;
    max_exp = any_nonzero ? std::max(max_exp, sample.exponent2()) : sample.exponent2();
    any_nonzero = true;
  }
  if (!any_nonzero) return std::vector<ScaledComplex>(samples.size());

  std::vector<std::complex<double>> aligned(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].is_zero()) continue;
    const std::int64_t gap = max_exp - samples[i].exponent2();
    aligned[i] = gap > 1100 ? std::complex<double>()
                            : samples[i].mantissa() * std::ldexp(1.0, static_cast<int>(-gap));
  }
  const std::vector<std::complex<double>> coeffs =
      coefficients_from_unit_circle_samples(aligned);
  std::vector<ScaledComplex> output(coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    output[i] = ScaledComplex::from_mantissa_exp(coeffs[i], max_exp);
  }
  return output;
}

}  // namespace symref::numeric
