// Small statistics helpers for the scale-factor heuristics (§3.2: the first
// interpolation uses the inverse of the mean capacitor / conductance values).
#pragma once

#include <span>

namespace symref::numeric {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values) noexcept;

/// Geometric mean of |values|, ignoring zeros; 0 if no nonzero entry.
/// Element values span decades, so this is the robust "typical magnitude".
double geometric_mean(std::span<const double> values) noexcept;

/// Largest absolute value; 0 for an empty span.
double max_abs(std::span<const double> values) noexcept;

/// Smallest nonzero absolute value; 0 if no nonzero entry.
double min_abs_nonzero(std::span<const double> values) noexcept;

}  // namespace symref::numeric
