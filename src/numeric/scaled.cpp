#include "numeric/scaled.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace symref::numeric {

namespace {
constexpr double kLog10Of2 = 0.30102999566398119521373889472449;
// Exponent gap beyond which the smaller addend cannot affect the larger
// (double has 53 mantissa bits; 1075 covers the subnormal tail too).
constexpr std::int64_t kAlignLimit = 1100;
}  // namespace

void ScaledDouble::normalize() noexcept {
  if (mantissa_ == 0.0) {
    // Collapse all zeros (including -0.0 from subtractions) to the canonical
    // representation so operator== behaves as value equality.
    mantissa_ = 0.0;
    exponent_ = 0;
    return;
  }
  assert(std::isfinite(mantissa_));
  int shift = 0;
  const double fraction = std::frexp(mantissa_, &shift);  // |fraction| in [0.5, 1)
  mantissa_ = fraction * 2.0;                             // -> [1, 2)
  exponent_ += shift - 1;
}

double ScaledDouble::to_double() const noexcept {
  if (is_zero()) return 0.0;
  if (exponent_ > 1024) return mantissa_ > 0 ? HUGE_VAL : -HUGE_VAL;
  if (exponent_ < -1075) return mantissa_ > 0 ? 0.0 : -0.0;
  return std::ldexp(mantissa_, static_cast<int>(exponent_));
}

double ScaledDouble::log10_abs() const noexcept {
  if (is_zero()) return -HUGE_VAL;
  return std::log10(std::fabs(mantissa_)) + static_cast<double>(exponent_) * kLog10Of2;
}

std::int64_t ScaledDouble::decimal_exponent() const noexcept {
  return static_cast<std::int64_t>(std::floor(log10_abs()));
}

ScaledDouble& ScaledDouble::operator*=(const ScaledDouble& rhs) noexcept {
  mantissa_ *= rhs.mantissa_;
  exponent_ += rhs.exponent_;
  normalize();
  return *this;
}

ScaledDouble& ScaledDouble::operator/=(const ScaledDouble& rhs) noexcept {
  assert(!rhs.is_zero() && "ScaledDouble division by zero");
  mantissa_ /= rhs.mantissa_;
  exponent_ -= rhs.exponent_;
  normalize();
  return *this;
}

ScaledDouble& ScaledDouble::operator+=(const ScaledDouble& rhs) noexcept {
  if (rhs.is_zero()) return *this;
  if (is_zero()) {
    *this = rhs;
    return *this;
  }
  // Align the smaller operand onto the larger one's exponent.
  if (exponent_ >= rhs.exponent_) {
    const std::int64_t gap = exponent_ - rhs.exponent_;
    if (gap <= kAlignLimit) {
      mantissa_ += std::ldexp(rhs.mantissa_, static_cast<int>(-gap));
    }
  } else {
    const std::int64_t gap = rhs.exponent_ - exponent_;
    if (gap <= kAlignLimit) {
      const double shifted = std::ldexp(mantissa_, static_cast<int>(-gap));
      mantissa_ = rhs.mantissa_ + shifted;
    } else {
      mantissa_ = rhs.mantissa_;
    }
    exponent_ = rhs.exponent_;
  }
  normalize();
  return *this;
}

ScaledDouble ScaledDouble::exp10i(std::int64_t k) {
  return pow(ScaledDouble(10.0), k);
}

ScaledDouble ScaledDouble::pow(const ScaledDouble& base, std::int64_t n) {
  if (n == 0) return ScaledDouble(1.0);
  const bool invert = n < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  std::uint64_t count = invert ? (~static_cast<std::uint64_t>(n) + 1u)
                               : static_cast<std::uint64_t>(n);
  ScaledDouble result(1.0);
  ScaledDouble square = base;
  while (count != 0) {
    if (count & 1u) result *= square;
    square *= square;
    count >>= 1u;
  }
  if (invert) result = ScaledDouble(1.0) / result;
  return result;
}

std::string ScaledDouble::to_string(int significant_digits) const {
  if (is_zero()) return "0";
  const double l10 = log10_abs();
  std::int64_t d = static_cast<std::int64_t>(std::floor(l10));
  double mant10 = std::pow(10.0, l10 - static_cast<double>(d));
  // Guard against floor/pow rounding leaving mant10 just outside [1, 10).
  if (mant10 >= 10.0) {
    mant10 /= 10.0;
    ++d;
  } else if (mant10 < 1.0) {
    mant10 *= 10.0;
    --d;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", significant_digits - 1, mant10);
  // Rounding may print "10.000"; renormalize once more.
  if (buffer[0] == '1' && buffer[1] == '0') {
    ++d;
    std::snprintf(buffer, sizeof(buffer), "%.*f", significant_digits - 1, 1.0);
  }
  char out[96];
  std::snprintf(out, sizeof(out), "%s%se%+lld", sign() < 0 ? "-" : "", buffer,
                static_cast<long long>(d));
  return out;
}

std::ostream& operator<<(std::ostream& os, const ScaledDouble& value) {
  return os << value.to_string();
}

double ratio_abs(const ScaledDouble& a, const ScaledDouble& b) noexcept {
  if (b.is_zero()) return a.is_zero() ? 1.0 : HUGE_VAL;
  return (a.abs() / b.abs()).to_double();
}

double relative_difference(const ScaledDouble& a, const ScaledDouble& b) noexcept {
  if (a.is_zero() && b.is_zero()) return 0.0;
  const ScaledDouble diff = (a - b).abs();
  const ScaledDouble denom = std::max(a.abs(), b.abs());
  return (diff / denom).to_double();
}

void ScaledComplex::normalize() noexcept {
  const double peak = std::max(std::fabs(mantissa_.real()), std::fabs(mantissa_.imag()));
  if (peak == 0.0) {
    mantissa_ = std::complex<double>(0.0, 0.0);
    exponent_ = 0;
    return;
  }
  assert(std::isfinite(mantissa_.real()) && std::isfinite(mantissa_.imag()));
  int shift = 0;
  (void)std::frexp(peak, &shift);  // peak = f * 2^shift, f in [0.5, 1)
  const int adjust = shift - 1;    // bring peak into [1, 2)
  if (adjust != 0) {
    mantissa_ = std::complex<double>(std::ldexp(mantissa_.real(), -adjust),
                                     std::ldexp(mantissa_.imag(), -adjust));
    exponent_ += adjust;
  }
}

std::complex<double> ScaledComplex::to_complex() const noexcept {
  return {real().to_double(), imag().to_double()};
}

ScaledComplex& ScaledComplex::operator*=(const ScaledComplex& rhs) noexcept {
  mantissa_ *= rhs.mantissa_;
  exponent_ += rhs.exponent_;
  normalize();
  return *this;
}

ScaledComplex& ScaledComplex::operator/=(const ScaledComplex& rhs) noexcept {
  assert(!rhs.is_zero() && "ScaledComplex division by zero");
  mantissa_ /= rhs.mantissa_;
  exponent_ -= rhs.exponent_;
  normalize();
  return *this;
}

ScaledComplex& ScaledComplex::operator+=(const ScaledComplex& rhs) noexcept {
  if (rhs.is_zero()) return *this;
  if (is_zero()) {
    *this = rhs;
    return *this;
  }
  if (exponent_ >= rhs.exponent_) {
    const std::int64_t gap = exponent_ - rhs.exponent_;
    if (gap <= kAlignLimit) {
      const double scale = std::ldexp(1.0, static_cast<int>(-gap));
      mantissa_ += rhs.mantissa_ * scale;
    }
  } else {
    const std::int64_t gap = rhs.exponent_ - exponent_;
    if (gap <= kAlignLimit) {
      const double scale = std::ldexp(1.0, static_cast<int>(-gap));
      mantissa_ = rhs.mantissa_ + mantissa_ * scale;
    } else {
      mantissa_ = rhs.mantissa_;
    }
    exponent_ = rhs.exponent_;
  }
  normalize();
  return *this;
}

std::string ScaledComplex::to_string(int significant_digits) const {
  const ScaledDouble re = real();
  const ScaledDouble im = imag();
  std::string out = re.to_string(significant_digits);
  out += im.sign() < 0 ? " - j" : " + j";
  out += im.abs().to_string(significant_digits);
  return out;
}

std::ostream& operator<<(std::ostream& os, const ScaledComplex& value) {
  return os << value.to_string();
}

ScaledComplex scaled_pivot_product(const std::complex<double>* values, std::size_t count,
                                   std::size_t stride, double sign) {
  // std::complex<double> is layout-compatible with double[2] (guaranteed by
  // the standard), so the interleaved form is the plane form with doubled
  // stride and the imaginary plane offset by one.
  const double* flat = reinterpret_cast<const double*>(values);
  return scaled_pivot_product(flat, flat + 1, count, stride * 2, sign);
}

ScaledComplex scaled_pivot_product(const double* re, const double* im, std::size_t count,
                                   std::size_t stride, double sign) {
  // Window bounds: with the accumulator and each factor's peak magnitude
  // inside (2^-256, 2^256), every elementary product stays within 2^±513 —
  // far from double overflow AND far enough from the subnormal range that
  // no mantissa bits are ever rounded away by the deferred scaling. A
  // factor outside the window (including an exact zero) takes the eagerly
  // normalized ScaledComplex step instead.
  constexpr double kHigh = 0x1p256, kLow = 0x1p-256;
  std::complex<double> acc(sign, 0.0);
  std::int64_t exponent = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::complex<double> v(re[i * stride], im[i * stride]);
    const double vpeak = std::max(std::fabs(v.real()), std::fabs(v.imag()));
    if (!(vpeak > kLow && vpeak < kHigh)) {
      const ScaledComplex folded =
          ScaledComplex::from_mantissa_exp(acc, exponent) * ScaledComplex(v);
      acc = folded.mantissa();
      exponent = folded.exponent2();
      continue;
    }
    acc *= v;
    const double peak = std::max(std::fabs(acc.real()), std::fabs(acc.imag()));
    if (!(peak > kLow && peak < kHigh)) {
      const ScaledComplex folded = ScaledComplex::from_mantissa_exp(acc, exponent);
      acc = folded.mantissa();
      exponent = folded.exponent2();
    }
  }
  return ScaledComplex::from_mantissa_exp(acc, exponent);
}

}  // namespace symref::numeric
