// SPICE engineering-notation number parsing and printing.
//
// The netlist parser accepts values like "30p", "2.2k", "1meg", "10u",
// "1e-9", "4.7E3"; suffix matching is case-insensitive and, as in SPICE,
// any trailing letters after a recognized suffix are ignored ("30pF").
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace symref::numeric {

/// Parse an engineering-notation value; nullopt on malformed input.
std::optional<double> parse_engineering(std::string_view text) noexcept;

/// Format with an engineering suffix when one fits exactly ("30p", "2.2k"),
/// otherwise scientific notation.
std::string format_engineering(double value, int significant_digits = 4);

}  // namespace symref::numeric
