#include "numeric/roots.h"

#include <algorithm>
#include <cmath>

namespace symref::numeric {

namespace {

using Complex = std::complex<double>;

/// p(z) and p'(z) with extended-range accumulation: network-function
/// coefficients span hundreds of decades, so a double Horner would
/// over/underflow even though the roots themselves are representable.
std::pair<ScaledComplex, ScaledComplex> eval_with_derivative(
    const std::vector<ScaledDouble>& coeffs, Complex z) {
  ScaledComplex p;
  ScaledComplex dp;
  const ScaledComplex zs(z);
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    dp = dp * zs + p;
    p = p * zs + ScaledComplex(coeffs[i]);
  }
  return {p, dp};
}

/// Initial guesses from the coefficient profile (Newton-polygon flavour):
/// for circuit polynomials the k-th root magnitude is well approximated by
/// |p_k / p_{k+1}| — consecutive coefficients differ by one pole.
std::vector<Complex> initial_guesses(const std::vector<ScaledDouble>& coeffs) {
  const std::size_t degree = coeffs.size() - 1;
  std::vector<Complex> z(degree);
  double previous_log = 0.0;
  bool have_previous = false;
  for (std::size_t i = 0; i < degree; ++i) {
    double log_radius;
    if (!coeffs[i].is_zero() && !coeffs[i + 1].is_zero()) {
      log_radius = coeffs[i].log10_abs() - coeffs[i + 1].log10_abs();
    } else if (have_previous) {
      log_radius = previous_log;
    } else {
      log_radius = 0.0;
    }
    // Clamp to double-representable magnitudes.
    log_radius = std::clamp(log_radius, -120.0, 120.0);
    previous_log = log_radius;
    have_previous = true;
    // Irrational angular offset breaks conjugate-symmetric stalemates.
    const double angle =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(degree) + 0.4;
    z[i] = std::polar(std::pow(10.0, log_radius), angle);
  }
  return z;
}

RootResult aberth(const std::vector<ScaledDouble>& coeffs, const RootFinderOptions& options) {
  RootResult result;
  const std::size_t degree = coeffs.size() - 1;
  if (degree == 0) {
    result.converged = true;
    return result;
  }

  std::vector<Complex> z = initial_guesses(coeffs);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double worst = 0.0;
    for (std::size_t i = 0; i < degree; ++i) {
      const auto [p, dp] = eval_with_derivative(coeffs, z[i]);
      if (p.is_zero()) continue;
      if (dp.is_zero()) continue;
      // Newton step in extended range; the ratio is root-sized, hence
      // representable as double.
      const Complex newton = (p / dp).to_complex();
      Complex repulsion(0.0, 0.0);
      for (std::size_t j = 0; j < degree; ++j) {
        if (j == i) continue;
        const Complex gap = z[i] - z[j];
        if (std::abs(gap) > 1e-300) repulsion += 1.0 / gap;
      }
      const Complex denom = 1.0 - newton * repulsion;
      const Complex correction = std::abs(denom) < 1e-300 ? newton : newton / denom;
      if (!std::isfinite(correction.real()) || !std::isfinite(correction.imag())) continue;
      z[i] -= correction;
      const double scale = std::max(std::abs(z[i]), 1e-30);
      worst = std::max(worst, std::abs(correction) / scale);
    }
    result.iterations = iter + 1;
    if (worst < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.roots = std::move(z);
  return result;
}

}  // namespace

RootResult find_roots(const Polynomial<ScaledDouble>& poly, const RootFinderOptions& options) {
  RootResult result;
  if (poly.degree() < 1) {
    result.converged = true;
    return result;
  }

  // Strip roots at the origin (leading zero coefficients).
  std::size_t first_nonzero = 0;
  while (first_nonzero < poly.size() && poly.coeff(first_nonzero).is_zero()) ++first_nonzero;
  std::vector<ScaledDouble> coeffs;
  coeffs.reserve(poly.size() - first_nonzero);
  for (std::size_t i = first_nonzero; i < poly.size(); ++i) coeffs.push_back(poly.coeff(i));

  if (coeffs.size() <= 1) {
    result.converged = true;
    result.roots.assign(first_nonzero, Complex(0.0, 0.0));
    return result;
  }

  result = aberth(coeffs, options);
  result.roots.insert(result.roots.end(), first_nonzero, Complex(0.0, 0.0));
  std::sort(result.roots.begin(), result.roots.end(), [](const Complex& a, const Complex& b) {
    return std::abs(a) < std::abs(b);
  });
  return result;
}

RootResult find_roots(const Polynomial<double>& poly, const RootFinderOptions& options) {
  return find_roots(to_scaled(poly), options);
}

}  // namespace symref::numeric
