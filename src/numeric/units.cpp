#include "numeric/units.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace symref::numeric {

namespace {

bool iequals_prefix(std::string_view text, std::string_view prefix) noexcept {
  if (text.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<double> parse_engineering(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  // strtod consumes the numeric part, including any exponent.
  std::string buffer(text);
  char* end = nullptr;
  const double base = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str()) return std::nullopt;
  std::string_view rest = std::string_view(buffer).substr(
      static_cast<std::size_t>(end - buffer.c_str()));

  if (rest.empty()) return base;
  // "meg" must be tested before "m" (milli).
  double multiplier = 1.0;
  if (iequals_prefix(rest, "meg")) {
    multiplier = 1e6;
  } else {
    switch (std::tolower(static_cast<unsigned char>(rest.front()))) {
      case 't': multiplier = 1e12; break;
      case 'g': multiplier = 1e9; break;
      case 'k': multiplier = 1e3; break;
      case 'm': multiplier = 1e-3; break;
      case 'u': multiplier = 1e-6; break;
      case 'n': multiplier = 1e-9; break;
      case 'p': multiplier = 1e-12; break;
      case 'f': multiplier = 1e-15; break;
      default:
        // Unknown trailing letters (e.g. unit names like "ohm") are ignored,
        // matching SPICE behaviour, but reject trailing garbage that starts
        // with a digit or punctuation.
        if (!std::isalpha(static_cast<unsigned char>(rest.front()))) return std::nullopt;
        multiplier = 1.0;
        break;
    }
  }
  return base * multiplier;
}

std::string format_engineering(double value, int significant_digits) {
  if (value == 0.0) return "0";
  struct Suffix {
    double scale;
    const char* text;
  };
  static constexpr Suffix kSuffixes[] = {
      {1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  const double magnitude = std::fabs(value);
  for (const auto& suffix : kSuffixes) {
    const double scaled = magnitude / suffix.scale;
    if (scaled >= 1.0 && scaled < 1000.0) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.*g%s", significant_digits,
                    value / suffix.scale, suffix.text);
      return buffer;
    }
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*e", significant_digits - 1, value);
  return buffer;
}

}  // namespace symref::numeric
