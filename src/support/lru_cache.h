// Bounded least-recently-used map for response memoization.
//
// The service facade memoizes whole responses per (spec, options) key; a
// long-lived server must not let those maps grow without bound under
// heavy traffic. This is the smallest useful LRU: a recency list plus a
// key index, O(log n) lookup, O(1) touch/evict. NOT internally
// synchronized — callers (api::Service spec entries) already serialize
// cache access under their own mutex.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <utility>

namespace symref::support {

template <typename Key, typename Value>
class LruCache {
 public:
  /// `capacity` 0 means unbounded (the pre-LRU behavior, kept for
  /// benchmarking the difference).
  explicit LruCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Value for `key`, or nullptr. A hit becomes the most recently used
  /// entry. The pointer is invalidated by the next insert().
  [[nodiscard]] Value* find(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second;
  }

  /// Insert or overwrite; the entry becomes most recently used. Returns the
  /// number of entries evicted to respect the capacity (0 or 1).
  std::size_t insert(Key key, Value value) {
    if (Value* existing = find(key)) {
      *existing = std::move(value);
      return 0;
    }
    items_.emplace_front(std::move(key), std::move(value));
    index_.emplace(items_.front().first, items_.begin());
    if (capacity_ == 0 || items_.size() <= capacity_) return 0;
    index_.erase(items_.back().first);
    items_.pop_back();
    return 1;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> items_;  // front = most recently used
  std::map<Key, typename std::list<std::pair<Key, Value>>::iterator> index_;
};

}  // namespace symref::support
