// Minimal leveled logger for the symref library.
//
// The library itself is quiet by default (Warn); examples and benches raise
// the level to trace algorithm progress (scale factors, valid regions, ...).
// A single global sink keeps the dependency surface flat: no allocation on
// the hot path when the level filters the message out.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace symref::support {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Redirect log output (default: stderr). Pass nullptr to restore stderr.
void set_log_stream(std::ostream* os) noexcept;

/// Emit one line at `level` with a "[level] " prefix.
void log_line(LogLevel level, std::string_view message);

namespace detail {
/// Stream-style builder: destructor emits the accumulated line.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline bool log_enabled(LogLevel level) noexcept { return level >= log_level(); }

}  // namespace symref::support

// Macros guard the argument evaluation behind the level check so that
// expensive formatting in hot loops costs nothing when filtered.
#define SYMREF_LOG(level, expr)                                              \
  do {                                                                       \
    if (::symref::support::log_enabled(level)) {                            \
      ::symref::support::detail::LogMessage(level) << expr;                  \
    }                                                                        \
  } while (0)

#define SYMREF_TRACE(expr) SYMREF_LOG(::symref::support::LogLevel::Trace, expr)
#define SYMREF_DEBUG(expr) SYMREF_LOG(::symref::support::LogLevel::Debug, expr)
#define SYMREF_INFO(expr) SYMREF_LOG(::symref::support::LogLevel::Info, expr)
#define SYMREF_WARN(expr) SYMREF_LOG(::symref::support::LogLevel::Warn, expr)
#define SYMREF_ERROR(expr) SYMREF_LOG(::symref::support::LogLevel::Error, expr)
