// Crash-safe content-addressed blob store (the refgend --store backend).
//
// Maps a caller-chosen key (here: a hash of compiled netlist + request) to
// an opaque payload, surviving kill -9 at any instant:
//
//   * writes go to a unique temp file, fflush + fsync, then rename(2) onto
//     the final name and fsync the directory — readers see either the old
//     entry or the complete new one, never a torn write;
//   * every entry carries a one-line header with an FNV-1a checksum and the
//     payload size; get() verifies both, and an entry that fails is renamed
//     to "<key>.corrupt" (quarantined for postmortem) and reported as a
//     miss — a half-written or bit-rotted file is recomputed, never trusted.
//
// On-disk format (docs/api.md "Reference store"):
//
//   refstore v1 <16-hex-digit fnv1a64> <payload bytes>\n
//   <payload>
//
// NOTE This file deliberately breaks the "src/ stays free of platform
// headers" rule that transport_posix.h documents: crash safety needs
// fsync(2), and C++ has no portable equivalent. The POSIX surface is
// confined to blob_store.cpp; this header is standard C++.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace symref::support {

/// FNV-1a 64-bit over arbitrary bytes — the store checksum, also used by
/// callers to derive content-addressed keys.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Lowercase 16-hex-digit rendering of a 64-bit hash.
[[nodiscard]] std::string hex64(std::uint64_t value);

class BlobStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;
    std::uint64_t write_failures = 0;
    std::uint64_t corrupt_quarantined = 0;
  };

  /// Opens (creating if needed) the store directory. ok() reports whether
  /// the directory is usable; a broken store degrades to a pass-through
  /// (every get misses, every put fails) rather than taking the server down.
  explicit BlobStore(std::string directory);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const std::string& directory() const noexcept { return directory_; }

  /// Atomically persist `payload` under `key` (replacing any previous
  /// entry). Keys must be non-empty [A-Za-z0-9._-] tokens not starting with
  /// '.'. Returns false on I/O failure (the previous entry, if any, is
  /// untouched).
  bool put(const std::string& key, std::string_view payload);

  /// Fetch the payload for `key`; nullopt on absent, unreadable, or
  /// corrupt (quarantined) entries.
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  [[nodiscard]] Stats stats() const;

 private:
  [[nodiscard]] static bool valid_key(const std::string& key) noexcept;
  void quarantine(const std::string& key);

  std::string directory_;
  bool ok_ = false;
  std::string error_;
  /// One writer/reader at a time: entries are small and the store sits off
  /// the hot path (consulted once per submit), so a single mutex is enough.
  mutable std::mutex mutex_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t write_failures_ = 0;
  std::uint64_t corrupt_quarantined_ = 0;
  std::uint64_t temp_counter_ = 0;
};

}  // namespace symref::support
