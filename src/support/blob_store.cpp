#include "support/blob_store.h"

// The one src/ translation unit allowed POSIX headers (see blob_store.h):
// durability requires fsync on both the entry file and its directory.
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/fault_injection.h"

namespace symref::support {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

namespace {

constexpr const char* kMagic = "refstore v1 ";

bool fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

BlobStore::BlobStore(std::string directory) : directory_(std::move(directory)) {
  if (directory_.empty()) {
    error_ = "store directory is empty";
    return;
  }
  if (::mkdir(directory_.c_str(), 0755) != 0 && errno != EEXIST) {
    error_ = "cannot create '" + directory_ + "': " + std::strerror(errno);
    return;
  }
  struct stat info{};
  if (::stat(directory_.c_str(), &info) != 0 || !S_ISDIR(info.st_mode)) {
    error_ = "'" + directory_ + "' is not a directory";
    return;
  }
  ok_ = true;
}

bool BlobStore::valid_key(const std::string& key) noexcept {
  if (key.empty() || key.front() == '.') return false;
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool BlobStore::put(const std::string& key, std::string_view payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!ok_ || !valid_key(key) || fault("store_io")) {
    ++write_failures_;
    return false;
  }
  std::ostringstream header;
  header << kMagic << hex64(fnv1a64(payload)) << ' ' << payload.size() << '\n';
  const std::string head = header.str();

  // Unique temp name inside the store directory (rename must not cross
  // filesystems); pid + counter keeps concurrent daemons apart.
  const std::string temp = directory_ + "/.tmp-" + std::to_string(::getpid()) + "-" +
                           std::to_string(++temp_counter_);
  const std::string final_path = directory_ + "/" + key;
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    ++write_failures_;
    return false;
  }
  bool ok = true;
  auto write_all = [&](const char* data, std::size_t size) {
    while (size > 0) {
      const ssize_t n = ::write(fd, data, size);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      data += n;
      size -= static_cast<std::size_t>(n);
    }
    return true;
  };
  ok = write_all(head.data(), head.size()) && write_all(payload.data(), payload.size());
  if (ok) ok = ::fsync(fd) == 0;
  ::close(fd);
  if (ok) ok = ::rename(temp.c_str(), final_path.c_str()) == 0;
  if (ok) ok = fsync_path(directory_, /*directory=*/true);
  if (!ok) {
    ::unlink(temp.c_str());
    ++write_failures_;
    return false;
  }
  ++writes_;
  return true;
}

std::optional<std::string> BlobStore::get(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!ok_ || !valid_key(key) || fault("store_io")) {
    ++misses_;
    return std::nullopt;
  }
  const std::string path = directory_ + "/" + key;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++misses_;
    return std::nullopt;
  }
  std::string header;
  if (!std::getline(in, header) || header.rfind(kMagic, 0) != 0) {
    quarantine(key);
    ++misses_;
    return std::nullopt;
  }
  std::istringstream fields(header.substr(std::strlen(kMagic)));
  std::string checksum_hex;
  std::uint64_t size = 0;
  if (!(fields >> checksum_hex >> size) || checksum_hex.size() != 16) {
    quarantine(key);
    ++misses_;
    return std::nullopt;
  }
  std::string payload(size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  // Exactly `size` payload bytes, then EOF: anything shorter is a torn
  // write, anything longer is a foreign file.
  const bool sized_ok = in.gcount() == static_cast<std::streamsize>(size) &&
                        in.peek() == std::ifstream::traits_type::eof();
  if (!sized_ok || hex64(fnv1a64(payload)) != checksum_hex) {
    quarantine(key);
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return payload;
}

void BlobStore::quarantine(const std::string& key) {
  const std::string path = directory_ + "/" + key;
  ::rename(path.c_str(), (path + ".corrupt").c_str());
  ++corrupt_quarantined_;
}

BlobStore::Stats BlobStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, writes_, write_failures_, corrupt_quarantined_};
}

}  // namespace symref::support
