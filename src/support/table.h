// Plain-text table formatter used by the bench harnesses to print rows in
// the same layout as the paper's Tables 1-3.
#pragma once

#include <string>
#include <vector>

namespace symref::support {

/// Column-aligned text table. Cells are strings; the writer computes column
/// widths and renders with a header rule, e.g.
///
///   s^i  | Numerator      | Denominator
///   -----+----------------+-------------
///   s^0  | -5.8296e-25    | 8.9418e-30
class TextTable {
 public:
  /// Set the header row. Must be called before add_row with the same arity.
  void set_header(std::vector<std::string> header);

  /// Append one data row; its size must match the header (checked).
  void add_row(std::vector<std::string> row);

  /// Render the table to a string (trailing newline included).
  [[nodiscard]] std::string str() const;

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double like the paper's tables: "-1.28095e+124" style with a
/// fixed number of significant digits.
std::string format_sci(double value, int significant_digits = 6);

}  // namespace symref::support
