#include "support/bench_json.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace symref::support {

namespace {

/// Parse the flat {"key": number, ...} object this module writes. Anything
/// unparseable is ignored (the file is regenerated on every merge anyway).
std::map<std::string, double> read_flat_json(const std::string& path) {
  std::map<std::string, double> metrics;
  std::ifstream in(path);
  if (!in) return metrics;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::size_t i = 0;
  while (i < text.size()) {
    const std::size_t key_begin = text.find('"', i);
    if (key_begin == std::string::npos) break;
    const std::size_t key_end = text.find('"', key_begin + 1);
    if (key_end == std::string::npos) break;
    const std::size_t colon = text.find(':', key_end + 1);
    if (colon == std::string::npos) break;
    std::size_t value_begin = colon + 1;
    while (value_begin < text.size() &&
           std::isspace(static_cast<unsigned char>(text[value_begin]))) {
      ++value_begin;
    }
    char* parsed_end = nullptr;
    const double value = std::strtod(text.c_str() + value_begin, &parsed_end);
    if (parsed_end != text.c_str() + value_begin) {
      metrics[text.substr(key_begin + 1, key_end - key_begin - 1)] = value;
      i = static_cast<std::size_t>(parsed_end - text.c_str());
    } else {
      i = key_end + 1;
    }
  }
  return metrics;
}

}  // namespace

std::vector<int> thread_ladder(int max_threads) {
  std::vector<int> ladder{1};
  while (ladder.back() * 2 <= max_threads) ladder.push_back(ladder.back() * 2);
  if (ladder.back() != max_threads) ladder.push_back(max_threads);
  return ladder;
}

bool merge_bench_json(const std::string& path, const std::map<std::string, double>& metrics) {
  std::map<std::string, double> merged = read_flat_json(path);
  for (const auto& [key, value] : metrics) merged[key] = value;

  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  std::size_t written = 0;
  for (const auto& [key, value] : merged) {
    char formatted[64];
    std::snprintf(formatted, sizeof(formatted), "%.9g", value);
    out << "  \"" << key << "\": " << formatted;
    if (++written < merged.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
  return static_cast<bool>(out);
}

}  // namespace symref::support
