// Machine-readable benchmark output.
//
// Every bench harness merges its headline numbers into one flat JSON file
// (BENCH_refgen.json by default) so successive PRs can diff the perf
// trajectory without scraping text tables. The file is a single object of
// "metric": number pairs; merging preserves keys written by other benches.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace symref::support {

/// Merge `metrics` into the JSON object stored at `path` (created when
/// missing). Existing keys not in `metrics` are preserved; shared keys are
/// overwritten. Returns false when the file cannot be written.
bool merge_bench_json(const std::string& path, const std::map<std::string, double>& metrics);

/// Default output path, relative to the working directory of the bench run.
inline const char* kBenchJsonPath = "BENCH_refgen.json";

/// Thread counts for a --threads sweep: 1, 2, 4, ... doubling up to (and
/// always including) `max_threads`. The `*_ms_t<N>` metric rows follow it.
std::vector<int> thread_ladder(int max_threads);

}  // namespace symref::support
