// Deterministic xoshiro256** generator.
//
// Tests and benches need reproducible random circuits/matrices across
// platforms and standard-library versions, which std::mt19937 +
// std::uniform_real_distribution do not guarantee. This generator plus the
// explicit mapping functions below are bit-stable everywhere.
#pragma once

#include <cmath>
#include <cstdint>

namespace symref::support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept { return next_u64() % n; }

  /// Log-uniform double in [lo, hi), lo > 0 — natural for element values
  /// that span decades (1 pF .. 1 µF).
  double log_uniform(double lo, double hi) noexcept {
    return std::exp(uniform(std::log(lo), std::log(hi)));
  }

  /// Random sign: ±1.
  double sign() noexcept { return (next_u64() & 1u) ? 1.0 : -1.0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace symref::support
