#include "support/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace symref::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<std::ostream*> g_stream{nullptr};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_stream(std::ostream* os) noexcept { g_stream.store(os, std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream* os = g_stream.load(std::memory_order_relaxed);
  if (os == nullptr) os = &std::cerr;
  (*os) << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace symref::support
