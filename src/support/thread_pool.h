// Shared-nothing data parallelism for the sample-evaluation engine.
//
// The evaluation workloads (interpolation sample batches, Bode sweeps,
// multi-circuit reference generation) are embarrassingly parallel: every
// point is an independent assemble + refactor + solve against one immutable
// symbolic plan. The pool therefore offers exactly one primitive —
// parallel_for over an index range — with dynamic chunk self-scheduling
// (an atomic cursor; idle lanes keep grabbing chunks, so uneven per-point
// cost balances itself without task queues).
//
// Determinism contract: the pool never influences results. Which lane
// executes which chunk is scheduling-dependent, but callers write outputs
// by index into preallocated slots and keep all mutable state per-lane, so
// every output element sees the same floating-point sequence at any thread
// count. Reductions (phase unwrap, max-noise scans) are performed by the
// caller afterwards in index order.
//
// The calling thread participates as lane 0; a pool of size 1 spawns no
// threads and runs bodies inline, making `threads = 1` byte-for-byte the
// serial path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace symref::support {

class ThreadPool {
 public:
  /// `threads` <= 0 picks hardware_threads(). The pool keeps `threads - 1`
  /// persistent workers (the caller is the remaining lane), so repeated
  /// parallel_for calls — one per interpolation iteration, say — pay no
  /// thread spawn cost.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, including the calling thread. Always >= 1.
  [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Invoke `body(begin, end, lane)` over disjoint chunks covering
  /// [0, count). `lane` is in [0, size()) and is stable for the duration of
  /// one chunk — use it to index per-lane scratch state. Chunks are handed
  /// out dynamically; do not assume any chunk-to-lane mapping. Blocks until
  /// the whole range is done. The first exception thrown by a body is
  /// rethrown here (remaining chunks are abandoned). Not reentrant: do not
  /// call parallel_for from inside a body.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t begin, std::size_t end, int lane)>& body);

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads() noexcept;

 private:
  void worker_loop(int lane);
  void run_chunks(int lane);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped per parallel_for; wakes workers
  int busy_workers_ = 0;
  bool stop_ = false;

  // Current job (valid while busy_workers_ > 0 or the caller runs chunks).
  const std::function<void(std::size_t, std::size_t, int)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::size_t chunk_ = 1;
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr error_;
};

/// FIFO task executor for job-style workloads — the complement of
/// ThreadPool. parallel_for fans ONE computation out and blocks the caller;
/// a WorkQueue accepts MANY independent computations (api::JobManager's
/// submitted jobs) and runs them on persistent workers while the caller
/// moves on. Tasks must not throw (run whole jobs that report failure
/// through their own channel); a throwing task terminates, by design.
class WorkQueue {
 public:
  /// Outcome of try_post — the backpressure contract.
  enum class PostResult {
    kAccepted,  ///< task enqueued (or already running)
    kFull,      ///< depth bound hit; task dropped — shed load, retry later
    kStopped,   ///< shutdown began; task dropped
  };

  /// `workers` <= 0 picks hardware_threads(). Unlike ThreadPool, the caller
  /// is NOT a lane — post() returns immediately — so a queue always spawns
  /// at least one worker. `max_pending` bounds the tasks waiting to start
  /// (0 = unbounded): a bounded queue sheds load instead of buffering an
  /// unbounded backlog behind a slow worker pool.
  explicit WorkQueue(int workers = 0, std::size_t max_pending = 0);
  /// Stops accepting work, discards tasks that have not started, and joins
  /// the workers (running tasks finish first). Callers that need discarded
  /// tasks observed (job managers completing them as cancelled) must do so
  /// before destruction.
  ~WorkQueue();

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Enqueue a task. Returns false (task dropped) after shutdown began or
  /// when the depth bound is hit — post(t) == (try_post(t) == kAccepted).
  bool post(std::function<void()> task);

  /// Enqueue a task, distinguishing "queue full" from "shut down" so
  /// callers can answer kOverloaded vs kCancelled.
  PostResult try_post(std::function<void()> task);

  [[nodiscard]] int workers() const noexcept { return static_cast<int>(workers_.size()); }
  /// Tasks posted but not yet started.
  [[nodiscard]] std::size_t pending() const;
  /// Depth bound (0 = unbounded).
  [[nodiscard]] std::size_t max_pending() const noexcept { return max_pending_; }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::size_t max_pending_ = 0;
  bool stop_ = false;
};

}  // namespace symref::support
