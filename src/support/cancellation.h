// Cooperative cancellation for long-running engine work.
//
// A CancellationSource owns a shared flag; any number of CancellationTokens
// observe it. The flag only ever goes false -> true, so a relaxed atomic
// load is enough and a checkpoint costs one cache read. Cancellation is
// cooperative: the engines poll at natural safepoints (once per
// interpolation iteration, once per sweep point), finish the state they are
// mutating, and stop — nothing is interrupted mid-factorization, so caches
// and plans stay valid for the next request on the same handle.
//
// Two stopping styles coexist:
//   - AdaptiveScalingEngine returns a partial AdaptiveResult with
//     termination == "cancelled" (the facade maps it to kCancelled);
//   - value-returning sweeps (AcSimulator::bode) throw CancelledError,
//     which api::status_from_current_exception also maps to kCancelled.
#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>

namespace symref::support {

/// Read side: cheap to copy, safe to share across threads. A
/// default-constructed token is never cancelled (the "no cancellation"
/// value every options struct defaults to).
class CancellationToken {
 public:
  CancellationToken() = default;

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }
  /// True when connected to a source (even if not yet cancelled).
  [[nodiscard]] bool connected() const noexcept { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: cancel() trips every token handed out by this source.
/// Copying a source shares the flag. Thread-safe.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() noexcept { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Thrown by cancellation checkpoints in value-returning call chains.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("operation cancelled") {}
};

}  // namespace symref::support
