// Deterministic fault injection for exercising recovery paths.
//
// Robust serving code is only as good as its least-tested error branch.
// This registry lets tests and CI *force* those branches: a named fault
// site (a string literal at the injection point) fires with a configured
// probability, drawn from a per-site counter-based splitmix64 stream, so a
// given (site, probability, seed) triple injects the exact same faults on
// every run — chaos that reproduces.
//
// Configuration is a comma-separated spec, settable programmatically or via
// the REFGEN_FAULT environment variable (read once, lazily):
//
//   REFGEN_FAULT="lu_pivot:0.05:42,socket_io:0.01:7"
//
// Each entry is site:probability[:seed]. An empty spec disables everything.
// Known sites (grep for support::fault to find the hooks):
//
//   lu_alloc    SparseLu symbolic analysis throws std::bad_alloc
//   lu_pivot    SparseLu::refactor refuses the replay (pattern-ok path)
//   newton_step dc::OpSolver treats one Newton iterate's plan replay as
//               refused, forcing a fresh factorization through the
//               degradation ladder (the .op analogue of lu_pivot)
//   json_parse  api::Json::parse fails with kParseError
//   work_queue  JobManager::run fails the attempt with kUnavailable
//   socket_io   daemon/tool socket send fails as if the peer vanished;
//               refgend's accept loop sees a transient error
//   store_io    support::BlobStore read/write fails
//
// The injector is process-global (faults must reach code that has no handle
// to pass one through) and thread-safe. should_fail is a single relaxed
// atomic load when no faults are armed — cheap enough for hot paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace symref::support {

class FaultInjector {
 public:
  struct SiteStats {
    std::string site;
    double probability = 0.0;
    std::uint64_t queries = 0;   ///< times should_fail consulted this site
    std::uint64_t injected = 0;  ///< times it answered "fail"
  };

  /// The process-wide injector. First access parses REFGEN_FAULT (if set).
  static FaultInjector& instance();

  /// Replace the armed sites with `spec` ("site:prob[:seed],..."). An empty
  /// spec disarms everything. Returns false (and explains in *error, when
  /// given) on a malformed spec; the previous configuration is kept.
  bool configure(const std::string& spec, std::string* error = nullptr);

  /// True when the named site should fail this time. Unknown or disarmed
  /// sites never fail. Deterministic per (site, seed): the k-th query of a
  /// site hashes (seed, k) and compares against the probability.
  [[nodiscard]] bool should_fail(const char* site) noexcept;

  /// Snapshot of every armed site's counters (for tests and telemetry).
  [[nodiscard]] std::vector<SiteStats> stats() const;

  /// Disarm all sites and zero the counters.
  void reset();

 private:
  FaultInjector() = default;
  struct Impl;
  static Impl& impl() noexcept;
};

/// Hook helper: `if (support::fault("lu_pivot")) return false;`
[[nodiscard]] bool fault(const char* site) noexcept;

}  // namespace symref::support
