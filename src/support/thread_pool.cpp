#include "support/thread_pool.h"

#include <algorithm>

namespace symref::support {

int ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = hardware_threads();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int lane = 1; lane < threads; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_chunks(int lane) {
  for (;;) {
    const std::size_t begin = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= count_) return;
    const std::size_t end = std::min(begin + chunk_, count_);
    try {
      (*body_)(begin, end, lane);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      // Abandon the remaining range: park the cursor past the end so every
      // lane drains without invoking the body again.
      cursor_.store(count_, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop(int lane) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();
    run_chunks(lane);
    lock.lock();
    if (--busy_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t, std::size_t, int)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Inline fast path — identical to the parallel one (chunking only splits
    // the index range; the body sees the same (begin, end) partition).
    body(0, count, 0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    count_ = count;
    // ~4 chunks per lane: coarse enough to amortize the atomic grab, fine
    // enough that one slow chunk cannot idle the other lanes for long.
    chunk_ = std::max<std::size_t>(1, count / (static_cast<std::size_t>(size()) * 4));
    cursor_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    busy_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunks(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

WorkQueue::WorkQueue(int workers, std::size_t max_pending) : max_pending_(max_pending) {
  if (workers <= 0) workers = ThreadPool::hardware_threads();
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkQueue::~WorkQueue() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    tasks_.clear();
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool WorkQueue::post(std::function<void()> task) {
  return try_post(std::move(task)) == PostResult::kAccepted;
}

WorkQueue::PostResult WorkQueue::try_post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return PostResult::kStopped;
    if (max_pending_ > 0 && tasks_.size() >= max_pending_) return PostResult::kFull;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
  return PostResult::kAccepted;
}

std::size_t WorkQueue::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void WorkQueue::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
    if (stop_) return;
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

}  // namespace symref::support
