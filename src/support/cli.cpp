#include "support/cli.h"

#include <cstdlib>
#include <set>

namespace symref::support {

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::initializer_list<const char*> value_flags) {
  const std::set<std::string> takes_value(value_flags.begin(), value_flags.end());
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        const std::string name = arg.substr(2);
        // A value flag consumes the next token unless that token is itself a
        // flag (a user who wrote `--json --threads 8` forgot the path; do
        // not swallow `--threads`).
        if (takes_value.count(name) != 0 && i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[name] = argv[++i];
        } else {
          flags_[name] = "";
        }
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) != 0; }

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  // A value-less flag (`--json` with the path forgotten) falls back like an
  // absent one, mirroring get_double()'s unparsable-value behavior.
  const auto it = flags_.find(name);
  return it == flags_.end() || it->second.empty() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : value;
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  return static_cast<int>(get_double(name, fallback));
}

}  // namespace symref::support
