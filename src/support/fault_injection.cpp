#include "support/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace symref::support {

namespace {

/// splitmix64 — tiny, full-period, and statistically fine for coin flips.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double unit_draw(std::uint64_t seed, std::uint64_t counter) noexcept {
  const std::uint64_t bits = mix64(mix64(seed) ^ counter);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

struct Site {
  std::string name;
  double probability = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t queries = 0;
  std::uint64_t injected = 0;
};

}  // namespace

struct FaultInjector::Impl {
  std::atomic<bool> armed{false};
  mutable std::mutex mutex;
  std::vector<Site> sites;
};

FaultInjector::Impl& FaultInjector::impl() noexcept {
  static Impl instance;
  return instance;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  static std::once_flag env_once;
  std::call_once(env_once, [] {
    const char* spec = std::getenv("REFGEN_FAULT");
    if (spec != nullptr && *spec != '\0') injector.configure(spec);
  });
  return injector;
}

bool FaultInjector::configure(const std::string& spec, std::string* error) {
  std::vector<Site> parsed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) {
      if (spec.empty()) break;  // empty spec: disarm
      if (error != nullptr) *error = "empty fault entry in '" + spec + "'";
      return false;
    }
    Site site;
    const std::size_t first = entry.find(':');
    if (first == std::string::npos || first == 0) {
      if (error != nullptr) *error = "expected site:prob[:seed], got '" + entry + "'";
      return false;
    }
    site.name = entry.substr(0, first);
    std::size_t second = entry.find(':', first + 1);
    const std::string prob_text =
        entry.substr(first + 1, (second == std::string::npos ? entry.size() : second) - first - 1);
    try {
      std::size_t used = 0;
      site.probability = std::stod(prob_text, &used);
      if (used != prob_text.size()) throw std::invalid_argument(prob_text);
      if (second != std::string::npos) {
        const std::string seed_text = entry.substr(second + 1);
        site.seed = std::stoull(seed_text, &used);
        if (used != seed_text.size()) throw std::invalid_argument(seed_text);
      }
    } catch (const std::exception&) {
      if (error != nullptr) *error = "bad probability/seed in '" + entry + "'";
      return false;
    }
    if (!(site.probability >= 0.0) || !(site.probability <= 1.0)) {
      if (error != nullptr) *error = "probability out of [0,1] in '" + entry + "'";
      return false;
    }
    parsed.push_back(std::move(site));
  }
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.sites = std::move(parsed);
  state.armed.store(!state.sites.empty(), std::memory_order_release);
  return true;
}

bool FaultInjector::should_fail(const char* site) noexcept {
  Impl& state = impl();
  if (!state.armed.load(std::memory_order_acquire)) return false;
  const std::lock_guard<std::mutex> lock(state.mutex);
  for (Site& armed : state.sites) {
    if (armed.name != site) continue;
    ++armed.queries;
    const bool fail = unit_draw(armed.seed, armed.queries) < armed.probability;
    if (fail) ++armed.injected;
    return fail;
  }
  return false;
}

std::vector<FaultInjector::SiteStats> FaultInjector::stats() const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<SiteStats> out;
  out.reserve(state.sites.size());
  for (const Site& site : state.sites) {
    out.push_back({site.name, site.probability, site.queries, site.injected});
  }
  return out;
}

void FaultInjector::reset() {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.sites.clear();
  state.armed.store(false, std::memory_order_release);
}

bool fault(const char* site) noexcept { return FaultInjector::instance().should_fail(site); }

}  // namespace symref::support
