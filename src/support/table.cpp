#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace symref::support {

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: arity mismatch with header");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  const std::size_t cols = header_.empty() ? (rows_.empty() ? 0 : rows_.front().size())
                                           : header_.size();
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < std::min(cols, row.size()); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(width[c] - cell.size(), ' ');
      if (c + 1 < cols) os << " | ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t c = 0; c < cols; ++c) {
      os << std::string(width[c], '-');
      if (c + 1 < cols) os << "-+-";
    }
    os << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_sci(double value, int significant_digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*e", std::max(0, significant_digits - 1), value);
  return buffer;
}

}  // namespace symref::support
