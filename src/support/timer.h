// Wall-clock stopwatch used by the refgen engine to report per-iteration
// timings (the paper's §3.3 CPU-time experiment).
#pragma once

#include <chrono>

namespace symref::support {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace symref::support
