// Tiny flag parser shared by examples: `--key=value` / `--flag` only.
// Examples are demonstration binaries; anything fancier belongs to the user.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace symref::support {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if `--name` or `--name=...` was passed.
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value of `--name=value`, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback = "") const;

  /// Numeric value of `--name=value`, or `fallback` when absent/unparsable.
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace symref::support
