// Tiny flag parser shared by examples and benches: `--key=value` / `--flag`,
// plus space-separated values (`--key value`) for flags the caller declares
// as value-taking. Anything fancier belongs to the user.
#pragma once

#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace symref::support {

class CliArgs {
 public:
  /// `value_flags` names flags (without the leading `--`) that consume the
  /// following argument as their value when written space-separated
  /// (`--json out.json`); the `--json=out.json` form always works. Flags not
  /// listed stay boolean when written without '='.
  CliArgs(int argc, const char* const* argv,
          std::initializer_list<const char*> value_flags = {});

  /// True if `--name` or `--name=...` was passed.
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value of `--name=value`, or `fallback` when absent or empty.
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback = "") const;

  /// Numeric value of `--name=value`, or `fallback` when absent/unparsable.
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace symref::support
