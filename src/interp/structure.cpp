#include "interp/structure.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "netlist/canonical.h"

namespace symref::interp {

namespace {

constexpr double kInfeasible = 1e18;

/// Hungarian algorithm (Jonker-Volgenant potentials form), minimizing the
/// total cost of a perfect matching on a dense n x n cost matrix.
/// Returns the optimal cost, or >= kInfeasible/2 when only matchings through
/// forbidden entries exist.
double solve_assignment(const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  if (n == 0) return 0.0;
  // 1-based potentials implementation (classic competitive-programming form,
  // O(n^3)).
  std::vector<double> u(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<int> match(static_cast<std::size_t>(n) + 1, 0);  // column -> row
  std::vector<int> way(static_cast<std::size_t>(n) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> min_v(static_cast<std::size_t>(n) + 1,
                              std::numeric_limits<double>::infinity());
    std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
    do {
      used[static_cast<std::size_t>(j0)] = true;
      const int i0 = match[static_cast<std::size_t>(j0)];
      double delta = std::numeric_limits<double>::infinity();
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double current =
            cost[static_cast<std::size_t>(i0 - 1)][static_cast<std::size_t>(j - 1)] -
            u[static_cast<std::size_t>(i0)] - v[static_cast<std::size_t>(j)];
        if (current < min_v[static_cast<std::size_t>(j)]) {
          min_v[static_cast<std::size_t>(j)] = current;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (min_v[static_cast<std::size_t>(j)] < delta) {
          delta = min_v[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(match[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          min_v[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<std::size_t>(j0)] != 0);
    // Augment along the alternating path.
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      match[static_cast<std::size_t>(j0)] = match[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  double total = 0.0;
  for (int j = 1; j <= n; ++j) {
    total += cost[static_cast<std::size_t>(match[static_cast<std::size_t>(j)] - 1)]
                 [static_cast<std::size_t>(j - 1)];
  }
  return total;
}

enum EntryKind : unsigned { kEmpty = 0, kHasCond = 1, kHasCap = 2 };

}  // namespace

StructuralDegrees structural_determinant_degrees(const netlist::Circuit& circuit) {
  if (!netlist::is_canonical(circuit)) {
    throw std::invalid_argument(
        "structural_determinant_degrees: circuit is not canonical");
  }

  // Active-node row map, mirroring mna::NodalSystem.
  std::vector<bool> active(static_cast<std::size_t>(circuit.node_count()), false);
  for (const auto& e : circuit.elements()) {
    active[static_cast<std::size_t>(e.node_pos)] = true;
    active[static_cast<std::size_t>(e.node_neg)] = true;
    if (e.ctrl_pos >= 0) active[static_cast<std::size_t>(e.ctrl_pos)] = true;
    if (e.ctrl_neg >= 0) active[static_cast<std::size_t>(e.ctrl_neg)] = true;
  }
  std::vector<int> row_of(static_cast<std::size_t>(circuit.node_count()), -1);
  int n = 0;
  for (int node = 1; node < circuit.node_count(); ++node) {
    if (active[static_cast<std::size_t>(node)]) row_of[static_cast<std::size_t>(node)] = n++;
  }

  std::vector<unsigned> pattern(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                                kEmpty);
  auto mark = [&](int r, int c, unsigned kind) {
    if (r < 0 || c < 0) return;
    pattern[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
            static_cast<std::size_t>(c)] |= kind;
  };
  for (const auto& e : circuit.elements()) {
    const int ra = row_of[static_cast<std::size_t>(e.node_pos)];
    const int rb = row_of[static_cast<std::size_t>(e.node_neg)];
    switch (e.kind) {
      case netlist::ElementKind::Conductance:
      case netlist::ElementKind::Capacitor: {
        const unsigned kind =
            e.kind == netlist::ElementKind::Capacitor ? kHasCap : kHasCond;
        mark(ra, ra, kind);
        mark(rb, rb, kind);
        mark(ra, rb, kind);
        mark(rb, ra, kind);
        break;
      }
      case netlist::ElementKind::Vccs: {
        const int rc = row_of[static_cast<std::size_t>(e.ctrl_pos)];
        const int rd = row_of[static_cast<std::size_t>(e.ctrl_neg)];
        mark(ra, rc, kHasCond);
        mark(ra, rd, kHasCond);
        mark(rb, rc, kHasCond);
        mark(rb, rd, kHasCond);
        break;
      }
      default:
        break;  // unreachable (canonical)
    }
  }

  StructuralDegrees degrees;
  if (n == 0) return degrees;

  // max_degree: maximize cap usage -> minimize (1 - has_cap).
  std::vector<std::vector<double>> cost_max(
      static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(n)));
  // min_degree: minimize forced caps (cap-only entries cost 1).
  std::vector<std::vector<double>> cost_min = cost_max;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const unsigned kind = pattern[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
                                    static_cast<std::size_t>(c)];
      if (kind == kEmpty) {
        cost_max[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = kInfeasible;
        cost_min[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = kInfeasible;
      } else {
        cost_max[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            (kind & kHasCap) ? 0.0 : 1.0;
        cost_min[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            (kind & kHasCond) ? 0.0 : 1.0;
      }
    }
  }

  const double max_cost = solve_assignment(cost_max);
  if (max_cost >= kInfeasible / 2) {
    degrees.singular = true;
    return degrees;
  }
  degrees.max_degree = n - static_cast<int>(max_cost + 0.5);
  const double min_cost = solve_assignment(cost_min);
  degrees.min_degree = static_cast<int>(min_cost + 0.5);
  return degrees;
}

}  // namespace symref::interp
