#include "interp/interpolator.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "numeric/dft.h"

namespace symref::interp {

using numeric::ScaledComplex;
using numeric::ScaledDouble;

UnitCircleSampler::UnitCircleSampler(int point_count, bool conjugate_symmetry)
    : point_count_(point_count), symmetric_(conjugate_symmetry) {
  if (point_count < 1) throw std::invalid_argument("UnitCircleSampler: need >= 1 point");
  const std::vector<std::complex<double>> all =
      numeric::unit_circle_points(static_cast<std::size_t>(point_count));
  const int unique = symmetric_ ? point_count / 2 + 1 : point_count;
  evaluation_points_.assign(all.begin(), all.begin() + unique);
}

std::vector<ScaledComplex> UnitCircleSampler::expand(
    const std::vector<ScaledComplex>& unique_values) const {
  assert(static_cast<int>(unique_values.size()) ==
         static_cast<int>(evaluation_points_.size()));
  if (!symmetric_) return unique_values;
  std::vector<ScaledComplex> full(static_cast<std::size_t>(point_count_));
  const int unique = static_cast<int>(unique_values.size());
  for (int k = 0; k < unique; ++k) full[static_cast<std::size_t>(k)] = unique_values[static_cast<std::size_t>(k)];
  for (int k = unique; k < point_count_; ++k) {
    // s_k = conj(s_{K-k})  =>  P(s_k) = conj(P(s_{K-k})).
    full[static_cast<std::size_t>(k)] =
        unique_values[static_cast<std::size_t>(point_count_ - k)].conj();
  }
  return full;
}

std::vector<ScaledComplex> coefficients_from_samples(
    const std::vector<ScaledComplex>& samples) {
  return numeric::coefficients_from_unit_circle_samples(samples);
}

std::vector<ScaledDouble> real_magnitudes(const std::vector<ScaledComplex>& coefficients) {
  std::vector<ScaledDouble> magnitudes;
  magnitudes.reserve(coefficients.size());
  for (const ScaledComplex& c : coefficients) magnitudes.push_back(c.real().abs());
  return magnitudes;
}

ScaledComplex deflate_sample(const ScaledComplex& sample, std::complex<double> s_hat,
                             const std::vector<KnownCoefficient>& known, int shift) {
  ScaledComplex residual = sample;
  for (const KnownCoefficient& kc : known) {
    // p_i * s^i; powers of a unit-magnitude point are computed by polar form
    // to avoid error accumulation for large i.
    const double angle = std::arg(s_hat) * static_cast<double>(kc.index);
    const ScaledComplex power(std::complex<double>(std::cos(angle), std::sin(angle)));
    residual -= ScaledComplex(kc.value) * power;
  }
  if (shift != 0) {
    const double angle = -std::arg(s_hat) * static_cast<double>(shift);
    residual *= ScaledComplex(std::complex<double>(std::cos(angle), std::sin(angle)));
  }
  return residual;
}

}  // namespace symref::interp
