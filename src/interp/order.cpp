#include "interp/order.h"

#include <numeric>
#include <vector>

namespace symref::interp {

namespace {

/// Union-find over circuit nodes.
class DisjointSet {
 public:
  explicit DisjointSet(int count) : parent_(static_cast<std::size_t>(count)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  /// Returns true when the edge joined two components (tree edge).
  bool unite(int a, int b) {
    const int ra = find(a);
    const int rb = find(b);
    if (ra == rb) return false;
    parent_[static_cast<std::size_t>(ra)] = rb;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

int capacitor_element_bound(const netlist::Circuit& circuit) {
  int count = 0;
  for (const auto& e : circuit.elements()) {
    if (e.kind == netlist::ElementKind::Capacitor && e.node_pos != e.node_neg) ++count;
  }
  return count;
}

int capacitor_rank_bound(const netlist::Circuit& circuit) {
  DisjointSet components(circuit.node_count());
  int rank = 0;
  for (const auto& e : circuit.elements()) {
    if (e.kind != netlist::ElementKind::Capacitor || e.node_pos == e.node_neg) continue;
    if (components.unite(e.node_pos, e.node_neg)) ++rank;
  }
  return rank;
}

int denominator_order_bound(const netlist::Circuit& canonical_circuit) {
  // Active non-ground node count bounds the matrix dimension.
  std::vector<bool> active(static_cast<std::size_t>(canonical_circuit.node_count()), false);
  for (const auto& e : canonical_circuit.elements()) {
    active[static_cast<std::size_t>(e.node_pos)] = true;
    active[static_cast<std::size_t>(e.node_neg)] = true;
  }
  int dim = 0;
  for (int n = 1; n < canonical_circuit.node_count(); ++n) {
    if (active[static_cast<std::size_t>(n)]) ++dim;
  }
  const int rank = capacitor_rank_bound(canonical_circuit);
  return rank < dim ? rank : dim;
}

}  // namespace symref::interp
