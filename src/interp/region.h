// Valid-region extraction (paper §3.2, eq. (12)).
//
// After one interpolation, a normalized coefficient is trustworthy only when
// it stands above the round-off floor of the transform:
//
//   |p_i|  >=  10^(-noise_decades + sigma) * max_j |p_j|
//
// with noise_decades ~= 13 for 16-digit arithmetic (paper §2.2) and sigma
// the number of significant digits demanded of each coefficient. The valid
// region is the maximal contiguous index span around the peak that clears
// the floor — contiguity matters because the adaptive scaling update (eqs.
// (13)-(15)) works with the region's endpoints.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "numeric/scaled.h"

namespace symref::interp {

struct RegionOptions {
  /// Significant decimal digits demanded of accepted coefficients.
  int sigma = 6;
  /// Decimal digits of working precision (16-digit arithmetic keeps ~13
  /// clean digits through the DFT; see paper §2.2).
  double noise_decades = 13.0;
  /// Absolute noise already present in the analyzed values beyond the
  /// transform's own round-off — e.g. the subtraction error of known
  /// coefficients in a deflated interpolation (eq. (17)). The acceptance
  /// floor becomes max(peak * 10^(sigma - noise_decades),
  ///                   external_noise * 10^sigma).
  numeric::ScaledDouble external_noise{};
};

struct ValidRegion {
  int begin = 0;       // first valid index
  int end = -1;        // last valid index, inclusive; empty() when end < begin
  int max_index = -1;  // index of the peak |p_i|
  numeric::ScaledDouble max_value;    // |p_max|
  numeric::ScaledDouble error_floor;  // acceptance threshold

  [[nodiscard]] bool empty() const noexcept { return end < begin; }
  [[nodiscard]] int width() const noexcept { return empty() ? 0 : end - begin + 1; }
  [[nodiscard]] bool contains(int index) const noexcept {
    return index >= begin && index <= end;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Find the contiguous valid region around the peak magnitude.
ValidRegion find_valid_region(std::span<const numeric::ScaledDouble> magnitudes,
                              const RegionOptions& options = {});

/// All indices above the floor, contiguity ignored — used by diagnostics and
/// the Table 1 baseline, which reports scattered valid coefficients.
std::vector<int> indices_above_floor(std::span<const numeric::ScaledDouble> magnitudes,
                                     const RegionOptions& options = {});

}  // namespace symref::interp
