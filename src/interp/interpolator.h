// Unit-circle polynomial interpolation front-end.
//
// The paper's evaluation loop (eqs. (4)-(10)): sample the network function's
// numerator/denominator at K equally spaced points on the unit circle of the
// *scaled* frequency variable, then recover coefficients with the inverse
// DFT. Two refinements live here:
//
//  * conjugate symmetry — the polynomials have real coefficients, so
//    P(conj(s)) = conj(P(s)) and only floor(K/2)+1 points need an actual
//    matrix factorization (the dominant cost);
//  * sample-space deflation (paper eq. (17)) — once coefficients p_0..p_{k-1}
//    and p_{l+1}..p_n are known, the remaining ones are interpolated from
//    P'(s) = (P(s) - known parts) / s^k with only l-k+1 points.
#pragma once

#include <complex>
#include <utility>
#include <vector>

#include "numeric/scaled.h"

namespace symref::interp {

/// Evaluation-point bookkeeping for one K-point interpolation.
class UnitCircleSampler {
 public:
  /// K >= 1 points; with symmetry enabled only floor(K/2)+1 are evaluated.
  explicit UnitCircleSampler(int point_count, bool conjugate_symmetry = true);

  [[nodiscard]] int point_count() const noexcept { return point_count_; }

  /// The points that require an actual evaluation.
  [[nodiscard]] const std::vector<std::complex<double>>& evaluation_points() const noexcept {
    return evaluation_points_;
  }

  /// Expand values at evaluation_points() to all K points, filling the
  /// mirrored half with conjugates when symmetry is on.
  [[nodiscard]] std::vector<numeric::ScaledComplex> expand(
      const std::vector<numeric::ScaledComplex>& unique_values) const;

 private:
  int point_count_;
  bool symmetric_;
  std::vector<std::complex<double>> evaluation_points_;
};

/// Recover normalized coefficients from all-K-point samples (IDFT wrapper).
std::vector<numeric::ScaledComplex> coefficients_from_samples(
    const std::vector<numeric::ScaledComplex>& samples);

/// |Re p_i| of each coefficient — the region logic works on magnitudes of
/// the real parts (the polynomials are real; imaginary parts are noise).
std::vector<numeric::ScaledDouble> real_magnitudes(
    const std::vector<numeric::ScaledComplex>& coefficients);

/// One known coefficient in the *current* normalized scaling.
struct KnownCoefficient {
  int index = 0;
  numeric::ScaledDouble value;  // normalized p'_index
};

/// Paper eq. (17): subtract the known parts from a sample and shift down by
/// `shift` powers of s (|s_hat| == 1, so the division is exact in
/// magnitude). The result is a sample of the residual polynomial whose
/// coefficient j corresponds to original index j + shift.
numeric::ScaledComplex deflate_sample(const numeric::ScaledComplex& sample,
                                      std::complex<double> s_hat,
                                      const std::vector<KnownCoefficient>& known,
                                      int shift);

}  // namespace symref::interp
