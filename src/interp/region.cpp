#include "interp/region.h"

#include <cmath>
#include <sstream>
#include <vector>

namespace symref::interp {

std::string ValidRegion::to_string() const {
  std::ostringstream os;
  if (empty()) {
    os << "[empty]";
  } else {
    os << "[p" << begin << "..p" << end << "] peak p" << max_index << " = "
       << max_value.to_string(4) << ", floor = " << error_floor.to_string(4);
  }
  return os.str();
}

ValidRegion find_valid_region(std::span<const numeric::ScaledDouble> magnitudes,
                              const RegionOptions& options) {
  ValidRegion region;
  if (magnitudes.empty()) return region;

  for (std::size_t i = 0; i < magnitudes.size(); ++i) {
    if (region.max_index < 0 || magnitudes[i] > region.max_value) {
      region.max_index = static_cast<int>(i);
      region.max_value = magnitudes[i];
    }
  }
  if (region.max_value.is_zero()) {
    region.begin = 0;
    region.end = -1;
    return region;
  }
  const double floor_exponent = -options.noise_decades + static_cast<double>(options.sigma);
  region.error_floor =
      region.max_value * numeric::ScaledDouble(std::pow(10.0, floor_exponent));
  if (!options.external_noise.is_zero()) {
    const numeric::ScaledDouble sigma_boost(
        std::pow(10.0, static_cast<double>(options.sigma)));
    const numeric::ScaledDouble noise_floor = options.external_noise.abs() * sigma_boost;
    if (noise_floor > region.error_floor) region.error_floor = noise_floor;
  }

  if (region.max_value < region.error_floor) {
    // Everything is buried below the (external) noise: empty region.
    region.begin = 0;
    region.end = -1;
    return region;
  }
  int begin = region.max_index;
  while (begin > 0 && magnitudes[static_cast<std::size_t>(begin - 1)] >= region.error_floor) {
    --begin;
  }
  int end = region.max_index;
  while (end + 1 < static_cast<int>(magnitudes.size()) &&
         magnitudes[static_cast<std::size_t>(end + 1)] >= region.error_floor) {
    ++end;
  }
  region.begin = begin;
  region.end = end;
  return region;
}

std::vector<int> indices_above_floor(std::span<const numeric::ScaledDouble> magnitudes,
                                     const RegionOptions& options) {
  const ValidRegion region = find_valid_region(magnitudes, options);
  std::vector<int> indices;
  if (region.max_index < 0 || region.max_value.is_zero()) return indices;
  for (std::size_t i = 0; i < magnitudes.size(); ++i) {
    if (magnitudes[i] >= region.error_floor) indices.push_back(static_cast<int>(i));
  }
  return indices;
}

}  // namespace symref::interp
