// Structural (generic) s-degree bounds of the nodal determinant via
// bipartite assignment.
//
// A determinant term picks one entry per row/column; its power of s equals
// the number of capacitor entries used. The achievable powers therefore form
// the interval [min_degree, max_degree], where
//
//   max_degree = max over perfect matchings of #(entries with a cap atom)
//   min_degree = min over perfect matchings of #(cap-only entries)
//
// (matchings over the nonzero pattern; the achievable set is an interval by
// the matching exchange property). Outside this interval the coefficient is
// ZERO for every choice of element values — a certificate, unlike the
// engine's probe-based zero-tail detection.
//
// Inside the interval the bounds are *entry-generic*: they treat matrix
// entries as independent, but one element stamps the same symbol into four
// positions, and those repetitions can cancel identically. Example: an RC
// ladder driven at a node with no conductive path to ground has det(G) == 0
// for every value choice (the all-ones vector is always in G's null space),
// yet all-conductance matchings exist — so min_degree = 0 while the true
// lowest nonzero power is 1. Likewise a pure capacitor loop caps the true
// top degree below max_degree; combine with capacitor_rank_bound() for the
// tighter top-side estimate.
//
// Both bounds solve an n x n assignment problem (Hungarian algorithm,
// O(n^3)) on the canonical circuit's stamp pattern.
#pragma once

#include "netlist/circuit.h"

namespace symref::interp {

struct StructuralDegrees {
  /// No perfect matching exists: det(Y) is identically zero.
  bool singular = false;
  int min_degree = 0;
  int max_degree = 0;
};

/// Degree bounds of det(Y) for a canonical circuit ({G, C, VCCS}).
/// Throws std::invalid_argument for non-canonical circuits.
StructuralDegrees structural_determinant_degrees(const netlist::Circuit& circuit);

}  // namespace symref::interp
