// Topological upper bounds on the network-function polynomial order.
//
// The interpolation needs K >= n+1 points, but "in most cases ... the
// polynomial order is not known beforehand. Hence, an upper estimate on K
// must be done" (paper §2.1). Two bounds are provided:
//
//  * element bound — each capacitor is a rank-1 update of Y(s), so the
//    determinant degree is at most the number of capacitors;
//  * rank bound — the sC part of Y has rank equal to the rank of the
//    capacitor incidence structure, i.e. sum over connected components of
//    the capacitor subgraph (ground included as a vertex) of
//    (vertices - 1). Capacitor loops reduce this below the element count
//    (a loop of k capacitors contributes only k-1 to the degree).
#pragma once

#include "netlist/circuit.h"

namespace symref::interp {

/// Number of capacitor elements with distinct terminals.
int capacitor_element_bound(const netlist::Circuit& circuit);

/// Rank of the capacitor subgraph (tighter; accounts for capacitor loops).
int capacitor_rank_bound(const netlist::Circuit& circuit);

/// min(rank bound, matrix dimension): the order bound used by the engine.
int denominator_order_bound(const netlist::Circuit& canonical_circuit);

}  // namespace symref::interp
